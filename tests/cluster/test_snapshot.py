"""Snapshot/restore round-trips: restore erases the mutation byte-for-byte.

The contract under test: ``snapshot() → mutate (extra rounds, rotated
subscriptions, republished/retired stations) → restore()`` leaves the cluster
continuing **byte-identically** to a twin that never mutated — across bit
backends, and across seeded mutation schedules (a Hypothesis property).
"""

import pytest

from repro.cluster import (
    Cluster,
    ClusterSnapshot,
    ClusterSpec,
    ClusterStateError,
    ProtocolSpec,
    RoundOptions,
)
from repro.core.config import DIMatchingConfig
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with the dev extras
    HAS_HYPOTHESIS = False

DATASET_SPEC = DatasetSpec(
    users_per_category=3,
    station_count=3,
    days=1,
    intervals_per_day=24,
    noise_level=0,
    cliques_per_place=2,
    replicated_decoys_per_category=1,
    seed=404,
)
DATASET = build_dataset(DATASET_SPEC)
BATCH_A = list(build_query_workload(DATASET, query_count=3, epsilon=0, seed=1).queries)
BATCH_B = list(build_query_workload(DATASET, query_count=2, epsilon=0, seed=2).queries)


def _cluster(bit_backend: str) -> Cluster:
    return Cluster(
        ClusterSpec(
            name="snap",
            protocol=ProtocolSpec(
                method="wbf",
                epsilon=0,
                config=DIMatchingConfig(epsilon=0, bit_backend=bit_backend),
            ),
        ),
        dataset=DATASET,
    )


def _run_tail(cluster: Cluster, rounds: int = 3) -> bytes:
    for index in range(rounds):
        cluster.round(RoundOptions(net_seed=100 + index))
    return cluster.transcript_bytes()


class TestSnapshotBasics:
    def test_snapshot_captures_the_current_state(self):
        with _cluster("auto") as cluster:
            cluster.subscribe(BATCH_A)
            cluster.round(RoundOptions(net_seed=1))
            snapshot = cluster.snapshot()
        assert isinstance(snapshot, ClusterSnapshot)
        assert snapshot.round_index == 1
        assert len(snapshot.queries) == len(BATCH_A)
        assert 0 < snapshot.station_count <= len(DATASET.station_ids)

    def test_restore_rejects_foreign_objects(self):
        with _cluster("auto") as cluster:
            with pytest.raises(TypeError, match="ClusterSnapshot"):
                cluster.restore({"round_index": 0})

    def test_snapshot_refused_while_a_delta_session_is_open(self):
        with _cluster("auto") as cluster:
            cluster.subscribe(BATCH_A)
            session = cluster.open_session(mode="deltas")
            session.publish(
                cluster.station_ids[0],
                DATASET.local_patterns_at(cluster.station_ids[0]),
            )
            with pytest.raises(ClusterStateError, match="delta session"):
                cluster.snapshot()

    def test_restore_rewinds_the_round_counter_and_transcripts(self):
        with _cluster("auto") as cluster:
            cluster.subscribe(BATCH_A)
            cluster.round(RoundOptions(net_seed=1))
            snapshot = cluster.snapshot()
            cluster.round(RoundOptions(net_seed=2))
            cluster.round(RoundOptions(net_seed=3))
            assert cluster.round_index == 3
            cluster.restore(snapshot)
            assert cluster.round_index == 1
            assert cluster.transcript_bytes() == b"".join(
                [b"== round 0 ==\n", snapshot.transcripts[0], b"\n"]
            )


@pytest.mark.parametrize("bit_backend", ["python", "numpy"])
class TestSnapshotRoundTrip:
    def test_restore_erases_extra_rounds_and_rotations(self, bit_backend):
        with _cluster(bit_backend) as mutated, _cluster(bit_backend) as pristine:
            for cluster in (mutated, pristine):
                cluster.subscribe(BATCH_A)
                cluster.round(RoundOptions(net_seed=7))
            snapshot = mutated.snapshot()
            # Mutate: rotate the campaign, run extra rounds, republish and
            # retire stations.
            mutated.subscribe(BATCH_B)
            mutated.round(RoundOptions(net_seed=8))
            victim = mutated.station_ids[0]
            mutated.retire(victim)
            mutated.round(RoundOptions(net_seed=9, station_ids=mutated.station_ids))
            mutated.restore(snapshot)
            assert _run_tail(mutated) == _run_tail(pristine)

    def test_restore_erases_pattern_republications(self, bit_backend):
        with _cluster(bit_backend) as mutated, _cluster(bit_backend) as pristine:
            for cluster in (mutated, pristine):
                cluster.subscribe(BATCH_A)
            snapshot = mutated.snapshot()
            # Publish a *different* station payload (another station's data),
            # which changes matching results until restored.
            first, second = mutated.station_ids[0], mutated.station_ids[1]
            mutated.publish(first, DATASET.local_patterns_at(second))
            changed = mutated.round(RoundOptions(net_seed=5))
            mutated.restore(snapshot)
            clean = mutated.round(RoundOptions(net_seed=5))
            reference = pristine.round(RoundOptions(net_seed=5))
            assert clean.transcript_bytes() == reference.transcript_bytes()
            assert clean.results == reference.results
            assert changed.transcript_bytes() != clean.transcript_bytes()


if HAS_HYPOTHESIS:

    @settings(max_examples=8, deadline=None, suppress_health_check=list(HealthCheck))
    @given(
        mutations=st.lists(
            st.sampled_from(["rotate", "round", "republish", "retire"]),
            min_size=1,
            max_size=6,
        ),
        bit_backend=st.sampled_from(["python", "numpy"]),
    )
    def test_any_mutation_schedule_restores_byte_identically(mutations, bit_backend):
        """Property: no mutation sequence survives a restore."""
        with _cluster(bit_backend) as mutated, _cluster(bit_backend) as pristine:
            for cluster in (mutated, pristine):
                cluster.subscribe(BATCH_A)
                cluster.round(RoundOptions(net_seed=11))
            snapshot = mutated.snapshot()
            for index, mutation in enumerate(mutations):
                if mutation == "rotate":
                    mutated.subscribe(BATCH_B if index % 2 == 0 else BATCH_A)
                elif mutation == "round":
                    mutated.round(RoundOptions(net_seed=50 + index))
                elif mutation == "republish" and mutated.station_ids:
                    target = mutated.station_ids[index % len(mutated.station_ids)]
                    other = mutated.station_ids[(index + 1) % len(mutated.station_ids)]
                    mutated.publish(target, DATASET.local_patterns_at(other))
                elif mutation == "retire" and len(mutated.station_ids) > 1:
                    mutated.retire(mutated.station_ids[-1])
            mutated.restore(snapshot)
            assert _run_tail(mutated) == _run_tail(pristine)
