"""Behavior of the ``Cluster`` facade verbs and the unified session handle."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    ClusterStateError,
    ProtocolSpec,
    RoundOptions,
    RoundReport,
)
from repro.core.exceptions import ConfigurationError
from repro.timeseries.pattern import PatternSet


class TestRoundOptions:
    def test_merge_rejects_both_spellings(self):
        with pytest.raises(ValueError, match="not both"):
            RoundOptions.merge(RoundOptions(net_seed=1), net_seed=2)

    def test_merge_folds_loose_keywords(self):
        merged = RoundOptions.merge(None, station_ids=["bs-a"], net_seed=7, k=3)
        assert merged == RoundOptions(station_ids=("bs-a",), net_seed=7, k=3)

    def test_station_ids_coerced_to_strings(self):
        assert RoundOptions(station_ids=[1, 2]).station_ids == ("1", "2")

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="k must be"):
            RoundOptions(k=-1)

    def test_invalid_net_seed_rejected(self):
        with pytest.raises(ValueError, match="net_seed"):
            RoundOptions(net_seed="tuesday")


class TestClusterConstruction:
    def test_spec_without_dataset_requires_adoption(self):
        with pytest.raises(ConfigurationError, match="dataset"):
            Cluster(ClusterSpec(name="no-data"))

    def test_non_spec_rejected(self, cluster):
        with pytest.raises(ConfigurationError, match="ClusterSpec"):
            Cluster({"method": "wbf"})

    def test_adopting_a_prebuilt_dataset(self, wbf_spec, cluster):
        adopted = Cluster(wbf_spec.with_updates(dataset=None), dataset=cluster.dataset)
        assert adopted.dataset is cluster.dataset
        assert adopted.station_ids == cluster.station_ids

    def test_stations_are_the_pattern_bearing_ones(self, cluster):
        assert 0 < len(cluster.stations) <= cluster.dataset.station_count
        for station in cluster.stations:
            assert station.stored_pattern_count > 0


class TestRounds:
    def test_round_requires_a_subscription(self, cluster):
        with pytest.raises(ClusterStateError, match="subscribe"):
            cluster.round()

    def test_round_returns_a_typed_report(self, cluster, queries):
        cluster.subscribe(queries)
        report = cluster.round(RoundOptions(k=5))
        assert isinstance(report, RoundReport)
        assert report.mode == "round"
        assert report.round_index == 0
        assert report.query_count == len(queries)
        assert report.active_station_count == len(cluster.stations)
        assert report.downlink_bytes > 0 and report.uplink_bytes > 0
        assert len(report.results) <= 5
        assert report.costs is not None
        assert report.costs.method == "wbf"

    def test_rounds_accumulate_the_replay_token(self, cluster, queries):
        cluster.subscribe(queries)
        cluster.round()
        cluster.round()
        replay = cluster.transcript_bytes()
        assert cluster.round_index == 2
        assert b"== round 0 ==" in replay and b"== round 1 ==" in replay

    def test_round_accepts_loose_keywords(self, cluster, queries):
        cluster.subscribe(queries)
        subset = list(cluster.station_ids)[:2]
        report = cluster.round(station_ids=subset, net_seed=9, k=4)
        assert report.active_station_count == len(subset)

    def test_unknown_station_id_rejected(self, cluster, queries):
        cluster.subscribe(queries)
        with pytest.raises(ValueError, match="unknown station ids"):
            cluster.round(RoundOptions(station_ids=("bs-on-the-moon",)))

    def test_same_seed_replays_byte_identically(self, wbf_spec, queries):
        transcripts = []
        for _ in range(2):
            with Cluster(wbf_spec) as deployed:
                deployed.subscribe(queries)
                deployed.round(RoundOptions(net_seed=3))
                transcripts.append(deployed.transcript_bytes())
        assert transcripts[0] == transcripts[1]


class TestPublishSubscribe:
    def test_publish_replaces_a_station(self, cluster):
        station = cluster.stations[0]
        patterns = cluster.dataset.local_patterns_at(station.node_id)
        count = cluster.publish(station.node_id, patterns)
        assert count == len(patterns)
        assert cluster.station_ids == tuple(s.node_id for s in cluster.stations)

    def test_publish_unknown_station_rejected(self, cluster):
        with pytest.raises(ValueError, match="unknown station id"):
            cluster.publish("bs-nowhere", PatternSet([]))

    def test_publish_requires_a_pattern_set(self, cluster):
        with pytest.raises(TypeError, match="PatternSet"):
            cluster.publish(cluster.station_ids[0], ["not-patterns"])

    def test_retire_removes_the_station_from_rounds(self, cluster, queries):
        cluster.subscribe(queries)
        victim = cluster.station_ids[0]
        cluster.retire(victim)
        assert victim not in cluster.station_ids
        report = cluster.round()
        assert report.active_station_count == len(cluster.station_ids)

    def test_subscribe_requires_queries(self, cluster):
        with pytest.raises(ValueError):
            cluster.subscribe([])


class TestSessionHandle:
    def test_mode_is_validated(self, cluster):
        with pytest.raises(ConfigurationError, match="session mode"):
            cluster.open_session(mode="turbo")

    def test_only_one_session_at_a_time(self, cluster):
        cluster.open_session(mode="rounds")
        with pytest.raises(ClusterStateError, match="already open"):
            cluster.open_session(mode="rounds")

    def test_closing_frees_the_slot(self, cluster):
        with cluster.open_session(mode="rounds"):
            pass
        cluster.open_session(mode="deltas")

    def test_rounds_mode_steps_are_full_rounds(self, cluster, queries):
        session = cluster.open_session(mode="rounds")
        session.subscribe(queries)
        report = session.step(RoundOptions(k=5))
        assert report.mode == "round"
        assert report.costs is not None

    def test_delta_session_requires_subscription_before_publish(self, cluster):
        session = cluster.open_session(mode="deltas")
        station = cluster.stations[0]
        with pytest.raises(ClusterStateError, match="subscribe"):
            session.publish(
                station.node_id, cluster.dataset.local_patterns_at(station.node_id)
            )

    def test_failed_publish_leaves_cluster_state_untouched(self, cluster):
        # A publish the delta session refuses must not leak into the cluster:
        # otherwise the cluster and the session would silently diverge.
        session = cluster.open_session(mode="deltas")
        first, second = cluster.station_ids[0], cluster.station_ids[1]
        before = cluster.stations[0].patterns
        with pytest.raises(ClusterStateError, match="subscribe"):
            session.publish(first, cluster.dataset.local_patterns_at(second))
        assert cluster.stations[0].patterns is before

    def test_delta_steps_ship_only_dirty_stations(self, cluster, queries):
        session = cluster.open_session(mode="deltas")
        session.subscribe(queries)
        for station_id in cluster.station_ids:
            session.publish(station_id, cluster.dataset.local_patterns_at(station_id))
        first = session.step(RoundOptions(net_seed=1))
        assert first.mode == "delta"
        assert set(first.delivered_station_ids) == set(cluster.station_ids)
        assert first.downlink_bytes > 0  # initial dissemination to every station
        # Nothing changed: the next step ships nothing.
        second = session.step(RoundOptions(net_seed=2))
        assert second.delivered_station_ids == ()
        assert second.uplink_bytes == 0 and second.downlink_bytes == 0
        # The ranking keeps serving the last delivered state.
        assert second.results == first.results
        # One dirty station re-ships alone.
        victim = cluster.station_ids[0]
        session.publish(victim, cluster.dataset.local_patterns_at(victim))
        third = session.step(RoundOptions(net_seed=3))
        assert third.delivered_station_ids == (victim,)
        assert third.downlink_bytes == 0  # no rotation, no joiners

    def test_delta_rotation_recharges_the_downlink(self, cluster, queries):
        session = cluster.open_session(mode="deltas")
        session.subscribe(queries)
        for station_id in cluster.station_ids:
            session.publish(station_id, cluster.dataset.local_patterns_at(station_id))
        session.step(RoundOptions(net_seed=1))
        session.subscribe(queries[:2])  # rotate the campaign
        rotated = session.step(RoundOptions(net_seed=2))
        assert rotated.downlink_bytes > 0
        assert set(rotated.delivered_station_ids) == set(cluster.station_ids)

    def test_delta_step_rejects_station_subsets(self, cluster, queries):
        session = cluster.open_session(mode="deltas")
        session.subscribe(queries)
        session.publish(
            cluster.station_ids[0],
            cluster.dataset.local_patterns_at(cluster.station_ids[0]),
        )
        with pytest.raises(ValueError, match="publish\\(\\)/retire\\(\\)"):
            session.step(RoundOptions(station_ids=cluster.station_ids[:1]))

    def test_restore_invalidates_the_handle(self, cluster, queries):
        cluster.subscribe(queries)
        snapshot = cluster.snapshot()
        session = cluster.open_session(mode="rounds")
        cluster.restore(snapshot)
        with pytest.raises(ClusterStateError, match="invalidated"):
            session.step()

    def test_both_modes_share_the_replay_framing(self, wbf_spec, queries):
        with Cluster(wbf_spec) as deployed:
            session = deployed.open_session(mode="deltas")
            session.subscribe(queries)
            for station_id in deployed.station_ids:
                session.publish(
                    station_id, deployed.dataset.local_patterns_at(station_id)
                )
            session.step(RoundOptions(net_seed=1))
            replay = deployed.transcript_bytes()
        assert replay.startswith(b"== round 0 ==")


class TestDriveParityWithLegacyShim:
    def test_drive_matches_the_deprecated_simulation(self, cluster, queries, wbf_spec):
        report = None
        cluster.subscribe(queries)
        report = cluster.round(RoundOptions(net_seed=5, k=6))
        with pytest.warns(DeprecationWarning):
            legacy = __import__(
                "repro.distributed.simulator", fromlist=["DistributedSimulation"]
            ).DistributedSimulation(cluster.dataset)
        outcome = legacy.run(
            wbf_spec.protocol.build(), queries, options=RoundOptions(net_seed=5, k=6)
        )
        assert outcome.results == report.results
        assert outcome.costs.downlink_bytes == report.downlink_bytes
        assert outcome.costs.uplink_bytes == report.uplink_bytes
        assert outcome.transcript_bytes() == report.transcript_bytes()
