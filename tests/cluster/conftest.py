"""Shared fixtures for the cluster facade suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, ProtocolSpec
from repro.core.config import DIMatchingConfig
from repro.datagen.workload import DatasetSpec


@pytest.fixture(scope="session")
def tiny_dataset_spec() -> DatasetSpec:
    """A tiny-but-complete city: split users, decoys, several stations."""
    return DatasetSpec(
        users_per_category=4,
        station_count=4,
        days=1,
        intervals_per_day=24,
        noise_level=0,
        cliques_per_place=2,
        replicated_decoys_per_category=1,
        seed=2026,
    )


@pytest.fixture()
def wbf_spec(tiny_dataset_spec) -> ClusterSpec:
    """A WBF deployment over the tiny city."""
    return ClusterSpec(
        name="test-wbf",
        dataset=tiny_dataset_spec,
        protocol=ProtocolSpec(
            method="wbf",
            epsilon=0,
            config=DIMatchingConfig(epsilon=0, sample_count=12, hash_count=4),
        ),
    )


@pytest.fixture()
def cluster(wbf_spec) -> Cluster:
    with Cluster(wbf_spec) as deployed:
        yield deployed


@pytest.fixture()
def queries(cluster):
    """A three-query batch sampled from the cluster's own dataset."""
    from repro.datagen.workload import build_query_workload

    return list(
        build_query_workload(cluster.dataset, query_count=3, epsilon=0, seed=5).queries
    )
