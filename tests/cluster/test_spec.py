"""Validation of the typed cluster specification."""

import pytest

from repro.cluster import (
    ClusterSpec,
    ExecutorSpec,
    FaultSpec,
    ProtocolSpec,
    TransportSpec,
)
from repro.core.config import DIMatchingConfig
from repro.core.exceptions import ConfigurationError
from repro.datagen.workload import DatasetSpec
from repro.distributed.network import NetworkConfig
from repro.workloads import get_scenario


class TestProtocolSpec:
    def test_defaults_build_the_wbf_protocol(self):
        protocol = ProtocolSpec().build()
        assert protocol.name == "wbf"

    @pytest.mark.parametrize("method", ["naive", "local", "bf", "wbf"])
    def test_every_method_builds(self, method):
        protocol = ProtocolSpec(method=method, epsilon=2).build()
        assert protocol.name == method

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError, match="method"):
            ProtocolSpec(method="quantum")

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigurationError, match="epsilon"):
            ProtocolSpec(epsilon=-1)

    def test_config_passed_through(self):
        config = DIMatchingConfig(epsilon=2, sample_count=5)
        assert ProtocolSpec(method="wbf", epsilon=2, config=config).resolved_config() is config

    def test_wrong_config_type_rejected(self):
        with pytest.raises(ConfigurationError, match="config"):
            ProtocolSpec(config={"sample_count": 5})


class TestTransportSpec:
    def test_round_trips_through_network_config(self):
        original = NetworkConfig(
            bandwidth_bytes_per_s=5_000.0, latency_s=0.5, max_attempts=3
        )
        assert TransportSpec.from_network_config(original).network_config() == original

    def test_none_means_defaults(self):
        assert TransportSpec.from_network_config(None).network_config() == NetworkConfig()

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError, match="bandwidth"):
            TransportSpec(bandwidth_bytes_per_s=0)

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            TransportSpec(max_attempts=0)


class TestExecutorSpec:
    def test_none_defers_to_protocol_config(self):
        spec = ExecutorSpec()
        assert spec.kind is None and spec.shard_count is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="executor kind"):
            ExecutorSpec(kind="gpu")

    def test_negative_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="shard_count"):
            ExecutorSpec(shard_count=-1)

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            ExecutorSpec(max_workers=0)


class TestFaultSpec:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="fault profile"):
            FaultSpec(profile="meteor-strike")

    def test_bool_net_seed_rejected(self):
        with pytest.raises(ConfigurationError, match="net_seed"):
            FaultSpec(net_seed=True)

    def test_non_bool_allow_partial_rejected(self):
        with pytest.raises(ConfigurationError, match="allow_partial"):
            FaultSpec(allow_partial=1)


class TestClusterSpec:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):
            ClusterSpec(name="")

    def test_wrong_subspec_type_rejected(self):
        with pytest.raises(ConfigurationError, match="protocol"):
            ClusterSpec(protocol="wbf")
        with pytest.raises(ConfigurationError, match="transport"):
            ClusterSpec(transport=NetworkConfig())
        with pytest.raises(ConfigurationError, match="dataset"):
            ClusterSpec(dataset={"stations": 3})

    def test_with_updates_revalidates(self):
        spec = ClusterSpec(name="ok")
        with pytest.raises(ConfigurationError, match="name"):
            spec.with_updates(name="")

    def test_from_workload_compiles_every_scenario(self):
        for scenario in ("steady-state", "degraded-network", "long-session"):
            workload = get_scenario(scenario)
            spec = ClusterSpec.from_workload(workload)
            assert spec.name == workload.name
            assert isinstance(spec.dataset, DatasetSpec)
            assert spec.dataset.station_count == workload.station_count
            assert spec.protocol.method == workload.method
            assert spec.faults.profile == workload.fault_profile
            assert spec.faults.allow_partial == workload.allow_partial

    def test_from_workload_derives_the_dataset_seed(self):
        from repro.utils.rng import derive_seed

        workload = get_scenario("steady-state")
        spec = ClusterSpec.from_workload(workload)
        assert spec.dataset.seed == derive_seed(
            workload.seed, "workload-dataset", workload.name
        )
