"""Each legacy entry point warns exactly once and delegates to the facade."""

import warnings

import pytest

from repro.cluster import Cluster, RoundOptions
from repro.core import ContinuousMatchingSession, DIMatchingProtocol
from repro.distributed.simulator import DistributedSimulation


def _single_deprecation(record) -> warnings.WarningMessage:
    deprecations = [w for w in record if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got {len(deprecations)}"
    )
    return deprecations[0]


class TestDistributedSimulationShim:
    def test_constructor_warns_exactly_once(self, small_dataset):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            DistributedSimulation(small_dataset)
        message = str(_single_deprecation(record).message)
        assert "repro.cluster.Cluster" in message

    def test_shim_delegates_to_a_facade_cluster(self, small_dataset):
        with pytest.warns(DeprecationWarning):
            shim = DistributedSimulation(small_dataset)
        assert isinstance(shim.cluster, Cluster)
        assert shim.dataset is shim.cluster.dataset
        assert [s.node_id for s in shim.stations] == list(shim.cluster.station_ids)
        assert shim.center is shim.cluster.center

    def test_run_matches_the_facade_byte_for_byte(
        self, small_dataset, small_workload, exact_config
    ):
        queries = list(small_workload.queries)
        protocol = DIMatchingProtocol(exact_config)
        with pytest.warns(DeprecationWarning):
            shim = DistributedSimulation(small_dataset)
        legacy = shim.run(protocol, queries, k=None, net_seed=4)
        direct = Cluster.adopt(small_dataset).drive(
            protocol, queries, options=RoundOptions(net_seed=4)
        )
        assert legacy.results == direct.results
        # Wall-clock cost fields are measured; compare the deterministic ones.
        for field in (
            "downlink_bytes",
            "uplink_bytes",
            "message_count",
            "transmission_time_s",
            "retransmit_count",
            "goodput_fraction",
            "net_seed",
        ):
            assert getattr(legacy.costs, field) == getattr(direct.costs, field)
        assert legacy.transcript_bytes() == direct.transcript_bytes()

    def test_run_rejects_mixed_override_spellings(
        self, small_dataset, small_workload, exact_config
    ):
        with pytest.warns(DeprecationWarning):
            shim = DistributedSimulation(small_dataset)
        with pytest.raises(ValueError, match="not both"):
            shim.run(
                DIMatchingProtocol(exact_config),
                list(small_workload.queries),
                options=RoundOptions(net_seed=1),
                net_seed=2,
            )
        # The cutoff is an override like any other: k alongside options is
        # rejected too, never silently dropped.
        with pytest.raises(ValueError, match="not both"):
            shim.run(
                DIMatchingProtocol(exact_config),
                list(small_workload.queries),
                3,
                options=RoundOptions(k=10),
            )

    def test_internal_facade_paths_do_not_warn(self, small_dataset, small_workload):
        from repro.evaluation.experiments import run_comparison

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_comparison(small_dataset, small_workload, methods=("wbf",))


class TestContinuousSessionShim:
    def test_constructor_warns_exactly_once(self, exact_config, small_workload):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            ContinuousMatchingSession(
                DIMatchingProtocol(exact_config), list(small_workload.queries)
            )
        message = str(_single_deprecation(record).message)
        assert "open_session" in message

    def test_facade_delta_session_does_not_warn(
        self, small_dataset, small_workload, exact_config
    ):
        from repro.cluster import ClusterSpec, ProtocolSpec

        spec = ClusterSpec(
            name="no-warn",
            protocol=ProtocolSpec(method="wbf", epsilon=0, config=exact_config),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Cluster(spec, dataset=small_dataset) as cluster:
                session = cluster.open_session(mode="deltas")
                session.subscribe(list(small_workload.queries))
                for station_id in cluster.station_ids:
                    session.publish(
                        station_id, cluster.dataset.local_patterns_at(station_id)
                    )
                session.step(RoundOptions(net_seed=1))

    def test_shim_behaves_like_the_facade_session(
        self, small_dataset, small_workload, exact_config
    ):
        queries = list(small_workload.queries)
        with pytest.warns(DeprecationWarning):
            legacy = ContinuousMatchingSession(DIMatchingProtocol(exact_config), queries)
        for station_id in small_dataset.station_ids:
            patterns = small_dataset.local_patterns_at(station_id)
            if len(patterns) > 0:
                legacy.update_station(station_id, patterns)

        from repro.cluster import ClusterSpec, ProtocolSpec

        spec = ClusterSpec(
            name="parity",
            protocol=ProtocolSpec(method="wbf", epsilon=0, config=exact_config),
        )
        with Cluster(spec, dataset=small_dataset) as cluster:
            session = cluster.open_session(mode="deltas")
            session.subscribe(queries)
            for station_id in cluster.station_ids:
                session.publish(
                    station_id, cluster.dataset.local_patterns_at(station_id)
                )
            report = session.step(RoundOptions(net_seed=0))
        assert legacy.current_results(None) == report.results
