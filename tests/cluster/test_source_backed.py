"""Source-backed clusters: bounded residency, restore parity, eager equivalence.

The tentpole contract of the :class:`StationSource` boundary:

* a streaming-backed cluster's resident station batches never exceed the
  source's LRU cap — across full rounds, windowed rounds, publish/retire
  churn and snapshot/restore cycles;
* a cluster adopted from a :class:`DatasetStationSource` is byte-identical
  to the same deployment adopted from the raw dataset (the facade cannot
  tell the two apart);
* snapshot → mutate → restore on a source-backed cluster continues
  byte-identically to a twin that never mutated.
"""

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    ClusterStateError,
    ProtocolSpec,
    RoundOptions,
)
from repro.core.config import DIMatchingConfig
from repro.core.exceptions import ConfigurationError
from repro.datagen import DatasetStationSource, SourceSpec
from repro.datagen.workload import build_dataset

#: A streaming city small enough for tests but larger than its resident cap.
STREAM_SPEC = SourceSpec(
    kind="streaming",
    station_count=6,
    users_per_station=4,
    max_resident=2,
    seed=42,
)


def _protocol() -> ProtocolSpec:
    return ProtocolSpec(
        method="wbf",
        epsilon=0,
        config=DIMatchingConfig(epsilon=0, sample_count=12, hash_count=4),
    )


def _streaming_cluster() -> Cluster:
    source = STREAM_SPEC.build()
    return Cluster(
        ClusterSpec(name="soak", protocol=_protocol(), source=STREAM_SPEC),
        source=source,
    )


def _queries(source, count: int = 3):
    return [source.exemplar_query(index) for index in range(count)]


class TestAdoption:
    def test_adopt_needs_exactly_one_boundary(self, cluster):
        with pytest.raises(ConfigurationError, match="exactly one"):
            Cluster.adopt()
        with pytest.raises(ConfigurationError, match="exactly one"):
            Cluster.adopt(
                dataset=cluster.dataset,
                source=DatasetStationSource(cluster.dataset),
            )

    def test_constructor_rejects_both_spellings(self, wbf_spec, cluster):
        with pytest.raises(ConfigurationError, match="at most one"):
            Cluster(
                wbf_spec.with_updates(dataset=None),
                dataset=cluster.dataset,
                source=DatasetStationSource(cluster.dataset),
            )

    def test_spec_source_builds_on_demand(self):
        with _streaming_cluster() as deployed:
            assert len(deployed.station_ids) == STREAM_SPEC.station_count
            assert deployed.source.resident_cap == STREAM_SPEC.max_resident
            # Nothing is materialized at adoption time.
            assert len(deployed.stations) == 0

    def test_streaming_cluster_has_no_dataset(self):
        with _streaming_cluster() as deployed:
            with pytest.raises(ClusterStateError, match="streaming"):
                deployed.dataset


class TestBoundedResidency:
    def test_rounds_never_exceed_the_cap_and_release_after(self):
        with _streaming_cluster() as deployed:
            source = deployed.source
            deployed.subscribe(_queries(source))
            for index in range(3):
                deployed.round(RoundOptions(net_seed=index))
                assert source.resident_count <= STREAM_SPEC.max_resident
                # Non-pinned nodes are dropped once the round is over.
                assert len(deployed.stations) == 0
            assert source.eviction_count > 0

    def test_windowed_rounds_touch_only_the_window(self):
        with _streaming_cluster() as deployed:
            source = deployed.source
            deployed.subscribe(_queries(source))
            window = tuple(deployed.station_ids[:2])
            report = deployed.round(RoundOptions(station_ids=window, net_seed=1))
            assert report.active_station_count == len(window)
            assert source.built_count == len(window)

    def test_cap_holds_across_publish_retire_churn_and_restore(self):
        with _streaming_cluster() as deployed:
            source = deployed.source
            cap = STREAM_SPEC.max_resident
            deployed.subscribe(_queries(source))
            stations = deployed.station_ids
            # Publish pins a station; retire withdraws another; rounds in
            # between touch whatever remains.
            deployed.publish(stations[0], source.local_patterns_at(stations[0]))
            assert source.resident_count <= cap
            deployed.retire(stations[1])
            assert stations[1] not in deployed.station_ids
            deployed.round(RoundOptions(net_seed=7))
            assert source.resident_count <= cap
            snapshot = deployed.snapshot()
            deployed.round(RoundOptions(net_seed=8))
            deployed.restore(snapshot)
            # The withdrawn set survives the round-trip; the cap still holds.
            assert stations[1] not in deployed.station_ids
            deployed.round(RoundOptions(net_seed=9))
            assert source.resident_count <= cap

    def test_retired_station_stays_out_of_full_rounds(self):
        with _streaming_cluster() as deployed:
            source = deployed.source
            deployed.subscribe(_queries(source))
            victim = deployed.station_ids[2]
            deployed.retire(victim)
            report = deployed.round(RoundOptions(net_seed=3))
            assert report.active_station_count == STREAM_SPEC.station_count - 1


class TestRestoreParity:
    def test_restore_erases_mutations_byte_for_byte(self):
        def tail(deployed: Cluster) -> bytes:
            for index in range(2):
                deployed.round(RoundOptions(net_seed=50 + index))
            return deployed.transcript_bytes()

        with _streaming_cluster() as mutated, _streaming_cluster() as control:
            for deployed in (mutated, control):
                deployed.subscribe(_queries(deployed.source))
                deployed.round(RoundOptions(net_seed=1))
            snapshot = mutated.snapshot()
            # Mutate: extra rounds, a pinned publish, a withdrawal.
            mutated.round(RoundOptions(net_seed=99))
            sid = mutated.station_ids[0]
            mutated.publish(sid, mutated.source.local_patterns_at(sid))
            mutated.retire(mutated.station_ids[1])
            mutated.restore(snapshot)
            assert tail(mutated) == tail(control)


class TestEagerEquivalence:
    def test_source_and_dataset_adoption_are_byte_identical(
        self, tiny_dataset_spec, wbf_spec, queries
    ):
        dataset = build_dataset(tiny_dataset_spec)
        transcripts = []
        for kwargs in (
            {"dataset": dataset},
            {"source": DatasetStationSource(dataset)},
        ):
            with Cluster(wbf_spec.with_updates(dataset=None), **kwargs) as deployed:
                deployed.subscribe(queries)
                deployed.round(RoundOptions(net_seed=11))
                deployed.round(RoundOptions(net_seed=12))
                transcripts.append(deployed.transcript_bytes())
        assert transcripts[0] == transcripts[1]

    def test_spec_declared_eager_source_matches_dataset_spec(
        self, tiny_dataset_spec, queries
    ):
        eager_source = SourceSpec(
            kind="eager",
            station_count=tiny_dataset_spec.station_count,
            users_per_category=tiny_dataset_spec.users_per_category,
            days=tiny_dataset_spec.days,
            intervals_per_day=tiny_dataset_spec.intervals_per_day,
            noise_level=tiny_dataset_spec.noise_level,
            seed=tiny_dataset_spec.seed,
        )
        # Cohort-feature knobs beyond SourceSpec's surface (cliques, decoys)
        # stay at DatasetSpec defaults, so build the dataset twin to match.
        from repro.datagen.workload import DatasetSpec

        twin_spec = DatasetSpec(
            users_per_category=tiny_dataset_spec.users_per_category,
            station_count=tiny_dataset_spec.station_count,
            days=tiny_dataset_spec.days,
            intervals_per_day=tiny_dataset_spec.intervals_per_day,
            noise_level=tiny_dataset_spec.noise_level,
            seed=tiny_dataset_spec.seed,
        )
        transcripts = []
        for cluster_spec in (
            ClusterSpec(name="twin", protocol=_protocol(), source=eager_source),
            ClusterSpec(name="twin", protocol=_protocol(), dataset=twin_spec),
        ):
            with Cluster(cluster_spec) as deployed:
                deployed.subscribe(queries)
                deployed.round(RoundOptions(net_seed=21))
                transcripts.append(deployed.transcript_bytes())
        assert transcripts[0] == transcripts[1]
