"""Shared fixtures for the test suite.

The fixtures build small but structurally complete synthetic datasets so tests run
fast while still exercising the distributed / incomplete-pattern structure the paper
relies on (multiple stations, split users, decoys, cliques).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import DIMatchingConfig  # noqa: E402

# The datagen layer (and therefore the dataset fixtures below) requires NumPy;
# it is imported lazily so the substrate/core tests still collect and run on
# interpreters without NumPy (the pure-Python bit-backend fallback leg).


def _datagen():
    from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload

    return DatasetSpec, build_dataset, build_query_workload


@pytest.fixture(scope="session")
def small_spec():
    """A small dataset specification shared by most integration-style tests."""
    DatasetSpec, _, _ = _datagen()
    return DatasetSpec(
        users_per_category=8,
        station_count=4,
        days=1,
        intervals_per_day=24,
        noise_level=0,
        cliques_per_place=2,
        replicated_decoys_per_category=1,
        seed=42,
    )


@pytest.fixture(scope="session")
def small_dataset(small_spec):
    """A small exact-matching dataset (no noise)."""
    _, build_dataset, _ = _datagen()
    return build_dataset(small_spec)


@pytest.fixture(scope="session")
def small_workload(small_dataset):
    """A six-query workload over the small dataset (ε = 0)."""
    _, _, build_query_workload = _datagen()
    return build_query_workload(small_dataset, query_count=6, epsilon=0, seed=7)


@pytest.fixture(scope="session")
def noisy_dataset():
    """A dataset with timing jitter, used by ε > 0 tests."""
    DatasetSpec, build_dataset, _ = _datagen()
    return build_dataset(
        DatasetSpec(
            users_per_category=8,
            station_count=4,
            days=1,
            intervals_per_day=24,
            noise_level=1,
            cliques_per_place=2,
            replicated_decoys_per_category=1,
            seed=11,
        )
    )


@pytest.fixture(scope="session")
def noisy_workload(noisy_dataset):
    """A workload over the noisy dataset with ε = 2."""
    _, _, build_query_workload = _datagen()
    return build_query_workload(noisy_dataset, query_count=6, epsilon=2, seed=13)


@pytest.fixture(scope="session")
def exact_config() -> DIMatchingConfig:
    """DI-matching configuration for exact (ε = 0) matching."""
    return DIMatchingConfig(epsilon=0, sample_count=12, hash_count=4)


@pytest.fixture(scope="session")
def approx_config() -> DIMatchingConfig:
    """DI-matching configuration for approximate (ε = 2) matching."""
    return DIMatchingConfig(epsilon=2, sample_count=12, hash_count=4)
