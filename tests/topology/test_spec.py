"""TopologySpec validation: every bad layout fails at construction."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.topology import TOPOLOGY_KINDS, TopologySpec


class TestDefaults:
    def test_default_is_the_flat_star(self):
        spec = TopologySpec()
        assert spec.kind == "star"
        assert spec.regions == 1
        assert not spec.is_hierarchical

    def test_two_tier_is_hierarchical(self):
        assert TopologySpec(kind="two-tier", regions=2).is_hierarchical

    def test_kind_choices_are_exported(self):
        assert TOPOLOGY_KINDS == ("star", "two-tier")

    def test_region_names_are_canonical(self):
        spec = TopologySpec(kind="two-tier", regions=3)
        assert [spec.region_name(i) for i in range(3)] == [
            "region-0", "region-1", "region-2",
        ]


class TestValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="topology kind"):
            TopologySpec(kind="ring")

    def test_rejects_star_with_regions(self):
        with pytest.raises(ConfigurationError, match="no regional tier"):
            TopologySpec(kind="star", regions=2)

    @pytest.mark.parametrize("regions", [0, -1, True, 1.5])
    def test_rejects_bad_region_counts(self, regions):
        with pytest.raises(ConfigurationError, match="regions must be"):
            TopologySpec(kind="two-tier", regions=regions)

    @pytest.mark.parametrize("width", [0, -3, True])
    def test_rejects_bad_stations_per_region(self, width):
        with pytest.raises(ConfigurationError, match="stations_per_region"):
            TopologySpec(kind="two-tier", regions=2, stations_per_region=width)

    @pytest.mark.parametrize("count", [0, -1, True])
    def test_rejects_bad_tenant_counts(self, count):
        with pytest.raises(ConfigurationError, match="tenant_count"):
            TopologySpec(tenant_count=count)

    def test_rejects_unknown_wire_version(self):
        with pytest.raises(ConfigurationError, match="wire_version"):
            TopologySpec(wire_version=7)

    def test_rejects_unknown_degraded_profile(self):
        with pytest.raises(ConfigurationError, match="degraded_profile"):
            TopologySpec(
                kind="two-tier", regions=2,
                degraded_regions=("region-0",), degraded_profile="thunderstorm",
            )

    @pytest.mark.parametrize("field_name", ["legacy_regions", "degraded_regions"])
    def test_rejects_unknown_region_names(self, field_name):
        with pytest.raises(ConfigurationError, match="unknown region"):
            TopologySpec(kind="two-tier", regions=2, **{field_name: ("region-9",)})

    @pytest.mark.parametrize("field_name", ["legacy_regions", "degraded_regions"])
    def test_rejects_non_string_region_tuples(self, field_name):
        with pytest.raises(ConfigurationError, match="tuple of region names"):
            TopologySpec(kind="two-tier", regions=2, **{field_name: (0,)})

    def test_with_updates_revalidates(self):
        spec = TopologySpec(kind="two-tier", regions=2)
        assert spec.with_updates(regions=3).regions == 3
        with pytest.raises(ConfigurationError):
            spec.with_updates(regions=0)
