"""Delta sessions over the two-tier tree: parity, dirty tracking, accounting.

A continuous session in ``deltas`` mode ships only dirty stations' cached
reports.  Under a two-tier topology the shipment climbs region → trunk and a
station is settled (marked clean) only when its region's re-encoded summary
actually reached the center — the trunk-gated exactly-once rule — while the
rankings every step serves must stay identical to the flat star's.
"""

from __future__ import annotations

import pytest

from repro.topology import TopologySpec

from .conftest import open_cluster

TWO_TIER = TopologySpec(kind="two-tier", regions=2)


def _ranking(report):
    return [(entry.user_id, entry.score) for entry in report.results]


def _publish_all(session, dataset):
    """Stations enter a delta session through publish(), like the engine."""
    for station_id in dataset.station_ids:
        session.publish(station_id, dataset.local_patterns_at(station_id))


class TestDeltaParity:
    def test_step_rankings_match_the_flat_star(self, dataset, queries):
        rankings = {}
        for label, topology in (("flat", None), ("two-tier", TWO_TIER)):
            with open_cluster(dataset, topology=topology) as cluster:
                cluster.subscribe(queries)
                with cluster.open_session(mode="deltas") as session:
                    _publish_all(session, dataset)
                    rankings[label] = _ranking(session.step())
        assert rankings["flat"]
        assert rankings["two-tier"] == rankings["flat"]

    def test_republish_step_matches_the_flat_star(self, dataset, queries):
        station = dataset.station_ids[0]
        rankings = {}
        for label, topology in (("flat", None), ("two-tier", TWO_TIER)):
            with open_cluster(dataset, topology=topology) as cluster:
                cluster.subscribe(queries)
                with cluster.open_session(mode="deltas") as session:
                    _publish_all(session, dataset)
                    session.step()
                    session.publish(station, dataset.local_patterns_at(station))
                    rankings[label] = _ranking(session.step())
        assert rankings["two-tier"] == rankings["flat"]


class TestDirtyTracking:
    def test_clean_steps_ship_nothing(self, dataset, queries):
        with open_cluster(dataset, topology=TWO_TIER) as cluster:
            cluster.subscribe(queries)
            with cluster.open_session(mode="deltas") as session:
                _publish_all(session, dataset)
                first = session.step()
                assert first.mode == "delta"
                assert set(first.delivered_station_ids) == set(dataset.station_ids)
                second = session.step()
        # Nothing changed between steps: the dirty ledger is empty, so the
        # second shipment moves zero stations and zero uplink bytes.
        assert second.delivered_station_ids == ()
        assert second.uplink_bytes == 0
        assert second.lost_station_count == 0
        assert _ranking(second) == _ranking(first)

    def test_only_the_dirty_station_reships(self, dataset, queries):
        station = dataset.station_ids[0]
        with open_cluster(dataset, topology=TWO_TIER) as cluster:
            cluster.subscribe(queries)
            with cluster.open_session(mode="deltas") as session:
                _publish_all(session, dataset)
                session.step()
                session.publish(station, dataset.local_patterns_at(station))
                assert session.dirty_station_ids == (station,)
                report = session.step()
                assert report.delivered_station_ids == (station,)
                assert session.dirty_station_ids == ()

    def test_rotation_downlink_charges_stations_plus_aggregators(
        self, dataset, queries
    ):
        """A rotated artifact fans out trunk→aggregators→stations: the tree
        charges one extra artifact copy per region on top of the flat star's
        one copy per active station."""
        station_count = len(dataset.station_ids)
        downlink = {}
        for label, topology in (("flat", None), ("two-tier", TWO_TIER)):
            with open_cluster(dataset, topology=topology) as cluster:
                cluster.subscribe(queries)
                with cluster.open_session(mode="deltas") as session:
                    _publish_all(session, dataset)
                    session.step()
                    session.subscribe(queries)  # rotation: every station re-downloads
                    downlink[label] = session.step().downlink_bytes
        assert downlink["flat"] > 0
        # flat = artifact * stations; two-tier = artifact * (stations + regions)
        assert (
            downlink["two-tier"] * station_count
            == downlink["flat"] * (station_count + TWO_TIER.regions)
        )


class TestDeterminism:
    def test_two_tier_delta_transcripts_replay(self, dataset, queries):
        transcripts = []
        for _ in range(2):
            with open_cluster(dataset, topology=TWO_TIER) as cluster:
                cluster.subscribe(queries)
                with cluster.open_session(mode="deltas") as session:
                    _publish_all(session, dataset)
                    session.step()
                    station = dataset.station_ids[-1]
                    session.publish(station, dataset.local_patterns_at(station))
                    session.step()
                transcripts.append(cluster.transcript_bytes())
        assert transcripts[0] == transcripts[1]

    @pytest.mark.parametrize("method", ["wbf", "bf", "local"])
    def test_delta_parity_across_report_protocols(self, dataset, queries, method):
        outcomes = {}
        for label, topology in (("flat", None), ("two-tier", TWO_TIER)):
            with open_cluster(dataset, method=method, topology=topology) as cluster:
                cluster.subscribe(queries)
                with cluster.open_session(mode="deltas") as session:
                    _publish_all(session, dataset)
                    report = session.step()
                    outcomes[label] = (
                        _ranking(report), set(report.delivered_station_ids)
                    )
        if method != "local":  # local-only serves no center rankings here
            assert outcomes["flat"][0]
        assert outcomes["two-tier"] == outcomes["flat"]
