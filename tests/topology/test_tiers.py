"""The tier map: station orders partition into contiguous regional slices."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.topology import TopologySpec, build_tier_map, region_slices
from repro.wire import WIRE_VERSION, WIRE_VERSION_EXT

STATIONS = tuple(f"s{i}" for i in range(5))


class TestRegionSlices:
    def test_balanced_split_spreads_the_remainder_forward(self):
        spec = TopologySpec(kind="two-tier", regions=2)
        assert region_slices(5, spec) == [(0, 3), (3, 5)]

    def test_balanced_split_covers_exactly(self):
        spec = TopologySpec(kind="two-tier", regions=3)
        slices = region_slices(7, spec)
        assert slices == [(0, 3), (3, 5), (5, 7)]
        assert slices[0][0] == 0 and slices[-1][1] == 7
        assert all(a[1] == b[0] for a, b in zip(slices, slices[1:]))

    def test_fixed_width_split(self):
        spec = TopologySpec(kind="two-tier", regions=3, stations_per_region=2)
        assert region_slices(6, spec) == [(0, 2), (2, 4), (4, 6)]

    def test_fixed_width_last_region_takes_the_remainder(self):
        spec = TopologySpec(kind="two-tier", regions=2, stations_per_region=3)
        assert region_slices(5, spec) == [(0, 3), (3, 5)]

    def test_rejects_more_regions_than_stations(self):
        spec = TopologySpec(kind="two-tier", regions=6)
        with pytest.raises(ConfigurationError, match="must not exceed stations"):
            region_slices(5, spec)

    @pytest.mark.parametrize("width", [1, 5])
    def test_rejects_widths_that_cannot_cover(self, width):
        spec = TopologySpec(kind="two-tier", regions=2, stations_per_region=width)
        with pytest.raises(ConfigurationError, match="cannot cover"):
            region_slices(5, spec)


class TestBuildTierMap:
    def test_regions_are_contiguous_slices_in_order(self):
        tier_map = build_tier_map(STATIONS, TopologySpec(kind="two-tier", regions=2))
        assert [r.name for r in tier_map.regions] == ["region-0", "region-1"]
        assert tier_map.regions[0].station_ids == ("s0", "s1", "s2")
        assert tier_map.regions[1].station_ids == ("s3", "s4")
        assert tier_map.aggregator_ids == ("aggregator-0", "aggregator-1")

    def test_region_of_resolves_every_station(self):
        tier_map = build_tier_map(STATIONS, TopologySpec(kind="two-tier", regions=2))
        assert tier_map.region_of("s2").name == "region-0"
        assert tier_map.region_of("s3").name == "region-1"
        with pytest.raises(KeyError):
            tier_map.region_of("s99")

    def test_star_topologies_have_no_tier_map(self):
        with pytest.raises(ConfigurationError, match="no tier map"):
            build_tier_map(STATIONS, TopologySpec())

    def test_degraded_region_carries_its_profile(self):
        tier_map = build_tier_map(
            STATIONS,
            TopologySpec(
                kind="two-tier", regions=2,
                degraded_regions=("region-1",), degraded_profile="lossy",
            ),
        )
        assert tier_map.regions[0].fault_profile is None
        assert tier_map.regions[1].fault_profile == "lossy"

    def test_legacy_region_negotiates_down_while_the_trunk_upgrades(self):
        tier_map = build_tier_map(
            STATIONS,
            TopologySpec(
                kind="two-tier", regions=2,
                wire_version=WIRE_VERSION_EXT, legacy_regions=("region-0",),
            ),
        )
        assert tier_map.trunk_wire_version == WIRE_VERSION_EXT
        assert tier_map.regions[0].wire_version == WIRE_VERSION
        assert tier_map.regions[1].wire_version == WIRE_VERSION_EXT

    def test_uniform_deployments_speak_one_version(self):
        tier_map = build_tier_map(STATIONS, TopologySpec(kind="two-tier", regions=2))
        assert tier_map.trunk_wire_version == WIRE_VERSION
        assert all(r.wire_version == WIRE_VERSION for r in tier_map.regions)
