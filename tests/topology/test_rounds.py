"""Two-tier rounds: ranking parity with the flat star, per-tier accounting.

The parity claim is the subsystem's core invariant — the regional tier is a
*routing* change: regions are contiguous slices of the station order and
every inbox is consumed in canonical order, so a fault-free two-tier round
feeds the center's aggregation phase exactly the flat round's report
sequence, for all four protocols.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.cluster.spec import PROTOCOL_METHODS
from repro.topology import TopologySpec

from .conftest import open_cluster

TWO_TIER = TopologySpec(kind="two-tier", regions=2)


def _ranking(report):
    return [(entry.user_id, entry.score) for entry in report.results]


def _det_costs(costs):
    """The cost report minus its wall-clock compute timings.

    Everything else — bytes, counts, the virtual transmission time, the
    per-tier ledger — is a pure function of (city, queries, net seed).
    """
    return replace(
        costs, encode_time_s=0.0, station_time_s=0.0, aggregate_time_s=0.0
    )


def _run_round(dataset, queries, **kwargs):
    with open_cluster(dataset, **kwargs) as cluster:
        cluster.subscribe(queries)
        return cluster.round(k=None)


class TestRankingParity:
    @pytest.mark.parametrize("method", PROTOCOL_METHODS)
    def test_two_tier_matches_flat_star_rankings(self, dataset, queries, method):
        flat = _run_round(dataset, queries, method=method)
        tiered = _run_round(dataset, queries, method=method, topology=TWO_TIER)
        assert _ranking(tiered) == _ranking(flat)

    def test_star_topology_is_the_flat_engine_byte_for_byte(self, dataset, queries):
        flat = _run_round(dataset, queries)
        star = _run_round(dataset, queries, topology=TopologySpec(kind="star"))
        assert star.transcript == flat.transcript
        assert _det_costs(star.costs) == _det_costs(flat.costs)
        assert _ranking(star) == _ranking(flat)

    def test_two_tier_rounds_replay_deterministically(self, dataset, queries):
        first = _run_round(dataset, queries, topology=TWO_TIER)
        second = _run_round(dataset, queries, topology=TWO_TIER)
        assert second.transcript == first.transcript
        assert _det_costs(second.costs) == _det_costs(first.costs)


class TestTierAccounting:
    def test_flat_rounds_carry_no_tier_ledger(self, dataset, queries):
        assert _run_round(dataset, queries).costs.tiers == ()

    def test_tier_ledger_lists_trunk_then_regions_in_order(self, dataset, queries):
        costs = _run_round(dataset, queries, topology=TWO_TIER).costs
        assert [tier.tier for tier in costs.tiers] == [
            "trunk", "region-0", "region-1",
        ]

    def test_tier_bytes_sum_to_the_round_totals(self, dataset, queries):
        costs = _run_round(dataset, queries, topology=TWO_TIER).costs
        assert sum(t.downlink_bytes for t in costs.tiers) == costs.downlink_bytes
        assert sum(t.uplink_bytes for t in costs.tiers) == costs.uplink_bytes
        assert sum(t.message_count for t in costs.tiers) == costs.message_count

    def test_center_ingress_is_the_trunk_uplink_and_shrinks(self, dataset, queries):
        flat = _run_round(dataset, queries).costs
        tiered = _run_round(dataset, queries, topology=TWO_TIER).costs
        trunk = next(t for t in tiered.tiers if t.tier == "trunk")
        assert flat.center_ingress_bytes == flat.uplink_bytes
        assert tiered.center_ingress_bytes == trunk.uplink_bytes
        assert tiered.center_ingress_bytes < flat.center_ingress_bytes

    def test_report_counts_survive_aggregation(self, dataset, queries):
        flat = _run_round(dataset, queries).costs
        tiered = _run_round(dataset, queries, topology=TWO_TIER).costs
        # WBF reports carry no exact duplicates in this city, so the
        # deduplicating union must forward every report the flat round saw.
        assert tiered.report_count == flat.report_count


class TestDegradedRegion:
    DEGRADED = TopologySpec(
        kind="two-tier", regions=2,
        degraded_regions=("region-1",), degraded_profile="lossy",
    )

    def test_faults_stay_contained_behind_the_degraded_aggregator(
        self, dataset, queries
    ):
        with open_cluster(
            dataset, topology=self.DEGRADED, allow_partial=True, net_seed=1
        ) as cluster:
            cluster.subscribe(queries)
            costs = cluster.round(k=None).costs
        by_name = {tier.tier: tier for tier in costs.tiers}
        # The clean tiers never retransmit or drop; only the lossy regional
        # hop may (its per-tier rows are how containment is observable).
        for name in ("trunk", "region-0"):
            assert by_name[name].retransmit_count == 0
            assert by_name[name].dropped_frame_count == 0
        assert (
            by_name["region-1"].retransmit_count
            + by_name["region-1"].dropped_frame_count
        ) > 0

    def test_degraded_rounds_replay_deterministically(self, dataset, queries):
        ledgers = []
        for _ in range(2):
            with open_cluster(
                dataset, topology=self.DEGRADED, allow_partial=True, net_seed=1
            ) as cluster:
                cluster.subscribe(queries)
                report = cluster.round(k=None)
                ledgers.append(
                    (report.transcript, _det_costs(report.costs), _ranking(report))
                )
        assert ledgers[0] == ledgers[1]
