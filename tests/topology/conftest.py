"""Shared fixtures of the hierarchical-topology suites.

One small synthetic city, one query batch, and a spec factory whose sim
deployments differ from the flat baseline in exactly one field —
``ClusterSpec.topology`` — so every divergence a test observes is
attributable to the regional tier alone.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, ProtocolSpec
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload
from repro.topology import TopologySpec

#: Five stations so a regions=2 split is uneven (3 + 2): the balanced-slice
#: remainder path is always exercised.
DATASET_SPEC = DatasetSpec(
    users_per_category=4,
    station_count=5,
    days=1,
    intervals_per_day=24,
    noise_level=0,
    cliques_per_place=2,
    replicated_decoys_per_category=1,
    seed=505,
)


@pytest.fixture(scope="session")
def dataset():
    return build_dataset(DATASET_SPEC)


@pytest.fixture(scope="session")
def queries(dataset):
    return list(build_query_workload(dataset, query_count=4, epsilon=0, seed=9).queries)


def make_spec(
    method: str = "wbf",
    topology: "TopologySpec | None" = None,
    **fault_kwargs,
) -> ClusterSpec:
    """A sim deployment differing from the flat baseline only in ``topology``."""
    from repro.cluster.spec import FaultSpec

    return ClusterSpec(
        name="topology-suite",
        protocol=ProtocolSpec(method=method),
        topology=topology,
        faults=FaultSpec(**fault_kwargs) if fault_kwargs else FaultSpec(),
    )


def open_cluster(dataset, **kwargs) -> Cluster:
    return Cluster(make_spec(**kwargs), dataset=dataset)
