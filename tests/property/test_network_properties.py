"""Property-based invariants of the deterministic event-driven network.

Three families, over randomized fault plans and message batches:

1. **Determinism** — the same ``(plan, seed, sends)`` always produces a
   byte-identical event transcript and an identical frame ledger;
2. **Conservation** — every emitted frame is accounted for: delivered,
   suppressed as a duplicate, dropped, or rejected as corrupt; nothing stays
   in flight once a phase completes;
3. **Corruption safety** — a corrupted frame either raises the typed
   :class:`~repro.wire.errors.WireFormatError` in the decode path or is caught
   by the link-layer checksum; an accepted message is always exactly the one
   that was sent, so corruption can never surface as wrong matches.
"""

import zlib
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import wire
from repro.core.protocol import MatchReport
from repro.distributed.faults import FaultInjector, FaultPlan
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import NetworkConfig, SimulatedNetwork
from repro.distributed.node import Node

identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=8
)

reports = st.builds(
    MatchReport,
    user_id=identifiers,
    station_id=identifiers,
    weight=st.fractions(min_value=0, max_value=1).filter(
        lambda f: f.denominator < 2**32
    ),
    query_id=identifiers,
)

plans = st.builds(
    FaultPlan,
    drop_probability=st.floats(0, 0.4),
    duplicate_probability=st.floats(0, 0.4),
    corrupt_probability=st.floats(0, 0.4),
    reorder_probability=st.floats(0, 0.5),
    reorder_delay_s=st.floats(0, 0.1),
    jitter_s=st.floats(0, 0.05),
    straggler_probability=st.floats(0, 0.5),
    straggler_multiplier=st.floats(1, 4),
)

batches = st.lists(st.lists(reports, min_size=0, max_size=4), min_size=1, max_size=6)


def _run_gather(plan: FaultPlan, seed: int, batch: list[list[MatchReport]]):
    """One uplink phase of ``batch`` report uploads into a fresh center node."""
    center = Node("center")
    network = SimulatedNetwork(
        NetworkConfig(), fault_plan=plan, seed=seed, allow_partial=True
    )
    sends = [
        (
            Message(f"station-{index}", "center", MessageKind.MATCH_REPORT, list(payload)),
            center,
        )
        for index, payload in enumerate(batch)
    ]
    outcome = network.gather(sends)
    return network, center, sends, outcome


class TestDeterminism:
    @given(plan=plans, seed=st.integers(0, 2**32), batch=batches)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_transcript_and_ledger(self, plan, seed, batch):
        first_net, _, _, first_out = _run_gather(plan, seed, batch)
        second_net, _, _, second_out = _run_gather(plan, seed, batch)
        assert first_net.transcript_bytes() == second_net.transcript_bytes()
        assert first_net.frame_stats() == second_net.frame_stats()
        assert first_out.duration_s == second_out.duration_s
        assert first_out.delivered_ids == second_out.delivered_ids
        assert first_out.failed_ids == second_out.failed_ids


class TestConservation:
    @given(plan=plans, seed=st.integers(0, 2**32), batch=batches)
    @settings(max_examples=40, deadline=None)
    def test_every_emitted_frame_is_accounted_for(self, plan, seed, batch):
        network, center, _, outcome = _run_gather(plan, seed, batch)
        stats = network.frame_stats()
        assert stats.frames_in_flight == 0
        assert stats.frames_sent == (
            stats.frames_delivered
            + stats.frames_duplicate
            + stats.frames_dropped
            + stats.frames_corrupt
        )
        # Exactly-once to the application: one accepted message per delivered
        # logical transfer, every logical message either delivered or failed.
        assert stats.frames_delivered == len(center.inbox) == len(outcome.delivered_ids)
        assert len(outcome.delivered_ids) + len(outcome.failed_ids) == len(batch)
        assert stats.payload_bytes_delivered <= stats.payload_bytes_sent
        assert 0.0 <= stats.goodput_fraction <= 1.0
        # Corruption classification is total: every corrupt frame was caught
        # by the codec or by the checksum backstop.
        assert stats.frames_corrupt == (
            stats.corrupt_caught_by_codec + stats.corrupt_caught_by_checksum
        )


class TestCorruptionSafety:
    @given(
        seed=st.integers(0, 2**32),
        batch=batches,
        probability=st.floats(0.3, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_accepted_messages_are_exactly_what_was_sent(self, seed, batch, probability):
        plan = FaultPlan(corrupt_probability=probability)
        network, center, sends, _ = _run_gather(plan, seed, batch)
        originals = {message.sender: message for message, _ in sends}
        for accepted in center.inbox:
            original = originals[accepted.sender]
            assert accepted == original
            assert accepted.payload == original.payload

    @given(
        payload=st.lists(reports, min_size=1, max_size=6),
        flip_position=st.integers(0, 10**6),
        flip_mask=st.integers(1, 255),
    )
    @settings(max_examples=60, deadline=None)
    def test_flipped_byte_decode_raises_typed_error_or_is_checksum_caught(
        self, payload, flip_position, flip_mask
    ):
        message = Message("station-a", "center", MessageKind.MATCH_REPORT, payload)
        pristine = message.to_wire()
        corrupted = bytearray(pristine)
        corrupted[flip_position % len(corrupted)] ^= flip_mask
        corrupted = bytes(corrupted)
        # The frame checksum always notices the flip ...
        assert zlib.crc32(corrupted) != zlib.crc32(pristine)
        # ... and the decode path either raises the typed error or returns a
        # message; it must never escape with any other exception type.
        try:
            Message.from_wire(corrupted)
        except wire.WireFormatError:
            pass  # the only acceptable exception

    @given(data=st.binary(min_size=1, max_size=128), frame_id=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_injector_corruption_always_changes_the_bytes(self, data, frame_id):
        injector = FaultInjector(FaultPlan(corrupt_probability=1.0), seed=9)
        corrupted = injector.corrupt_bytes(data, frame_id, 1)
        assert corrupted != data


def test_fault_free_plan_never_retransmits():
    plan = FaultPlan()
    batch = [[MatchReport("u", "s", weight=Fraction(1), query_id="q")] for _ in range(5)]
    network, center, _, outcome = _run_gather(plan, 0, batch)
    stats = network.frame_stats()
    assert stats.retransmit_count == 0
    assert stats.frames_sent == stats.frames_delivered == 5
    assert stats.goodput_fraction == 1.0
    assert len(center.inbox) == 5
    assert outcome.failed_ids == ()
