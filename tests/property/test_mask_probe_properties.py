"""Property tests: the WBF's mask-index probe equals per-query set probing.

The batched matcher intersects weight sets across all sampled bit positions
through an integer-mask index (:meth:`WeightedBloomFilter.consistent_weights_over`);
these properties pin it to the reference semantics — per-position
:meth:`query_weights_at` intersection — including across mutations (the index
is revision-keyed) and across a wire round-trip (decoded filters share
interned frozensets).
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import wire
from repro.core.wbf import WeightedBloomFilter

weights_strategy = st.tuples(
    st.sampled_from(["q1", "q2", "q3"]),
    # Bounded denominators keep every weight inside the wire's 64-bit range.
    st.fractions(min_value=0, max_value=1, max_denominator=1000),
)
entries_strategy = st.lists(
    st.tuples(st.integers(0, 400), weights_strategy), min_size=1, max_size=40
)


def reference_intersection(wbf: WeightedBloomFilter, rows) -> frozenset:
    """Per-row set-intersection semantics the matcher used before the mask index."""
    common = None
    for row in rows:
        weights = wbf.query_weights_at(row, bits_checked=True)
        if not weights:
            return frozenset()
        common = set(weights) if common is None else (common & weights)
        if not common:
            return frozenset()
    return frozenset(common) if common else frozenset()


def probed_rows(wbf: WeightedBloomFilter, items) -> list[list[int]]:
    """Position rows of items that pass the all-bits-set pre-check."""
    rows = [wbf.hash_family.positions(item) for item in items]
    passed = wbf.bits_all_set_rows(rows)
    return [row for row, ok in zip(rows, passed) if ok]


class TestMaskProbeEquivalence:
    @given(entries=entries_strategy, probes=st.lists(st.integers(0, 400), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_matches_per_row_intersection(self, entries, probes):
        wbf = WeightedBloomFilter(1024, 4)
        for item, weight in entries:
            wbf.add(item, weight)
        rows = probed_rows(wbf, probes)
        flat = [position for row in rows for position in row]
        expected = reference_intersection(wbf, rows) if rows else frozenset()
        assert wbf.consistent_weights_over(flat) == expected

    @given(entries=entries_strategy)
    @settings(max_examples=60, deadline=None)
    def test_inserted_items_stay_consistent(self, entries):
        wbf = WeightedBloomFilter(1024, 4)
        for item, weight in entries:
            wbf.add(item, weight)
        for item, weight in entries:
            positions = wbf.hash_family.positions(item)
            assert weight in wbf.consistent_weights_over(positions)

    @given(entries=entries_strategy, extra=st.tuples(st.integers(0, 400), weights_strategy))
    @settings(max_examples=40, deadline=None)
    def test_mutation_invalidates_index(self, entries, extra):
        wbf = WeightedBloomFilter(1024, 4)
        for item, weight in entries:
            wbf.add(item, weight)
        # Build the index, then mutate, then re-probe: results must follow the
        # mutation (the index is keyed on the filter's revision counter).
        first_item = entries[0][0]
        wbf.consistent_weights_over(wbf.hash_family.positions(first_item))
        extra_item, extra_weight = extra
        wbf.add(extra_item, extra_weight)
        rows = probed_rows(wbf, [item for item, _ in entries] + [extra_item])
        for row in rows:
            assert wbf.consistent_weights_over(row) == reference_intersection(
                wbf, [row]
            )

    @given(entries=entries_strategy)
    @settings(max_examples=40, deadline=None)
    def test_wire_round_trip_preserves_probe(self, entries):
        wbf = WeightedBloomFilter(1024, 4)
        for item, weight in entries:
            wbf.add(item, weight)
        decoded = wire.decode(wire.encode(wbf))
        for item, _ in entries:
            positions = wbf.hash_family.positions(item)
            assert decoded.consistent_weights_over(
                positions
            ) == wbf.consistent_weights_over(positions)

    @given(entries=entries_strategy, extra=st.tuples(st.integers(0, 400), weights_strategy))
    @settings(max_examples=40, deadline=None)
    def test_decoded_filter_copy_on_write(self, entries, extra):
        # Decoded filters share interned frozensets across positions; inserting
        # must only affect the touched positions (copy-on-write), never a
        # position that merely shared the object.
        wbf = WeightedBloomFilter(1024, 4)
        for item, weight in entries:
            wbf.add(item, weight)
        decoded = wire.decode(wire.encode(wbf))
        extra_item, extra_weight = extra
        decoded.add(extra_item, extra_weight)
        mirror = WeightedBloomFilter(1024, 4)
        for item, weight in entries:
            mirror.add(item, weight)
        mirror.add(extra_item, extra_weight)
        assert decoded == mirror
