"""Property-based tests for the accumulation transform and combinations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.combinations import combination_count, enumerate_pattern_combinations
from repro.timeseries.pattern import LocalPattern
from repro.timeseries.transform import accumulate, deaccumulate, is_non_decreasing

values_strategy = st.lists(st.integers(0, 1000), min_size=1, max_size=60)


class TestAccumulationProperties:
    @given(values=values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, values):
        assert deaccumulate(accumulate(values)) == values

    @given(values=values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_monotone_for_non_negative_values(self, values):
        assert is_non_decreasing(accumulate(values))

    @given(values=values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_last_element_is_total(self, values):
        assert accumulate(values)[-1] == sum(values)

    @given(values=values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_length_preserved(self, values):
        assert len(accumulate(values)) == len(values)

    @given(first=values_strategy, second=values_strategy)
    @settings(max_examples=100, deadline=None)
    def test_injective_on_equal_length_inputs(self, first, second):
        # The transform is a bijection, so distinct inputs of the same length give
        # distinct outputs (this is what lets it distinguish {1,2,3} from {3,2,1}).
        if len(first) == len(second) and first != second:
            assert accumulate(first) != accumulate(second)

    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_linearity(self, values):
        doubled = [2 * v for v in values]
        assert accumulate(doubled) == [2 * v for v in accumulate(values)]


class TestCombinationProperties:
    @given(
        fragments=st.lists(
            st.lists(st.integers(0, 50), min_size=3, max_size=3), min_size=1, max_size=5
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_combination_count_matches_formula(self, fragments):
        locals_ = [
            LocalPattern("u", values, f"bs-{i}") for i, values in enumerate(fragments)
        ]
        combos = enumerate_pattern_combinations(locals_)
        assert len(combos) == combination_count(len(locals_))

    @given(
        fragments=st.lists(
            st.lists(st.integers(0, 50), min_size=4, max_size=4), min_size=1, max_size=5
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_full_combination_equals_per_interval_sum(self, fragments):
        locals_ = [
            LocalPattern("u", values, f"bs-{i}") for i, values in enumerate(fragments)
        ]
        combos = enumerate_pattern_combinations(locals_)
        expected = tuple(sum(column) for column in zip(*fragments))
        assert combos[-1].values == expected

    @given(
        fragments=st.lists(
            st.lists(st.integers(0, 20), min_size=2, max_size=2), min_size=2, max_size=4
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_combination_dominated_by_global(self, fragments):
        locals_ = [
            LocalPattern("u", values, f"bs-{i}") for i, values in enumerate(fragments)
        ]
        combos = enumerate_pattern_combinations(locals_)
        global_values = combos[-1].values
        for combo in combos:
            assert all(c <= g for c, g in zip(combo.values, global_values))
