"""Property-based round-trip tests for the binary wire codec.

Three invariants, over randomized artifacts:

1. ``decode(encode(x)) == x`` for every protocol artifact type;
2. encodings are *canonical*: the same logical filter built on the pure-Python
   and NumPy bit backends (or with weights inserted in any order) encodes to
   byte-identical output;
3. compression never changes the decoded artifact.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import wire
from repro.bloom.backend import available_backends
from repro.bloom.standard import BloomFilter
from repro.core.protocol import MatchReport
from repro.core.wbf import WeightedBloomFilter
from repro.distributed.messages import Message, MessageKind
from repro.timeseries.pattern import LocalPattern
from repro.timeseries.query import QueryPattern

BACKENDS = available_backends()
HAS_NUMPY_BACKEND = "numpy" in BACKENDS

identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_", min_size=1, max_size=12
)
# The wire format carries 64-bit numerics (a documented limit; values beyond it
# raise UnsupportedWireTypeError, covered below) — keep generated fractions
# inside that range.
fractions = st.fractions(min_value=-2, max_value=2).filter(
    lambda f: abs(f.numerator) < 2**63 and f.denominator < 2**63
)
weights = st.one_of(
    fractions,
    st.tuples(
        identifiers,
        st.fractions(min_value=0, max_value=1).filter(lambda f: f.denominator < 2**63),
    ),
    st.integers(-1000, 1000),
    identifiers,
)
items = st.one_of(
    st.integers(-(10**6), 10**6),
    identifiers,
    st.tuples(st.integers(0, 100), st.integers(-100, 100)),
)

wbf_params = st.tuples(
    st.integers(8, 512),  # bit_count
    st.integers(1, 5),  # hash_count
    st.integers(0, 1000),  # seed
    st.lists(st.tuples(items, weights), max_size=40),  # entries
)


def build_wbf(params, backend: str) -> WeightedBloomFilter:
    bit_count, hash_count, seed, entries = params
    wbf = WeightedBloomFilter(bit_count, hash_count, seed=seed, backend=backend)
    for item, weight in entries:
        wbf.add(item, weight)
    return wbf


class TestFilterRoundTrips:
    @given(params=wbf_params)
    @settings(max_examples=40, deadline=None)
    def test_wbf_round_trip_all_backends(self, params):
        for backend in BACKENDS:
            wbf = build_wbf(params, backend)
            decoded = wire.decode(wire.encode(wbf), backend=backend)
            assert decoded == wbf
            assert decoded.backend_name == wbf.backend_name

    @given(params=wbf_params)
    @settings(max_examples=40, deadline=None)
    def test_wbf_bytes_identical_across_backends(self, params):
        if not HAS_NUMPY_BACKEND:
            pytest.skip("NumPy backend unavailable")
        assert wire.encode(build_wbf(params, "python")) == wire.encode(
            build_wbf(params, "numpy")
        )

    @given(params=wbf_params)
    @settings(max_examples=25, deadline=None)
    def test_wbf_bytes_independent_of_insertion_order(self, params):
        bit_count, hash_count, seed, entries = params
        forward = build_wbf(params, "python")
        backward = build_wbf((bit_count, hash_count, seed, list(reversed(entries))), "python")
        assert wire.encode(forward) == wire.encode(backward)

    @given(
        bit_count=st.integers(8, 512),
        hash_count=st.integers(1, 5),
        seed=st.integers(0, 1000),
        entries=st.lists(items, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_bloom_round_trip_and_backend_identity(self, bit_count, hash_count, seed, entries):
        encodings = []
        for backend in BACKENDS:
            bloom = BloomFilter(bit_count, hash_count, seed=seed, backend=backend)
            for item in entries:
                bloom.add(item)
            data = wire.encode(bloom)
            encodings.append(data)
            assert wire.decode(data, backend=backend) == bloom
        assert len(set(encodings)) == 1

    @given(params=wbf_params)
    @settings(max_examples=25, deadline=None)
    def test_compression_is_lossless(self, params):
        wbf = build_wbf(params, "python")
        assert wire.decode(wire.encode(wbf, compress=True)) == wbf


local_patterns = st.builds(
    LocalPattern,
    identifiers,
    st.lists(st.integers(-(10**6), 10**6), min_size=1, max_size=20),
    identifiers,
)


@st.composite
def query_batches(draw):
    count = draw(st.integers(1, 4))
    queries = []
    for index in range(count):
        length = draw(st.integers(1, 12))
        user = draw(identifiers)
        station_count = draw(st.integers(1, 3))
        locals_ = [
            LocalPattern(
                user,
                draw(st.lists(st.integers(0, 1000), min_size=length, max_size=length)),
                draw(identifiers),
            )
            for _ in range(station_count)
        ]
        queries.append(QueryPattern(f"q{index}", locals_))
    return tuple(queries)


match_reports = st.builds(
    MatchReport,
    user_id=identifiers,
    station_id=identifiers,
    weight=st.one_of(st.none(), fractions),
    query_id=st.one_of(st.just(""), identifiers),
)


class TestPayloadRoundTrips:
    @given(batch=query_batches())
    @settings(max_examples=40, deadline=None)
    def test_query_batch_round_trip(self, batch):
        assert wire.decode(wire.encode(batch)) == batch

    @given(reports=st.lists(match_reports, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_report_list_round_trip(self, reports):
        assert wire.decode(wire.encode(reports)) == reports

    @given(patterns=st.lists(local_patterns, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_raw_pattern_upload_round_trip(self, patterns):
        assert wire.decode(wire.encode(patterns)) == patterns

    @given(
        sender=identifiers,
        recipient=identifiers,
        kind=st.sampled_from(list(MessageKind)),
        reports=st.lists(match_reports, max_size=10),
        compress=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_message_round_trip(self, sender, recipient, kind, reports, compress):
        message = Message(sender, recipient, kind, reports)
        decoded = wire.decode(wire.encode(message, compress=compress))
        assert decoded == message
        assert decoded.size_bytes() == message.size_bytes()

    @given(value=st.one_of(st.none(), st.booleans(), st.integers(-(2**62), 2**62), identifiers, fractions))
    @settings(max_examples=40, deadline=None)
    def test_scalar_round_trip(self, value):
        decoded = wire.decode(wire.encode(value))
        assert decoded == value and type(decoded) is type(value)


class TestDecoderRobustness:
    @given(params=wbf_params, cut=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_truncation_never_escapes_typed_error(self, params, cut):
        data = wire.encode(build_wbf(params, "python"))
        truncated = data[: min(cut, len(data) - 1)]
        with pytest.raises(wire.WireFormatError):
            wire.decode(truncated)

    @given(junk=st.binary(max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_random_junk_never_escapes_typed_error(self, junk):
        try:
            wire.decode(junk)
        except wire.WireFormatError:
            pass  # the only acceptable exception

    @given(exponent=st.integers(64, 80))
    @settings(max_examples=10, deadline=None)
    def test_out_of_range_numerics_raise_typed_error(self, exponent):
        # Values beyond the wire's 64-bit numeric range must surface as the
        # typed unsupported error (so size accounting can fall back), never as
        # a bare ValueError.
        wbf = WeightedBloomFilter(32, 1, backend="python")
        wbf.add(1, Fraction(1, 2**exponent))
        with pytest.raises(wire.UnsupportedWireTypeError):
            wire.encode(wbf)
