"""Property-based tests of end-to-end DI-matching invariants on tiny random datasets."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern

# Fragments are value lists over a fixed 6-interval horizon.
fragment_strategy = st.lists(st.integers(0, 8), min_size=6, max_size=6)


def _non_zero(fragments):
    return any(any(values) for values in fragments)


class TestDIMatchingInvariants:
    @given(fragments=st.lists(fragment_strategy, min_size=1, max_size=3).filter(_non_zero))
    @settings(max_examples=60, deadline=None)
    def test_query_owner_always_retrieved_with_score_one(self, fragments):
        """A user whose per-station data equals the query's own fragments must match."""
        locals_ = [
            LocalPattern("query-user", values, f"bs-{i}")
            for i, values in enumerate(fragments)
            if any(values)
        ]
        query = QueryPattern("q", locals_)
        protocol = DIMatchingProtocol(DIMatchingConfig(sample_count=4))
        artifact = protocol.encode([query])
        reports = []
        for fragment in locals_:
            patterns = PatternSet([LocalPattern("candidate", fragment.values, fragment.station_id)])
            reports.extend(protocol.station_match(fragment.station_id, patterns, artifact))
        results = protocol.aggregate(reports, k=None)
        assert results.user_ids()[0] == "candidate"
        assert results.users[0].score == 1.0

    @given(fragments=st.lists(fragment_strategy, min_size=1, max_size=3).filter(_non_zero))
    @settings(max_examples=60, deadline=None)
    def test_colocated_candidate_also_retrieved(self, fragments):
        """A candidate holding the whole pattern at a single station must also match."""
        locals_ = [
            LocalPattern("query-user", values, f"bs-{i}")
            for i, values in enumerate(fragments)
            if any(values)
        ]
        query = QueryPattern("q", locals_)
        protocol = DIMatchingProtocol(DIMatchingConfig(sample_count=4))
        artifact = protocol.encode([query])
        whole = list(query.global_pattern.values)
        patterns = PatternSet([LocalPattern("colocated", whole, "bs-single")])
        reports = protocol.station_match("bs-single", patterns, artifact)
        results = protocol.aggregate(reports, k=None)
        assert results.user_ids() == ["colocated"]
        assert results.users[0].score == 1.0

    @given(
        fragments=st.lists(fragment_strategy, min_size=1, max_size=2).filter(_non_zero),
        copies=st.integers(2, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_replicated_decoy_never_scores_one(self, fragments, copies):
        """The paper's over-matching case: whole-pattern copies at several stations."""
        locals_ = [
            LocalPattern("query-user", values, f"bs-{i}")
            for i, values in enumerate(fragments)
            if any(values)
        ]
        query = QueryPattern("q", locals_)
        protocol = DIMatchingProtocol(DIMatchingConfig(sample_count=4))
        artifact = protocol.encode([query])
        whole = list(query.global_pattern.values)
        reports = []
        for copy_index in range(copies):
            station = f"bs-copy-{copy_index}"
            patterns = PatternSet([LocalPattern("decoy", whole, station)])
            reports.extend(protocol.station_match(station, patterns, artifact))
        results = protocol.aggregate(reports, k=None)
        assert "decoy" not in results.user_ids()
