"""Property-based tests for similarity measures and sampling."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.sampling import uniform_sample, uniform_sample_indices
from repro.timeseries.similarity import (
    chebyshev_distance,
    epsilon_similar,
    l1_distance,
    l2_distance,
)

pair_strategy = st.integers(1, 40).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 500), min_size=n, max_size=n),
        st.lists(st.integers(0, 500), min_size=n, max_size=n),
    )
)


class TestDistanceProperties:
    @given(pair=pair_strategy)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, pair):
        a, b = pair
        assert l1_distance(a, b) == l1_distance(b, a)
        assert chebyshev_distance(a, b) == chebyshev_distance(b, a)
        assert l2_distance(a, b) == l2_distance(b, a)

    @given(values=st.lists(st.integers(0, 500), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_identity(self, values):
        assert l1_distance(values, values) == 0
        assert chebyshev_distance(values, values) == 0

    @given(pair=pair_strategy)
    @settings(max_examples=100, deadline=None)
    def test_metric_ordering(self, pair):
        a, b = pair
        assert chebyshev_distance(a, b) <= l2_distance(a, b) + 1e-9
        assert l2_distance(a, b) <= l1_distance(a, b) + 1e-9

    @given(pair=pair_strategy, epsilon=st.integers(0, 50))
    @settings(max_examples=100, deadline=None)
    def test_epsilon_similarity_equals_chebyshev_bound(self, pair, epsilon):
        a, b = pair
        assert epsilon_similar(a, b, epsilon) == (chebyshev_distance(a, b) <= epsilon)

    @given(pair=pair_strategy, epsilon=st.integers(0, 50))
    @settings(max_examples=100, deadline=None)
    def test_epsilon_similarity_monotone_in_epsilon(self, pair, epsilon):
        a, b = pair
        if epsilon_similar(a, b, epsilon):
            assert epsilon_similar(a, b, epsilon + 1)


class TestSamplingProperties:
    @given(length=st.integers(1, 500), count=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_indices_valid_sorted_unique_and_include_last(self, length, count):
        indices = uniform_sample_indices(length, count)
        assert indices == sorted(set(indices))
        assert all(0 <= i < length for i in indices)
        assert indices[-1] == length - 1
        assert len(indices) <= max(count + 1, min(count, length) + 1)

    @given(values=st.lists(st.integers(), min_size=1, max_size=200), count=st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_sampled_values_come_from_input(self, values, count):
        sampled = uniform_sample(values, count)
        assert all(any(v == candidate for candidate in values) for v in sampled)
        assert sampled[-1] == values[-1]
