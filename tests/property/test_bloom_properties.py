"""Property-based tests for the Bloom-filter substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.counting import CountingBloomFilter
from repro.bloom.hashing import HashFamily
from repro.bloom.scalable import ScalableBloomFilter
from repro.bloom.spectral import SpectralBloomFilter
from repro.bloom.standard import BloomFilter

items_strategy = st.lists(
    st.one_of(st.integers(-(10**6), 10**6), st.text(max_size=20)),
    max_size=60,
)


class TestBloomFilterProperties:
    @given(items=items_strategy)
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives(self, items):
        bloom = BloomFilter(2048, 4)
        bloom.add_many(items)
        assert all(item in bloom for item in items)

    @given(items=items_strategy, probe=st.integers())
    @settings(max_examples=50, deadline=None)
    def test_membership_is_deterministic(self, items, probe):
        bloom = BloomFilter(1024, 3)
        bloom.add_many(items)
        assert bloom.contains(probe) == bloom.contains(probe)

    @given(
        first=items_strategy,
        second=items_strategy,
    )
    @settings(max_examples=30, deadline=None)
    def test_union_superset_of_parts(self, first, second):
        a = BloomFilter(2048, 4, seed=1)
        b = BloomFilter(2048, 4, seed=1)
        a.add_many(first)
        b.add_many(second)
        merged = a.union(b)
        assert all(item in merged for item in first + second)

    @given(items=items_strategy)
    @settings(max_examples=30, deadline=None)
    def test_fill_ratio_monotone(self, items):
        bloom = BloomFilter(512, 3)
        previous = 0.0
        for item in items:
            bloom.add(item)
            current = bloom.fill_ratio()
            assert current >= previous
            previous = current


class TestCountingBloomFilterProperties:
    @given(items=st.lists(st.integers(0, 1000), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_add_then_remove_restores_absence_safe(self, items):
        cbf = CountingBloomFilter(2048, 4)
        cbf.add_many(items)
        for item in items:
            assert cbf.contains(item)
        for item in items:
            cbf.remove(item)
        # After removing everything that was added, remaining items may only be
        # residue from saturation, and item_count must be zero.
        assert cbf.item_count == 0

    @given(items=st.lists(st.integers(0, 100), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_count_estimate_is_upper_bound(self, items):
        cbf = CountingBloomFilter(2048, 4, counter_width_bits=8)
        cbf.add_many(items)
        for item in set(items):
            assert cbf.count_estimate(item) >= items.count(item)


class TestSpectralProperties:
    @given(items=st.lists(st.integers(0, 50), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_frequency_never_underestimates(self, items):
        sbf = SpectralBloomFilter(2048, 4)
        sbf.add_many(items)
        for item in set(items):
            assert sbf.frequency(item) >= items.count(item)


class TestScalableProperties:
    @given(items=st.lists(st.integers(), min_size=1, max_size=120, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives_under_growth(self, items):
        sbf = ScalableBloomFilter(initial_capacity=8)
        sbf.add_many(items)
        assert all(item in sbf for item in items)
        assert sbf.item_count == len(items)


class TestHashFamilyProperties:
    @given(
        item=st.one_of(st.integers(), st.text(max_size=30), st.tuples(st.integers(), st.integers())),
        hash_count=st.integers(1, 16),
        value_range=st.integers(1, 10_000),
        seed=st.integers(0, 2**32),
    )
    @settings(max_examples=100, deadline=None)
    def test_positions_always_in_range_and_stable(self, item, hash_count, value_range, seed):
        family = HashFamily(hash_count, value_range, seed=seed)
        positions = family.positions(item)
        assert len(positions) == hash_count
        assert all(0 <= p < value_range for p in positions)
        assert positions == family.positions(item)
