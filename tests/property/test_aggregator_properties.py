"""Property-based tests for the similarity ranker (Algorithm 3)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregator import SimilarityRanker
from repro.core.protocol import MatchReport

weight_strategy = st.fractions(min_value=Fraction(1, 100), max_value=1)

report_strategy = st.builds(
    MatchReport,
    user_id=st.sampled_from([f"user-{i}" for i in range(6)]),
    station_id=st.sampled_from([f"bs-{i}" for i in range(4)]),
    weight=weight_strategy,
    query_id=st.sampled_from(["qA", "qB"]),
)


class TestRankerProperties:
    @given(reports=st.lists(report_strategy, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_scores_bounded_by_max_weight_sum(self, reports):
        scores = SimilarityRanker().user_scores(reports)
        assert all(score <= Fraction(1) for score in scores.values())
        assert all(score > 0 for score in scores.values())

    @given(reports=st.lists(report_strategy, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_ranking_sorted_descending(self, reports):
        results = SimilarityRanker().aggregate(reports)
        scores = [entry.score for entry in results]
        assert scores == sorted(scores, reverse=True)

    @given(reports=st.lists(report_strategy, max_size=40), k=st.integers(0, 10))
    @settings(max_examples=100, deadline=None)
    def test_top_k_is_prefix_of_full_ranking(self, reports, k):
        ranker = SimilarityRanker()
        full = ranker.aggregate(reports)
        cut = ranker.aggregate(reports, k=k)
        assert cut.user_ids() == full.user_ids()[:k]

    @given(reports=st.lists(report_strategy, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_retrieved_users_are_subset_of_reported_users(self, reports):
        results = SimilarityRanker().aggregate(reports)
        assert set(results.user_ids()) <= {r.user_id for r in reports}

    @given(reports=st.lists(report_strategy, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_report_order_does_not_matter(self, reports):
        ranker = SimilarityRanker()
        forward = ranker.aggregate(reports)
        backward = ranker.aggregate(list(reversed(reports)))
        assert forward.user_ids() == backward.user_ids()

    @given(
        per_station=st.dictionaries(
            st.sampled_from([f"bs-{i}" for i in range(4)]),
            st.sets(weight_strategy, min_size=1, max_size=3),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_best_weight_sum_is_achievable_and_maximal(self, per_station):
        from itertools import product

        ranker = SimilarityRanker()
        best = ranker.best_weight_sum(per_station)
        achievable = [
            sum(choice, Fraction(0))
            for choice in product(*[sorted(options) for options in per_station.values()])
        ]
        valid = [total for total in achievable if total <= Fraction(1)]
        if valid:
            assert best == max(valid)
        else:
            assert best is None
