"""Property-based tests of stream-frame reassembly under arbitrary chunking.

The decoder's contract: however a well-formed frame sequence is chopped into
read chunks — byte-by-byte, coalesced, split mid-header or mid-payload — the
frames reassemble exactly, in order, with ``crc_ok`` true.  Any buffer whose
head cannot open a frame raises the typed
:class:`~repro.wire.errors.WireFormatError` instead of mis-framing; payload
damage inside a well-formed frame is reported via ``crc_ok=False`` while the
decoder stays in sync.  These are the invariants the TCP transport's center,
proxy and station workers all lean on (``repro.distributed.transport``).
"""

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire import (
    FrameStreamDecoder,
    STREAM_HEADER_SIZE,
    STREAM_MAGIC,
    WireFormatError,
    encode_stream_frame,
)

payloads_strategy = st.lists(
    st.binary(min_size=0, max_size=200), min_size=0, max_size=8
)


def chop(data: bytes, cut_points: list[int]) -> list[bytes]:
    """Split ``data`` at the given relative cut points (any values accepted)."""
    cuts = sorted({point % (len(data) + 1) for point in cut_points})
    chunks = []
    previous = 0
    for cut in cuts + [len(data)]:
        chunks.append(data[previous:cut])
        previous = cut
    return chunks


class TestReassembly:
    @given(
        payloads=payloads_strategy,
        cut_points=st.lists(st.integers(min_value=0), max_size=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_chunking_reassembles_exactly(self, payloads, cut_points):
        stream = b"".join(encode_stream_frame(payload) for payload in payloads)
        decoder = FrameStreamDecoder()
        frames = []
        for chunk in chop(stream, cut_points):
            frames += decoder.feed(chunk)
        assert [frame.payload for frame in frames] == payloads
        assert all(frame.crc_ok for frame in frames)
        assert decoder.at_boundary
        decoder.expect_boundary()

    @given(payloads=payloads_strategy.filter(bool), keep=st.integers(min_value=1))
    @settings(max_examples=200, deadline=None)
    def test_truncation_never_fabricates_a_frame(self, payloads, keep):
        stream = b"".join(encode_stream_frame(payload) for payload in payloads)
        cut = keep % len(stream)
        decoder = FrameStreamDecoder()
        frames = decoder.feed(stream[:cut])
        # Every frame the decoder released is a true prefix of the sequence;
        # the cut-off remainder is buffered, never guessed at.
        assert [frame.payload for frame in frames] == payloads[: len(frames)]
        assert decoder.buffered == cut - sum(
            STREAM_HEADER_SIZE + len(payload) for payload in payloads[: len(frames)]
        )
        if decoder.buffered:
            with pytest.raises(WireFormatError):
                decoder.expect_boundary()

    @given(
        payloads=payloads_strategy,
        junk=st.binary(min_size=1, max_size=40),
        cut_points=st.lists(st.integers(min_value=0), max_size=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_desynchronized_stream_raises_or_flags_never_misframes(
        self, payloads, junk, cut_points
    ):
        """Garbage after valid frames can only surface as an error or a CRC flag.

        A junk tail that happens to spell a well-formed header may decode as a
        frame, but then the CRC brands it untrusted (the adversarial-magic case
        the module docstring calls out); it can never be returned as a trusted
        payload the sender did not frame.
        """
        stream = b"".join(encode_stream_frame(payload) for payload in payloads) + junk
        decoder = FrameStreamDecoder()
        delivered = []
        try:
            for chunk in chop(stream, cut_points):
                delivered += decoder.feed(chunk)
        except WireFormatError:
            pass
        trusted = [frame.payload for frame in delivered if frame.crc_ok]
        assert trusted == payloads[: len(trusted)]

    @given(
        payloads=payloads_strategy.filter(bool),
        victim=st.integers(min_value=0),
        bit=st.integers(min_value=0, max_value=7),
        offset=st.integers(min_value=0),
    )
    @settings(max_examples=200, deadline=None)
    def test_payload_damage_flags_crc_and_keeps_sync(
        self, payloads, victim, bit, offset
    ):
        victim %= len(payloads)
        if not payloads[victim]:
            payloads = list(payloads)
            payloads[victim] = b"\x00"
        stream = bytearray()
        damaged_at = None
        for index, payload in enumerate(payloads):
            frame = encode_stream_frame(payload)
            if index == victim:
                position = STREAM_HEADER_SIZE + offset % len(payload)
                frame = bytearray(frame)
                frame[position] ^= 1 << bit
                damaged_at = index
            stream += bytes(frame)
        frames = FrameStreamDecoder().feed(bytes(stream))
        assert len(frames) == len(payloads)
        for index, frame in enumerate(frames):
            if index == damaged_at:
                assert not frame.crc_ok
            else:
                assert frame.crc_ok
                assert frame.payload == payloads[index]


class TestHeaderEdgeCases:
    @given(prefix=st.binary(min_size=1, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_partial_header_is_decisive_as_soon_as_possible(self, prefix):
        decoder = FrameStreamDecoder()
        if STREAM_MAGIC.startswith(prefix):
            assert decoder.feed(prefix) == []
            assert decoder.buffered == len(prefix)
        else:
            with pytest.raises(WireFormatError):
                decoder.feed(prefix)

    @given(length=st.integers(min_value=1, max_value=64), crc=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_header_only_never_yields_until_payload_arrives(self, length, crc):
        header = struct.pack(">4sII", STREAM_MAGIC, length, crc)
        decoder = FrameStreamDecoder()
        assert decoder.feed(header) == []
        payload = b"\x00" * length
        frames = decoder.feed(payload)
        assert len(frames) == 1
        assert frames[0].crc_ok == (zlib.crc32(payload) == crc)
