"""Property-based tests for the Weighted Bloom Filter."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wbf import WeightedBloomFilter

weights_strategy = st.fractions(min_value=0, max_value=1)


class TestWeightedBloomFilterProperties:
    @given(entries=st.lists(st.tuples(st.integers(0, 10_000), weights_strategy), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives_and_weight_present(self, entries):
        wbf = WeightedBloomFilter(4096, 4)
        for item, weight in entries:
            wbf.add(item, weight)
        for item, weight in entries:
            assert wbf.contains(item)
            assert weight in wbf.query_weights(item)

    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 1000), weights_strategy), min_size=1, max_size=40
        ),
        probe=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_query_weights_subset_of_inserted_weights(self, entries, probe):
        wbf = WeightedBloomFilter(2048, 4)
        for item, weight in entries:
            wbf.add(item, weight)
        all_weights = {weight for _, weight in entries}
        assert wbf.query_weights(probe) <= all_weights

    @given(entries=st.lists(st.tuples(st.integers(0, 1000), weights_strategy), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_membership_consistent_with_weight_query(self, entries):
        wbf = WeightedBloomFilter(2048, 4)
        for item, weight in entries:
            wbf.add(item, weight)
        for item, _ in entries:
            # A non-empty weighted answer implies plain membership.
            if wbf.query_weights(item):
                assert wbf.contains(item)

    @given(
        item=st.integers(),
        weights=st.lists(weights_strategy, min_size=1, max_size=5, unique=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_same_item_accumulates_all_weights(self, item, weights):
        wbf = WeightedBloomFilter(1024, 4)
        for weight in weights:
            wbf.add(item, weight)
        assert wbf.query_weights(item) == frozenset(weights)

    @given(entries=st.lists(st.tuples(st.integers(0, 500), weights_strategy), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_item_count_and_fill_ratio_bounds(self, entries):
        wbf = WeightedBloomFilter(1024, 3)
        for item, weight in entries:
            wbf.add(item, weight)
        assert wbf.item_count == len(entries)
        assert 0.0 <= wbf.fill_ratio() <= 1.0
        assert wbf.size_bytes() >= 1024 // 8
