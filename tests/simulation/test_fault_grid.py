"""The fault-profile grid: every surviving run is exactly correct.

Sweeps the named fault profiles over a grid of network seeds and asserts the
harness's core safety property: a round either fails loudly with the typed
:class:`~repro.distributed.events.RoundTimeoutError` or returns *exactly* the
fault-free reference results — faults may change costs (retransmits, goodput,
latency) but can never silently change an answer.  Blackout timeouts and
partial rounds are exercised with an explicit long-blackout plan.
"""

import pytest

from repro.core.config import FAULT_PROFILE_CHOICES
from repro.distributed.events import RoundTimeoutError
from repro.distributed.faults import FAULT_PROFILES, FaultPlan

from .conftest import run_round

NET_SEEDS = (1, 2, 3)
GRID = [
    (profile, net_seed)
    for profile in FAULT_PROFILE_CHOICES
    for net_seed in NET_SEEDS
]


@pytest.mark.parametrize(
    "profile,net_seed", GRID, ids=[f"{p}-net{n}" for p, n in GRID]
)
def test_surviving_runs_are_exactly_correct(profile, net_seed, reference_outcome):
    try:
        outcome = run_round(31, net_seed, profile)
    except RoundTimeoutError:
        # A loud, typed failure is an acceptable outcome; a wrong answer is not.
        return
    assert outcome.results == reference_outcome.results
    assert outcome.costs.report_count == reference_outcome.costs.report_count
    # Reliability never inflates goodput above 1 and strict rounds lose nobody.
    assert 0.0 < outcome.costs.goodput_fraction <= 1.0
    assert outcome.costs.lost_station_count == 0
    assert outcome.costs.fault_profile == profile
    assert outcome.costs.net_seed == net_seed


def test_grid_actually_exercises_faults():
    """At least one profile in the grid pays a visible reliability cost."""
    exercised = set()
    for profile in ("lossy", "duplicating", "corrupting", "chaos"):
        for net_seed in NET_SEEDS:
            try:
                outcome = run_round(31, net_seed, profile)
            except RoundTimeoutError:
                exercised.add(profile)
                continue
            costs = outcome.costs
            if (
                costs.retransmit_count
                or costs.dropped_frame_count
                or costs.duplicate_frame_count
                or costs.corrupt_frame_count
            ):
                exercised.add(profile)
    assert {"lossy", "duplicating", "corrupting", "chaos"} <= exercised


_LONG_BLACKOUT = FaultPlan(
    name="custom",
    blackout_probability=0.6,
    blackout_start_s=0.0,
    blackout_end_s=60.0,
)


def test_unreachable_station_times_out_with_typed_error():
    with pytest.raises(RoundTimeoutError) as excinfo:
        run_round(31, 2, _LONG_BLACKOUT)
    assert excinfo.value.failed_transfers


def test_partial_round_survives_blackout_without_fabricating_matches(reference_outcome):
    outcome = run_round(31, 2, _LONG_BLACKOUT, allow_partial=True)
    assert outcome.costs.lost_station_count > 0
    reference_complete = {
        entry.user_id for entry in reference_outcome.results if entry.score == 1.0
    }
    partial_complete = {entry.user_id for entry in outcome.results if entry.score == 1.0}
    # Losing stations can only lose matches, never invent them.
    assert partial_complete <= reference_complete


def test_profile_names_match_plan_registry():
    assert set(FAULT_PROFILES) == set(FAULT_PROFILE_CHOICES)
    for name, plan in FAULT_PROFILES.items():
        assert plan.name == name
    assert FAULT_PROFILES["none"].is_fault_free
