"""Fault-free parity: the all-zero plan reproduces the legacy model exactly.

The event-driven transport replaced a closed-form accountant (downlink = max
over per-station transfers, uplink = sum at the shared ingress, bytes = real
wire encodings).  Under the fault-free plan the two must agree *byte-for-byte
and bit-for-bit*: identical communication bytes, identical simulated
transmission times (float-exact, not approximate), identical match results as
a direct in-process protocol execution.  This pins the acceptance criterion
that today's Figure-4 numbers survive the transport swap unchanged.
"""

import pytest

from repro.baselines.bf_matching import BloomFilterProtocol
from repro.baselines.naive import NaiveProtocol
from repro.core.dimatching import DIMatchingProtocol
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import NetworkConfig
from repro.distributed.simulator import DistributedSimulation

from .conftest import environment_for


def _protocol(method, config):
    if method == "naive":
        return NaiveProtocol(epsilon=config.epsilon)
    if method == "bf":
        return BloomFilterProtocol(config)
    return DIMatchingProtocol(config)


def _legacy_model(method, env):
    """The pre-transport closed-form accounting, recomputed from scratch."""
    network_config = NetworkConfig()
    protocol = _protocol(method, env.config)
    artifact = protocol.encode(list(env.queries))
    stations = [
        (station_id, env.dataset.local_patterns_at(station_id))
        for station_id in env.dataset.station_ids
        if len(env.dataset.local_patterns_at(station_id))
    ]
    kind = MessageKind.FILTER_DISSEMINATION if artifact is not None else MessageKind.CONTROL
    downlink_sizes = [
        Message("data-center", station_id, kind, artifact).size_bytes()
        for station_id, _patterns in stations
    ]
    uplink_sizes = []
    all_reports = []
    for station_id, patterns in stations:
        reports = protocol.station_match(station_id, patterns, artifact)
        message = Message(station_id, "data-center", MessageKind.MATCH_REPORT, reports)
        uplink_sizes.append(message.size_bytes())
        all_reports.extend(reports)
    results = protocol.aggregate(all_reports, None)
    transmission = max(
        network_config.transfer_time_s(size) for size in downlink_sizes
    ) + sum(network_config.transfer_time_s(size) for size in uplink_sizes)
    return {
        "downlink_bytes": sum(downlink_sizes),
        "uplink_bytes": sum(uplink_sizes),
        "message_count": len(downlink_sizes) + len(uplink_sizes),
        "transmission_time_s": transmission,
        "report_count": len(all_reports),
        "results": results,
    }


@pytest.mark.parametrize("method", ["naive", "bf", "wbf"])
def test_zero_fault_plan_reproduces_legacy_numbers_exactly(method):
    env = environment_for(31)
    legacy = _legacy_model(method, env)
    outcome = DistributedSimulation(env.dataset, fault_plan="none", net_seed=0).run(
        _protocol(method, env.config), list(env.queries), k=None
    )
    assert outcome.costs.downlink_bytes == legacy["downlink_bytes"]
    assert outcome.costs.uplink_bytes == legacy["uplink_bytes"]
    assert outcome.costs.message_count == legacy["message_count"]
    # Bit-identical virtual time, not approximately equal: the event loop's
    # float arithmetic must match the closed form operation for operation.
    assert outcome.costs.transmission_time_s == legacy["transmission_time_s"]
    assert outcome.costs.report_count == legacy["report_count"]
    assert outcome.results == legacy["results"]


def test_fault_free_round_has_clean_reliability_ledger(reference_outcome):
    costs = reference_outcome.costs
    assert costs.retransmit_count == 0
    assert costs.dropped_frame_count == 0
    assert costs.duplicate_frame_count == 0
    assert costs.corrupt_frame_count == 0
    assert costs.lost_station_count == 0
    assert costs.goodput_fraction == 1.0


def test_fault_free_transcript_is_one_send_one_deliver_per_message(reference_outcome):
    events = [entry.event for entry in reference_outcome.transcript]
    assert events.count("send") == reference_outcome.costs.message_count
    assert events.count("deliver") == reference_outcome.costs.message_count
    assert set(events) <= {"phase", "send", "deliver"}
