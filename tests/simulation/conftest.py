"""Shared driver for the seed-replay simulation-test harness.

Every simulation test is parameterized by the deterministic triple
``(dataset seed, net seed, fault profile)``: the dataset seed fixes the city
and the workload, the net seed and profile fix every transport fault.  A
failing grid case is reproduced by re-running :func:`run_round` with the
triple printed in the test id — nothing else feeds the run.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload
from repro.distributed.faults import FaultPlan
from repro.distributed.simulator import DistributedSimulation, SimulationOutcome

#: Workload size shared by every harness round — small enough that the fault
#: grid stays fast, large enough that every station stores patterns and every
#: round crosses the wire in both directions.
USERS_PER_CATEGORY = 6
STATION_COUNT = 4
QUERY_COUNT = 4


@dataclass(frozen=True)
class RoundEnvironment:
    """One dataset seed's reusable dataset + workload + reference results."""

    dataset: object
    queries: tuple
    config: DIMatchingConfig


_ENVIRONMENTS: dict[int, RoundEnvironment] = {}


def environment_for(dataset_seed: int) -> RoundEnvironment:
    """Build (once) the dataset/workload/config for one dataset seed."""
    cached = _ENVIRONMENTS.get(dataset_seed)
    if cached is not None:
        return cached
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=USERS_PER_CATEGORY,
            station_count=STATION_COUNT,
            noise_level=0,
            seed=dataset_seed,
        )
    )
    workload = build_query_workload(dataset, QUERY_COUNT, epsilon=0, seed=dataset_seed)
    config = DIMatchingConfig(epsilon=0, sample_count=12, hash_count=4)
    env = RoundEnvironment(dataset=dataset, queries=tuple(workload.queries), config=config)
    _ENVIRONMENTS[dataset_seed] = env
    return env


def run_round(
    dataset_seed: int,
    net_seed: int,
    profile: "str | FaultPlan",
    executor: str = "serial",
    allow_partial: bool = False,
) -> SimulationOutcome:
    """Run one full DI-matching round under the given deterministic triple."""
    env = environment_for(dataset_seed)
    with DistributedSimulation(
        env.dataset,
        executor=executor,
        fault_plan=profile,
        net_seed=net_seed,
        allow_partial=allow_partial,
    ) as simulation:
        return simulation.run(DIMatchingProtocol(env.config), list(env.queries), k=None)


@pytest.fixture(scope="session")
def reference_outcome() -> SimulationOutcome:
    """The fault-free reference round for the harness's default dataset seed."""
    return run_round(dataset_seed=31, net_seed=0, profile="none")
