"""Seed-replay determinism: the acceptance criterion of the simulation harness.

Identical ``(dataset seed, net seed, profile)`` triples must produce
byte-identical event transcripts and identical match results — across repeated
runs and across station executors — and different seeds must actually explore
different schedules.  This is what makes any simulated failure reproducible
from three integers.
"""

import pytest

from repro.distributed.events import transcript_to_bytes

from .conftest import run_round

REPLAY_TRIPLES = [
    (31, 0, "none"),
    (31, 7, "lossy"),
    (31, 7, "corrupting"),
    (31, 3, "reordering"),
    (31, 11, "chaos"),
    (77, 5, "duplicating"),
]


@pytest.mark.parametrize(
    "dataset_seed,net_seed,profile",
    REPLAY_TRIPLES,
    ids=[f"ds{d}-net{n}-{p}" for d, n, p in REPLAY_TRIPLES],
)
class TestSeedReplay:
    def test_two_runs_produce_byte_identical_transcripts_and_results(
        self, dataset_seed, net_seed, profile
    ):
        first = run_round(dataset_seed, net_seed, profile)
        second = run_round(dataset_seed, net_seed, profile)
        assert first.transcript_bytes() == second.transcript_bytes()
        assert first.results == second.results
        assert first.costs.communication_bytes == second.costs.communication_bytes
        assert first.costs.transmission_time_s == second.costs.transmission_time_s
        assert first.costs.retransmit_count == second.costs.retransmit_count

    def test_serial_and_thread_executors_share_one_transcript(
        self, dataset_seed, net_seed, profile
    ):
        serial = run_round(dataset_seed, net_seed, profile, executor="serial")
        threaded = run_round(dataset_seed, net_seed, profile, executor="thread")
        assert serial.transcript_bytes() == threaded.transcript_bytes()
        assert serial.results == threaded.results
        assert serial.costs.communication_bytes == threaded.costs.communication_bytes
        # The virtual-clock quantities are bit-identical too: only measured
        # wall-clock may differ between executors.
        assert serial.costs.transmission_time_s == threaded.costs.transmission_time_s


def test_different_net_seeds_explore_different_schedules():
    transcripts = {
        run_round(31, net_seed, "chaos").transcript_bytes() for net_seed in range(6)
    }
    # Six seeds, at least two distinct fault schedules (in practice all six).
    assert len(transcripts) > 1


def test_transcript_bytes_round_trip_from_entries(reference_outcome):
    assert (
        transcript_to_bytes(reference_outcome.transcript)
        == reference_outcome.transcript_bytes()
    )
    # Sequence numbers are dense and ordered: the transcript is a total order.
    sequences = [entry.sequence for entry in reference_outcome.transcript]
    assert sequences == list(range(len(sequences)))
