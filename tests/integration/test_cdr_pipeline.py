"""Integration test of the raw-CDR path: records → attributes → patterns → matching."""

from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.datagen.categories import get_category
from repro.datagen.cdr import aggregate_records_to_attributes
from repro.datagen.generator import CallGenerationSpec, SyntheticCdrGenerator
from repro.datagen.mobility import UserMobility
from repro.timeseries.attributes import communication_pattern_value
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern


def _patterns_from_cdrs(user_id, records, interval_seconds, interval_count, stations):
    """Aggregate raw CDRs into per-station local patterns (Definition 1 end to end)."""
    fragments = []
    for station in stations:
        station_records = [r for r in records if r.station_id == station]
        attributes = aggregate_records_to_attributes(
            station_records, user_id, interval_seconds, interval_count
        )
        values = [communication_pattern_value(a) for a in attributes]
        if any(values):
            fragments.append(LocalPattern(user_id, values, station))
    return fragments


class TestCdrPipeline:
    def test_raw_records_flow_through_full_matching_pipeline(self):
        category = get_category("office_worker")
        interval_seconds = 3600
        interval_count = 24
        mobility = UserMobility("target", "bs-home", "bs-work", "bs-other")
        station_for_interval = [
            mobility.station_for(category.place_at(hour)) for hour in range(interval_count)
        ]
        generator = SyntheticCdrGenerator(CallGenerationSpec(interval_seconds=interval_seconds))

        from repro.utils.rng import make_rng

        records = generator.generate_for_user(
            "target", category, station_for_interval, interval_count, make_rng(17)
        )
        assert records, "the generator must produce call records for an active category"

        stations = sorted({r.station_id for r in records})
        fragments = _patterns_from_cdrs(
            "target", records, interval_seconds, interval_count, stations
        )
        assert fragments, "aggregation must produce at least one non-empty local pattern"

        # The service provider supplies this user's fragments as the query; the same
        # fragments stored at their stations must then be retrieved as a complete match.
        query = QueryPattern("campaign", fragments)
        protocol = DIMatchingProtocol(DIMatchingConfig(epsilon=0, sample_count=12))
        artifact = protocol.encode([query])
        reports = []
        for fragment in fragments:
            station_patterns = PatternSet(
                [LocalPattern("candidate", fragment.values, fragment.station_id)]
            )
            reports.extend(
                protocol.station_match(fragment.station_id, station_patterns, artifact)
            )
        results = protocol.aggregate(reports, k=None)
        assert results.user_ids()[0] == "candidate"
        assert results.users[0].score == 1.0

    def test_global_pattern_reconstruction_matches_direct_aggregation(self):
        category = get_category("field_sales")
        interval_seconds = 3600
        interval_count = 24
        mobility = UserMobility("u", "bs-1", "bs-2", "bs-3")
        station_for_interval = [
            mobility.station_for(category.place_at(hour)) for hour in range(interval_count)
        ]
        generator = SyntheticCdrGenerator(CallGenerationSpec(interval_seconds=interval_seconds))

        from repro.utils.rng import make_rng

        records = generator.generate_for_user(
            "u", category, station_for_interval, interval_count, make_rng(23)
        )
        stations = sorted({r.station_id for r in records})
        fragments = _patterns_from_cdrs("u", records, interval_seconds, interval_count, stations)

        # Summing the per-station fragments must equal aggregating all records at once.
        whole = aggregate_records_to_attributes(records, "u", interval_seconds, interval_count)
        whole_values = [communication_pattern_value(a) for a in whole]
        summed = [0] * interval_count
        for fragment in fragments:
            for index, value in enumerate(fragment.values):
                summed[index] += value
        assert summed == whole_values
