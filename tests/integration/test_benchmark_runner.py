"""Smoke test of the shared machine-readable benchmark runner.

Runs one tiny Figure-4-style sweep end-to-end through
:mod:`repro.evaluation.benchjson` and checks the emitted ``BENCH_*.json``
structure — so a schema regression is caught by tier-1 instead of by a human
reading an empty bench trajectory.
"""

import json

import pytest

from repro.core.config import DIMatchingConfig
from repro.evaluation.benchjson import (
    SCHEMA_VERSION,
    SWEEP_QUANTITIES,
    comparison_sweep_payload,
    read_bench_json,
    write_bench_json,
)
from repro.evaluation.experiments import sweep_query_counts

METHODS = ("naive", "wbf")


@pytest.fixture(scope="module")
def tiny_sweep(small_dataset):
    config = DIMatchingConfig(epsilon=0, sample_count=12, hash_count=4)
    return sweep_query_counts(
        small_dataset, [2, 4], epsilon=0, config=config, methods=METHODS, seed=7
    )


def test_sweep_payload_structure(tiny_sweep):
    payload = comparison_sweep_payload(tiny_sweep, methods=METHODS)
    assert payload["methods"] == list(METHODS)
    assert len(payload["pattern_counts"]) == 2
    assert payload["query_counts"] == [2, 4]
    for quantity in SWEEP_QUANTITIES:
        series = payload["series"][quantity]
        assert set(series) == set(METHODS)
        assert all(len(values) == 2 for values in series.values())
    for method in METHODS:
        assert len(payload["communication_bytes"][method]) == 2
        reliability = payload["reliability"][method]
        assert reliability["fault_profile"] == "none"
        assert reliability["retransmits"] == [0, 0]
        assert reliability["goodput"] == [1.0, 1.0]


def test_write_and_read_round_trip(tiny_sweep, tmp_path):
    payload = comparison_sweep_payload(tiny_sweep, methods=METHODS)
    path = write_bench_json(tmp_path, "fig4_smoke", payload)
    assert path.name == "BENCH_fig4_smoke.json"
    document = read_bench_json(path)
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["benchmark"] == "fig4_smoke"
    assert document["payload"] == json.loads(json.dumps(payload))


def test_rewrite_with_identical_numbers_is_byte_stable(tiny_sweep, tmp_path):
    payload = comparison_sweep_payload(tiny_sweep, methods=METHODS)
    first = write_bench_json(tmp_path, "stable", payload).read_bytes()
    second = write_bench_json(tmp_path, "stable", payload).read_bytes()
    assert first == second


def test_write_rejects_path_like_names(tmp_path):
    with pytest.raises(ValueError):
        write_bench_json(tmp_path, "../escape", {})


def test_read_rejects_unknown_schema(tmp_path):
    bogus = tmp_path / "BENCH_x.json"
    bogus.write_text(json.dumps({"schema_version": 999, "payload": {}}))
    with pytest.raises(ValueError):
        read_bench_json(bogus)
