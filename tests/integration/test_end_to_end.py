"""End-to-end integration tests: full DI-matching over the simulated environment."""

import pytest

from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol, run_dimatching
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload
from repro.distributed.simulator import DistributedSimulation
from repro.evaluation.experiments import ground_truth_users, run_comparison


class TestExactMatchingEndToEnd:
    def test_wbf_recovers_ground_truth_exactly(self, small_dataset, small_workload, exact_config):
        queries = list(small_workload.queries)
        truth = ground_truth_users(small_dataset, queries, small_workload.epsilon)
        results = run_dimatching(small_dataset, queries, exact_config, k=None)
        complete_matches = {entry.user_id for entry in results if entry.score == 1.0}
        assert complete_matches == set(truth)

    def test_decoys_never_retrieved_with_full_score(self, small_dataset, small_workload, exact_config):
        queries = list(small_workload.queries)
        results = run_dimatching(small_dataset, queries, exact_config, k=None)
        decoys = {u for u in small_dataset.user_ids if small_dataset.profile(u).is_decoy}
        complete_matches = {entry.user_id for entry in results if entry.score == 1.0}
        assert complete_matches.isdisjoint(decoys)

    def test_simulation_and_in_process_run_agree(self, small_dataset, small_workload, exact_config):
        queries = list(small_workload.queries)
        in_process = run_dimatching(small_dataset, queries, exact_config, k=None)
        simulated = DistributedSimulation(small_dataset).run(
            DIMatchingProtocol(exact_config), queries, k=None
        )
        assert in_process.user_ids() == simulated.results.user_ids()


class TestApproximateMatchingEndToEnd:
    def test_epsilon_matching_recovers_most_of_ground_truth(
        self, noisy_dataset, noisy_workload, approx_config
    ):
        queries = list(noisy_workload.queries)
        truth = ground_truth_users(noisy_dataset, queries, noisy_workload.epsilon)
        results = run_dimatching(noisy_dataset, queries, approx_config, k=None)
        complete_matches = {entry.user_id for entry in results if entry.score == 1.0}
        assert truth
        recall = len(complete_matches & truth) / len(truth)
        precision = (
            len(complete_matches & truth) / len(complete_matches) if complete_matches else 1.0
        )
        assert recall >= 0.85
        assert precision >= 0.85

    def test_accumulated_tolerance_mode_runs(self, noisy_dataset, noisy_workload):
        config = DIMatchingConfig(
            epsilon=2, sample_count=6, epsilon_tolerance_mode="accumulated"
        )
        results = run_dimatching(noisy_dataset, list(noisy_workload.queries)[:2], config, k=5)
        assert len(results) <= 5


class TestMethodComparisonEndToEnd:
    def test_figure4a_shape_holds(self, small_dataset, small_workload, exact_config):
        """Naive and WBF precision are (near-)perfect; plain BF is clearly worse."""
        result = run_comparison(small_dataset, small_workload, exact_config)
        naive = result.outcome("naive").metrics.precision
        wbf = result.outcome("wbf").metrics.precision
        bf = result.outcome("bf").metrics.precision
        assert naive == 1.0
        assert wbf >= 0.95
        assert bf < wbf

    def test_figure4c_shape_holds(self, exact_config):
        """Filter-based methods move far fewer bytes than shipping the raw data.

        The advantage is a scale phenomenon (the filter is a fixed-size summary while
        the raw upload grows with users × intervals), so this check uses a dataset
        large enough for the raw data to dominate, as in the paper's city-scale
        setting.  Since the wire codec landed these are *real* encoded byte counts
        — varint packing shrinks the naive upload too, so the crossover sits at a
        larger user count than under the old estimate model.
        """
        dataset = build_dataset(
            DatasetSpec(
                users_per_category=180,
                station_count=6,
                days=2,
                noise_level=0,
                cliques_per_place=3,
                seed=42,
            )
        )
        workload = build_query_workload(dataset, 6, epsilon=0, seed=7)
        result = run_comparison(dataset, workload, exact_config)
        assert result.relative_costs("wbf")["communication"] < 0.5
        assert result.relative_costs("bf")["communication"] < 0.5

    def test_local_only_baseline_is_lossy(self, small_dataset, small_workload, exact_config):
        result = run_comparison(
            small_dataset, small_workload, exact_config, methods=("naive", "local")
        )
        assert (
            result.outcome("local").metrics.recall
            < result.outcome("naive").metrics.recall
        )


class TestExecutorParity:
    """serial / thread / process executors are interchangeable for results.

    Shard layout and executor choice may only change wall-clock: ranked
    results, report counts and every real byte count must be identical on the
    same seeded dataset.
    """

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pool_executors_match_serial_exactly(
        self, small_dataset, small_workload, exact_config, executor
    ):
        outcomes = {}
        for name in ("serial", executor):
            result = run_comparison(
                small_dataset,
                small_workload,
                exact_config,
                methods=("naive", "bf", "wbf"),
                executor=name,
            )
            outcomes[name] = result
        for method in ("naive", "bf", "wbf"):
            serial = outcomes["serial"].outcome(method)
            pooled = outcomes[executor].outcome(method)
            assert pooled.retrieved == serial.retrieved
            assert pooled.costs.downlink_bytes == serial.costs.downlink_bytes
            assert pooled.costs.uplink_bytes == serial.costs.uplink_bytes
            assert pooled.costs.message_count == serial.costs.message_count
            assert pooled.costs.report_count == serial.costs.report_count
            assert pooled.costs.executor == executor

    def test_shard_count_does_not_change_results(self, small_dataset, small_workload, exact_config):
        reference = None
        for shard_count in (1, 2, 7):
            result = run_comparison(
                small_dataset,
                small_workload,
                exact_config,
                methods=("wbf",),
                executor="serial",
                shard_count=shard_count,
            )
            outcome = result.outcome("wbf")
            snapshot = (outcome.retrieved, outcome.costs.communication_bytes)
            if reference is None:
                reference = snapshot
            else:
                assert snapshot == reference

    def test_executor_from_protocol_config(self, small_dataset, small_workload):
        config = DIMatchingConfig(epsilon=0, executor="thread", shard_count=2)
        simulated = DistributedSimulation(small_dataset).run(
            DIMatchingProtocol(config), list(small_workload.queries), k=None
        )
        assert simulated.costs.executor == "thread"
        assert simulated.costs.shard_count == 2


class TestScalesAndSeeds:
    @pytest.mark.parametrize("station_count", [1, 2, 6])
    def test_works_with_varying_station_counts(self, station_count, exact_config):
        dataset = build_dataset(
            DatasetSpec(
                users_per_category=4,
                station_count=station_count,
                replicated_decoys_per_category=0,
                noise_level=0,
                seed=5,
            )
        )
        workload = build_query_workload(dataset, 3, epsilon=0)
        results = run_dimatching(dataset, list(workload.queries), exact_config, k=None)
        retrieved = set(results.user_ids())
        for query in workload.queries:
            assert query.local_patterns[0].user_id in retrieved

    def test_multi_day_patterns(self, exact_config):
        dataset = build_dataset(
            DatasetSpec(users_per_category=3, station_count=3, days=2, noise_level=0, seed=9)
        )
        assert dataset.pattern_length == 48
        workload = build_query_workload(dataset, 3, epsilon=0)
        truth = ground_truth_users(dataset, list(workload.queries), 0)
        results = run_dimatching(dataset, list(workload.queries), exact_config, k=None)
        complete = {entry.user_id for entry in results if entry.score == 1.0}
        assert complete == set(truth)
