"""Failure-injection integration tests.

The data center relies on reports from many base stations; these tests check that
the aggregation degrades gracefully when reports are lost, duplicated or arrive from
stations holding no data, and that configuration mismatches are detected rather than
silently producing wrong answers.
"""

from fractions import Fraction

import pytest

from repro.core.aggregator import SimilarityRanker
from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.core.exceptions import MatchingError
from repro.core.matcher import BaseStationMatcher
from repro.core.protocol import MatchReport
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload
from repro.evaluation.experiments import ground_truth_users
from repro.timeseries.pattern import PatternSet


@pytest.fixture(scope="module")
def environment():
    dataset = build_dataset(
        DatasetSpec(users_per_category=6, station_count=4, noise_level=0, seed=31)
    )
    workload = build_query_workload(dataset, 6, epsilon=0, seed=3)
    config = DIMatchingConfig(epsilon=0, sample_count=12)
    protocol = DIMatchingProtocol(config)
    artifact = protocol.encode(list(workload.queries))
    reports_by_station = {}
    for station_id in dataset.station_ids:
        patterns = dataset.local_patterns_at(station_id)
        if len(patterns):
            reports_by_station[station_id] = protocol.station_match(
                station_id, patterns, artifact
            )
    return dataset, workload, protocol, artifact, reports_by_station


class TestLostReports:
    def test_dropping_one_station_only_loses_users_served_there(self, environment):
        dataset, workload, protocol, _, reports_by_station = environment
        truth = ground_truth_users(dataset, list(workload.queries), 0)
        stations = list(reports_by_station)
        dropped = stations[0]
        surviving_reports = [
            report
            for station, reports in reports_by_station.items()
            if station != dropped
            for report in reports
        ]
        results = protocol.aggregate(surviving_reports, k=None)
        complete = {entry.user_id for entry in results if entry.score == 1.0}
        # Every complete match must still be a true match (dropping data can only
        # lose matches, never fabricate them) ...
        assert complete <= set(truth)
        # ... and users with no data at the dropped station are unaffected.
        unaffected = {
            user
            for user in truth
            if all(f.station_id != dropped for f in dataset.local_patterns_for(user))
        }
        assert unaffected <= complete

    def test_losing_all_reports_yields_empty_result(self, environment):
        _, _, protocol, _, _ = environment
        assert len(protocol.aggregate([], k=None)) == 0


class TestDuplicatedReports:
    def test_duplicated_station_report_breaks_its_own_weight_sum_only(self, environment):
        dataset, workload, protocol, _, reports_by_station = environment
        all_reports = [r for reports in reports_by_station.values() for r in reports]
        results_clean = protocol.aggregate(all_reports, k=None)
        clean_complete = {e.user_id for e in results_clean if e.score == 1.0}

        # A retransmission that duplicates one station's reports must not create new
        # complete matches (idempotent per station: same station id, same options).
        duplicated = all_reports + list(reports_by_station[next(iter(reports_by_station))])
        results_dup = protocol.aggregate(duplicated, k=None)
        dup_complete = {e.user_id for e in results_dup if e.score == 1.0}
        assert dup_complete == clean_complete


class TestEmptyAndForeignInputs:
    def test_station_with_no_patterns_reports_nothing(self, environment):
        _, _, protocol, artifact, _ = environment
        assert protocol.station_match("empty-station", PatternSet(), artifact) == []

    def test_stale_filter_with_different_sample_count_is_rejected(self, environment):
        dataset, _, _, artifact, _ = environment
        stale_config = DIMatchingConfig(epsilon=0, sample_count=5)
        station_id = dataset.station_ids[0]
        matcher = BaseStationMatcher(
            stale_config, station_id, dataset.local_patterns_at(station_id)
        )
        with pytest.raises(MatchingError):
            matcher.match_against(artifact)

    def test_weightless_report_in_weighted_aggregation_is_rejected(self, environment):
        _, _, protocol, _, _ = environment
        with pytest.raises(MatchingError):
            protocol.aggregate([MatchReport("u", "s", weight=None)], k=None)

    def test_corrupted_weight_exceeding_one_deletes_only_that_user_query(self):
        ranker = SimilarityRanker()
        reports = [
            MatchReport("honest", "a", weight=Fraction(1), query_id="q"),
            MatchReport("corrupted", "a", weight=Fraction(3, 2), query_id="q"),
        ]
        scores = ranker.user_scores(reports)
        assert "honest" in scores
        assert "corrupted" not in scores
