"""Failure-injection integration tests, driven through the real transport.

The data center relies on reports from many base stations.  These tests inject
loss, duplication, corruption and station blackouts through the deterministic
event-driven network (seeded fault plans — no hand-mutation of report dicts)
and check that the rounds degrade gracefully: reliability recovers what it
can, losing a station only loses the users served there, duplicates are
suppressed at the frame layer, corruption is always detected, and
configuration mismatches are rejected rather than silently producing wrong
answers.
"""

from fractions import Fraction

import pytest

from repro.core.aggregator import SimilarityRanker
from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.core.exceptions import MatchingError
from repro.core.matcher import BaseStationMatcher
from repro.core.protocol import MatchReport
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload
from repro.distributed.faults import FaultPlan
from repro.distributed.simulator import DistributedSimulation
from repro.evaluation.experiments import ground_truth_users
from repro.timeseries.pattern import PatternSet

#: A blackout far past the retransmission horizon: affected stations are
#: unreachable for the whole round and (in partial rounds) drop out entirely.
_PERMANENT_BLACKOUT = FaultPlan(
    name="custom", blackout_probability=0.5, blackout_start_s=0.0, blackout_end_s=60.0
)
_TOTAL_BLACKOUT = _PERMANENT_BLACKOUT.with_updates(blackout_probability=1.0)


@pytest.fixture(scope="module")
def environment():
    dataset = build_dataset(
        DatasetSpec(users_per_category=6, station_count=4, noise_level=0, seed=31)
    )
    workload = build_query_workload(dataset, 6, epsilon=0, seed=3)
    config = DIMatchingConfig(epsilon=0, sample_count=12)
    return dataset, workload, config


def _run(environment, fault_plan, net_seed, allow_partial=False):
    dataset, workload, config = environment
    simulation = DistributedSimulation(
        dataset, fault_plan=fault_plan, net_seed=net_seed, allow_partial=allow_partial
    )
    return simulation.run(DIMatchingProtocol(config), list(workload.queries), k=None)


@pytest.fixture(scope="module")
def reference(environment):
    """The fault-free round every injected run is compared against."""
    return _run(environment, "none", 0)


def _lost_stations(outcome) -> set[str]:
    """Stations whose transfers timed out, read off the event transcript."""
    lost = set()
    for entry in outcome.transcript:
        if entry.event != "timeout":
            continue
        lost.add(entry.sender if entry.recipient == "data-center" else entry.recipient)
    return lost


class TestLostReports:
    def test_blacked_out_station_only_loses_users_served_there(
        self, environment, reference
    ):
        dataset, workload, _ = environment
        truth = ground_truth_users(dataset, list(workload.queries), 0)
        # net seed 2 blacks out exactly the first station at this scale (the
        # triple is deterministic, so this choice is stable) — the same
        # station the pre-transport version of this test dropped by hand.
        # Losing *other* stations can legitimately collapse an over-matching
        # decoy's weight sum to exactly 1, so the subset property below is a
        # per-station statement, not a universal WBF invariant.
        outcome = _run(environment, _PERMANENT_BLACKOUT, net_seed=2, allow_partial=True)
        lost = _lost_stations(outcome)
        assert len(lost) == 1
        assert outcome.costs.lost_station_count == 1
        complete = {entry.user_id for entry in outcome.results if entry.score == 1.0}
        # Every complete match must still be a true match (losing data can only
        # lose matches, never fabricate them) ...
        assert complete <= set(truth)
        # ... and users with no data at the lost station are unaffected.
        unaffected = {
            user
            for user in truth
            if all(
                fragment.station_id not in lost
                for fragment in dataset.local_patterns_for(user)
            )
        }
        assert unaffected <= complete

    def test_losing_every_station_yields_empty_result(self, environment):
        outcome = _run(environment, _TOTAL_BLACKOUT, net_seed=1, allow_partial=True)
        assert len(outcome.results) == 0
        assert outcome.costs.report_count == 0
        assert outcome.costs.lost_station_count == len(
            DistributedSimulation(environment[0]).stations
        )

    def test_recoverable_loss_retransmits_and_loses_nothing(self, environment, reference):
        # net seed 2 drops frames under the lossy profile at this scale.
        outcome = _run(environment, "lossy", net_seed=2)
        assert outcome.costs.dropped_frame_count > 0
        assert outcome.costs.retransmit_count > 0
        assert outcome.costs.goodput_fraction < 1.0
        assert outcome.results == reference.results


class TestDuplicatedReports:
    def test_duplicate_frames_are_suppressed_and_change_nothing(
        self, environment, reference
    ):
        # net seed 1 duplicates several frames under the duplicating profile.
        outcome = _run(environment, "duplicating", net_seed=1)
        assert outcome.costs.duplicate_frame_count > 0
        # At-least-once on the wire, exactly-once to the application: the
        # ranking and every weight sum are untouched by the duplicates.
        assert outcome.results == reference.results
        assert outcome.costs.report_count == reference.costs.report_count

    def test_duplicated_station_report_breaks_its_own_weight_sum_only(self, environment):
        # The aggregation-layer idempotence backstop: even if duplicate
        # reports *did* slip past the transport, re-aggregating one station's
        # reports twice must not create new complete matches (same station
        # id, same weight options per station).
        dataset, workload, config = environment
        protocol = DIMatchingProtocol(config)
        artifact = protocol.encode(list(workload.queries))
        reports_by_station = {
            station_id: protocol.station_match(
                station_id, dataset.local_patterns_at(station_id), artifact
            )
            for station_id in dataset.station_ids
            if len(dataset.local_patterns_at(station_id))
        }
        all_reports = [r for reports in reports_by_station.values() for r in reports]
        clean_complete = {
            e.user_id for e in protocol.aggregate(all_reports, k=None) if e.score == 1.0
        }
        duplicated = all_reports + list(
            reports_by_station[next(iter(reports_by_station))]
        )
        dup_complete = {
            e.user_id for e in protocol.aggregate(duplicated, k=None) if e.score == 1.0
        }
        assert dup_complete == clean_complete


class TestCorruptedFrames:
    def test_corruption_is_always_detected_and_repaired(self, environment, reference):
        outcome = _run(environment, "corrupting", net_seed=1)
        assert outcome.costs.corrupt_frame_count > 0
        assert outcome.costs.retransmit_count >= outcome.costs.corrupt_frame_count
        # The retransmissions recover a byte-exact round: corruption may cost
        # bandwidth and time but can never change an answer.
        assert outcome.results == reference.results


class TestEmptyAndForeignInputs:
    def test_station_with_no_patterns_reports_nothing(self, environment):
        _, workload, config = environment
        protocol = DIMatchingProtocol(config)
        artifact = protocol.encode(list(workload.queries))
        assert protocol.station_match("empty-station", PatternSet(), artifact) == []

    def test_stale_filter_with_different_sample_count_is_rejected(self, environment):
        dataset, workload, config = environment
        artifact = DIMatchingProtocol(config).encode(list(workload.queries))
        stale_config = DIMatchingConfig(epsilon=0, sample_count=5)
        station_id = dataset.station_ids[0]
        matcher = BaseStationMatcher(
            stale_config, station_id, dataset.local_patterns_at(station_id)
        )
        with pytest.raises(MatchingError):
            matcher.match_against(artifact)

    def test_weightless_report_in_weighted_aggregation_is_rejected(self, environment):
        _, _, config = environment
        protocol = DIMatchingProtocol(config)
        with pytest.raises(MatchingError):
            protocol.aggregate([MatchReport("u", "s", weight=None)], k=None)

    def test_corrupted_weight_exceeding_one_deletes_only_that_user_query(self):
        ranker = SimilarityRanker()
        reports = [
            MatchReport("honest", "a", weight=Fraction(1), query_id="q"),
            MatchReport("corrupted", "a", weight=Fraction(3, 2), query_id="q"),
        ]
        scores = ranker.user_scores(reports)
        assert "honest" in scores
        assert "corrupted" not in scores
