"""Integration tests that keep the example scripts runnable.

Each example is executed in a subprocess (as a user would run it) and its output is
checked for the headline facts it is supposed to demonstrate.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent.parent / "src"


def _run_example(name: str, timeout: int = 300) -> str:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example script {script}"
    env = {"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"}
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        check=False,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        output = _run_example("quickstart.py")
        assert "retrieved" in output
        assert "precision=1.000" in output

    def test_wbf_vs_bloom_filter(self):
        output = _run_example("wbf_vs_bloom_filter.py")
        # The plain BF falls for both failure cases; the WBF rejects both.
        assert "plain BF station reports : ['mixed-values']" in output
        assert "WBF station reports      : []" in output
        assert "plain BF final ranking : ['over-matcher']" in output
        assert "WBF final ranking      : []" in output

    def test_call_package_campaign(self):
        output = _run_example("call_package_campaign.py")
        assert "[wbf]" in output and "[naive]" in output
        assert "fewer bytes than shipping the raw data" in output

    def test_online_monitoring(self):
        output = _run_example("online_monitoring.py")
        assert "final top-5" in output
        # The correction re-ships exactly one station's delta.
        assert "re-shipped 1 station" in output

    @pytest.mark.slow
    def test_city_scale_simulation(self):
        output = _run_example("city_scale_simulation.py", timeout=600)
        assert "method" in output and "wbf" in output
        assert "naive" in output
