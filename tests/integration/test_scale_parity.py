"""Byte-identity of a 10,000-station round across bit backends and executors.

The hot-path work (payload-decode memoization, mask-index probing, columnar
aggregation, shared-memory artifact handoff) is only admissible because the
round outcome is *byte-identical* with every switch in every combination.
This suite pins that at the 100x-scale tier the benchmarks track: the same
directly-constructed 10k-station dataset, driven once per configuration, must
produce identical ranked results, identical real byte counts and identical
transcript bytes.
"""

import hashlib

import pytest

from repro.cluster import Cluster
from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.datagen.scale import build_scale_dataset, build_scale_queries
from repro.distributed.events import transcript_to_bytes

STATION_COUNT = 10_000
QUERY_COUNT = 6
SEED = 2012


def _digests(outcome) -> dict[str, object]:
    ranked = "\n".join(
        f"{entry.user_id}:{entry.score!r}" for entry in outcome.results.users
    )
    return {
        "ranked": hashlib.sha256(ranked.encode("utf-8")).hexdigest(),
        "transcript": hashlib.sha256(
            transcript_to_bytes(outcome.transcript)
        ).hexdigest(),
        "downlink": outcome.costs.downlink_bytes,
        "uplink": outcome.costs.uplink_bytes,
        "reports": outcome.costs.report_count,
    }


@pytest.fixture(scope="module")
def scale_inputs():
    dataset = build_scale_dataset(
        station_count=STATION_COUNT, users_per_station=1, seed=SEED
    )
    return dataset, build_scale_queries(dataset, QUERY_COUNT, seed=SEED)


@pytest.fixture(scope="module")
def reference(scale_inputs):
    """Serial executor with the numpy bit backend: the benchmarked baseline."""
    dataset, queries = scale_inputs
    pytest.importorskip("numpy")
    protocol = DIMatchingProtocol(
        DIMatchingConfig(epsilon=0, sample_count=6, hash_count=4, bit_backend="numpy")
    )
    with Cluster.adopt(dataset) as cluster:
        outcome = cluster.drive(protocol, queries, k=None)
    assert outcome.costs.report_count > 0
    return _digests(outcome)


@pytest.mark.slow
class TestScaleParity:
    def test_python_bit_backend_matches_numpy(self, scale_inputs, reference):
        dataset, queries = scale_inputs
        protocol = DIMatchingProtocol(
            DIMatchingConfig(
                epsilon=0, sample_count=6, hash_count=4, bit_backend="python"
            )
        )
        with Cluster.adopt(dataset) as cluster:
            outcome = cluster.drive(protocol, queries, k=None)
        assert _digests(outcome) == reference

    def test_process_executor_matches_serial(self, scale_inputs, reference):
        dataset, queries = scale_inputs
        pytest.importorskip("numpy")
        protocol = DIMatchingProtocol(
            DIMatchingConfig(
                epsilon=0, sample_count=6, hash_count=4, bit_backend="numpy"
            )
        )
        with Cluster.adopt(dataset, executor="process") as cluster:
            outcome = cluster.drive(protocol, queries, k=None)
        assert _digests(outcome) == reference
