"""Unit tests for the ASCII rendering helpers."""

import pytest

from repro.utils.asciiplot import render_cdf, render_line_chart, render_table


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        out = render_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in out and "b" in out
        assert "3" in out and "4" in out

    def test_column_alignment(self):
        out = render_table(["name", "v"], [["long-name-here", 1]])
        lines = out.splitlines()
        assert len(lines) == 3
        assert len(lines[0]) == len(lines[2])

    def test_float_formatting(self):
        out = render_table(["x"], [[0.123456789]])
        assert "0.1235" in out

    def test_mismatched_row_length_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            render_table([], [])


class TestRenderLineChart:
    def test_contains_title_and_legend(self):
        out = render_line_chart({"wbf": [1, 2, 3]}, title="demo")
        assert "demo" in out
        assert "wbf" in out

    def test_multiple_series(self):
        out = render_line_chart({"a": [0, 1], "b": [1, 0]})
        assert "*=a" in out and "o=b" in out

    def test_constant_series_does_not_crash(self):
        out = render_line_chart({"flat": [5, 5, 5]})
        assert "max" in out

    def test_single_point(self):
        out = render_line_chart({"one": [1.0]})
        assert "one" in out

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            render_line_chart({"a": [1, 2], "b": [1]})

    def test_x_values_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="x_values"):
            render_line_chart({"a": [1, 2]}, x_values=[1])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_line_chart({})


class TestRenderCdf:
    def test_monotone_axis(self):
        out = render_cdf([3, 1, 2], title="cdf")
        assert "cdf" in out
        assert "CDF" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_cdf([])
