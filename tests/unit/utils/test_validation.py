"""Unit tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    require_all_integers,
    require_in_range,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


class TestRequirePositive:
    def test_accepts_positive_int(self):
        assert require_positive(3, "x") == 3

    def test_accepts_positive_float(self):
        assert require_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError, match="x must be a number"):
            require_positive("3", "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0, "x") == 0

    def test_accepts_positive(self):
        assert require_non_negative(7.5, "x") == 7.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            require_non_negative(-0.1, "x")

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            require_non_negative(None, "x")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert require_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            require_probability(value, "p")

    def test_returns_float(self):
        assert isinstance(require_probability(1, "p"), float)


class TestRequireInRange:
    def test_accepts_bounds(self):
        assert require_in_range(1, "x", 1, 5) == 1
        assert require_in_range(5, "x", 1, 5) == 5

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"\[1, 5\]"):
            require_in_range(6, "x", 1, 5)

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            require_in_range("a", "x", 0, 1)


class TestRequireNonEmpty:
    def test_accepts_non_empty_list(self):
        assert require_non_empty([1], "items") == [1]

    def test_accepts_non_empty_dict(self):
        assert require_non_empty({"a": 1}, "items") == {"a": 1}

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="items must not be empty"):
            require_non_empty([], "items")


class TestRequireType:
    def test_accepts_matching_type(self):
        assert require_type(3, "x", int) == 3

    def test_accepts_tuple_of_types(self):
        assert require_type(3.5, "x", (int, float)) == 3.5

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            require_type("3", "x", int)


class TestRequireAllIntegers:
    def test_accepts_integer_list(self):
        assert require_all_integers([1, 2, 3], "values") == [1, 2, 3]

    def test_rejects_float(self):
        with pytest.raises(TypeError, match=r"values\[1\]"):
            require_all_integers([1, 2.5, 3], "values")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_all_integers([1, True], "values")

    def test_empty_list_allowed(self):
        assert require_all_integers([], "values") == []
