"""Unit tests for the byte-size cost model in repro.utils.serialization."""

from enum import Enum, IntEnum
from fractions import Fraction

import pytest

from repro.utils.serialization import (
    ESTIMATE_ACCURACY_FACTOR,
    FLOAT_BYTES,
    ID_BYTES,
    INT_BYTES,
    estimate_size_bytes,
    sizeof_float,
    sizeof_id,
    sizeof_int,
)


class TestSizeHelpers:
    def test_sizeof_int_default(self):
        assert sizeof_int() == INT_BYTES

    def test_sizeof_int_count(self):
        assert sizeof_int(10) == 10 * INT_BYTES

    def test_sizeof_float(self):
        assert sizeof_float(3) == 3 * FLOAT_BYTES

    def test_sizeof_id(self):
        assert sizeof_id(2) == 2 * ID_BYTES


class TestEstimateSizeBytes:
    def test_none_is_zero(self):
        assert estimate_size_bytes(None) == 0

    def test_bool(self):
        assert estimate_size_bytes(True) == 1

    def test_int(self):
        assert estimate_size_bytes(7) == INT_BYTES

    def test_float(self):
        assert estimate_size_bytes(1.5) == FLOAT_BYTES

    def test_string_utf8_length(self):
        assert estimate_size_bytes("abc") == 3

    def test_bytes(self):
        assert estimate_size_bytes(b"\x00" * 10) == 10

    def test_list_sums_elements(self):
        assert estimate_size_bytes([1, 2, 3]) == 3 * INT_BYTES

    def test_dict_sums_keys_and_values(self):
        assert estimate_size_bytes({"ab": 1}) == 2 + INT_BYTES

    def test_nested_structures(self):
        payload = {"xs": [1, 2], "y": 0.5}
        expected = 2 + 2 * INT_BYTES + 1 + FLOAT_BYTES
        assert estimate_size_bytes(payload) == expected

    def test_object_with_size_bytes_method(self):
        class Sized:
            def size_bytes(self):
                return 123

        assert estimate_size_bytes(Sized()) == 123

    def test_list_of_sized_objects(self):
        class Sized:
            def size_bytes(self):
                return 10

        assert estimate_size_bytes([Sized(), Sized()]) == 20

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            estimate_size_bytes(object())

    def test_str_enum_charged_as_its_string_value(self):
        class Kind(str, Enum):
            ALPHA = "alpha"
            LONGER_NAME = "a-much-longer-value"

        # Before the Enum branch, a str-enum fell through to the plain-str
        # path via inheritance; now both paths agree by construction.
        assert estimate_size_bytes(Kind.ALPHA) == len("alpha")
        assert estimate_size_bytes(Kind.LONGER_NAME) == len("a-much-longer-value")
        assert estimate_size_bytes(Kind.ALPHA) == estimate_size_bytes("alpha")

    def test_int_enum_charged_as_int_not_str(self):
        class Level(IntEnum):
            LOW = 1
            HIGH = 2

        assert estimate_size_bytes(Level.LOW) == INT_BYTES
        assert estimate_size_bytes(Level.HIGH) == estimate_size_bytes(2)

    def test_plain_enum_charged_as_underlying_value(self):
        class Mode(Enum):
            A = "aa"
            B = 3

        assert estimate_size_bytes(Mode.A) == 2
        assert estimate_size_bytes(Mode.B) == INT_BYTES

    def test_enum_checked_before_bool_ordering_is_consistent(self):
        class Flag(IntEnum):
            OFF = 0
            ON = 1

        # An int-enum of 0/1 must charge as an int, exactly like bool-before-int
        # keeps bools from being charged as 4-byte ints.
        assert estimate_size_bytes(Flag.ON) == INT_BYTES
        assert estimate_size_bytes(True) == 1

    def test_enum_inside_containers(self):
        class Kind(str, Enum):
            X = "xy"

        assert estimate_size_bytes({Kind.X: [Kind.X, Kind.X]}) == 3 * 2


class TestEstimateVersusRealCodec:
    """The estimate model must track the real wire codec within the documented
    factor (``ESTIMATE_ACCURACY_FACTOR``) on WBF dissemination messages."""

    def _dissemination_message(self, query_count: int):
        from repro.core.config import DIMatchingConfig
        from repro.core.encoder import PatternEncoder
        from repro.distributed.messages import Message, MessageKind
        from repro.timeseries.pattern import LocalPattern
        from repro.timeseries.query import QueryPattern

        queries = []
        for index in range(query_count):
            queries.append(
                QueryPattern(
                    f"query-{index:04d}",
                    [
                        LocalPattern(f"user-{index}", [1 + index, 2, 0, 3, 1, 0, 2, 1], "s1"),
                        LocalPattern(f"user-{index}", [0, 1, 1, 0, 2, 1, 0, 0], "s2"),
                    ],
                )
            )
        config = DIMatchingConfig(sample_count=8, epsilon=1, bit_backend="python")
        batch = PatternEncoder(config).encode_batch(queries)
        return Message("data-center", "station-1", MessageKind.FILTER_DISSEMINATION, batch)

    @pytest.mark.parametrize("query_count", [1, 4, 8])
    def test_wbf_dissemination_estimate_within_documented_factor(self, query_count):
        message = self._dissemination_message(query_count)
        real = message.size_bytes()
        estimate = message.estimated_size_bytes()
        assert real > 0 and estimate > 0
        ratio = real / estimate
        assert 1 / ESTIMATE_ACCURACY_FACTOR <= ratio <= ESTIMATE_ACCURACY_FACTOR, (
            f"estimate {estimate} vs real {real} bytes drifted beyond "
            f"the documented ×{ESTIMATE_ACCURACY_FACTOR} band"
        )

    def test_report_upload_estimate_within_documented_factor(self):
        from repro.core.protocol import MatchReport
        from repro.distributed.messages import Message, MessageKind

        reports = [
            MatchReport(
                user_id=f"user-{i:04d}",
                station_id="station-1",
                weight=Fraction(i + 1, 17),
                query_id=f"query-{i % 3}",
            )
            for i in range(25)
        ]
        message = Message("station-1", "data-center", MessageKind.MATCH_REPORT, reports)
        ratio = message.size_bytes() / message.estimated_size_bytes()
        assert 1 / ESTIMATE_ACCURACY_FACTOR <= ratio <= ESTIMATE_ACCURACY_FACTOR
