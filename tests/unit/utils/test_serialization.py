"""Unit tests for the byte-size cost model in repro.utils.serialization."""

import pytest

from repro.utils.serialization import (
    FLOAT_BYTES,
    ID_BYTES,
    INT_BYTES,
    estimate_size_bytes,
    sizeof_float,
    sizeof_id,
    sizeof_int,
)


class TestSizeHelpers:
    def test_sizeof_int_default(self):
        assert sizeof_int() == INT_BYTES

    def test_sizeof_int_count(self):
        assert sizeof_int(10) == 10 * INT_BYTES

    def test_sizeof_float(self):
        assert sizeof_float(3) == 3 * FLOAT_BYTES

    def test_sizeof_id(self):
        assert sizeof_id(2) == 2 * ID_BYTES


class TestEstimateSizeBytes:
    def test_none_is_zero(self):
        assert estimate_size_bytes(None) == 0

    def test_bool(self):
        assert estimate_size_bytes(True) == 1

    def test_int(self):
        assert estimate_size_bytes(7) == INT_BYTES

    def test_float(self):
        assert estimate_size_bytes(1.5) == FLOAT_BYTES

    def test_string_utf8_length(self):
        assert estimate_size_bytes("abc") == 3

    def test_bytes(self):
        assert estimate_size_bytes(b"\x00" * 10) == 10

    def test_list_sums_elements(self):
        assert estimate_size_bytes([1, 2, 3]) == 3 * INT_BYTES

    def test_dict_sums_keys_and_values(self):
        assert estimate_size_bytes({"ab": 1}) == 2 + INT_BYTES

    def test_nested_structures(self):
        payload = {"xs": [1, 2], "y": 0.5}
        expected = 2 + 2 * INT_BYTES + 1 + FLOAT_BYTES
        assert estimate_size_bytes(payload) == expected

    def test_object_with_size_bytes_method(self):
        class Sized:
            def size_bytes(self):
                return 123

        assert estimate_size_bytes(Sized()) == 123

    def test_list_of_sized_objects(self):
        class Sized:
            def size_bytes(self):
                return 10

        assert estimate_size_bytes([Sized(), Sized()]) == 20

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            estimate_size_bytes(object())
