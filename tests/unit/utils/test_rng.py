"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, spawn_rngs


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_differs_by_label(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_base_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_returns_non_negative_int(self):
        seed = derive_seed(123, "x")
        assert isinstance(seed, int)
        assert seed >= 0


class TestMakeRng:
    def test_returns_generator(self):
        assert isinstance(make_rng(5), np.random.Generator)

    def test_same_seed_same_stream(self):
        a = make_rng(5, "stream").integers(0, 1000, size=10)
        b = make_rng(5, "stream").integers(0, 1000, size=10)
        assert list(a) == list(b)

    def test_different_labels_different_streams(self):
        a = make_rng(5, "x").integers(0, 1000, size=10)
        b = make_rng(5, "y").integers(0, 1000, size=10)
        assert list(a) != list(b)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_streams_are_independent(self):
        first, second = spawn_rngs(9, 2, "label")
        assert list(first.integers(0, 1000, 10)) != list(second.integers(0, 1000, 10))
