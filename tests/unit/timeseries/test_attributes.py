"""Unit tests for Definition-1 attribute fusion."""

import pytest

from repro.timeseries.attributes import (
    AttributeWeights,
    CommunicationAttributes,
    communication_pattern_value,
)


class TestCommunicationAttributes:
    def test_construction(self):
        attributes = CommunicationAttributes(3, 120, 2)
        assert attributes.as_tuple() == (3, 120, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CommunicationAttributes(-1, 0, 0)
        with pytest.raises(ValueError):
            CommunicationAttributes(0, -1, 0)
        with pytest.raises(ValueError):
            CommunicationAttributes(0, 0, -1)

    def test_zero_attributes_allowed(self):
        assert CommunicationAttributes(0, 0, 0).as_tuple() == (0, 0, 0)


class TestAttributeWeights:
    def test_defaults_are_equal_weights(self):
        assert AttributeWeights().as_tuple() == (1.0, 1.0, 1.0)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AttributeWeights(0, 0, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AttributeWeights(call_count=-1)


class TestCommunicationPatternValue:
    def test_equal_weights_is_mean(self):
        attributes = CommunicationAttributes(3, 9, 6)
        assert communication_pattern_value(attributes) == 6

    def test_zero_activity_gives_zero(self):
        assert communication_pattern_value(CommunicationAttributes(0, 0, 0)) == 0

    def test_custom_weights_emphasise_attribute(self):
        attributes = CommunicationAttributes(2, 10, 1)
        duration_heavy = communication_pattern_value(
            attributes, AttributeWeights(call_count=0.0, call_duration=3.0, partner_count=0.0)
        )
        call_heavy = communication_pattern_value(
            attributes, AttributeWeights(call_count=3.0, call_duration=0.0, partner_count=0.0)
        )
        assert duration_heavy > call_heavy

    def test_result_is_integer(self):
        value = communication_pattern_value(CommunicationAttributes(1, 2, 2))
        assert isinstance(value, int)

    def test_rounding(self):
        # Mean of (1, 2, 2) = 5/3 ≈ 1.67, rounds to 2.
        assert communication_pattern_value(CommunicationAttributes(1, 2, 2)) == 2
