"""Unit tests for the Pattern data model."""

import pytest

from repro.timeseries.pattern import GlobalPattern, LocalPattern, Pattern, PatternSet


class TestPattern:
    def test_basic_construction(self):
        pattern = Pattern("u1", [1, 2, 3])
        assert pattern.user_id == "u1"
        assert pattern.values == (1, 2, 3)
        assert len(pattern) == 3

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            Pattern("u1", [])

    def test_rejects_non_integer_values(self):
        with pytest.raises(TypeError):
            Pattern("u1", [1, 2.5])

    def test_iteration_and_indexing(self):
        pattern = Pattern("u1", [4, 5, 6])
        assert list(pattern) == [4, 5, 6]
        assert pattern[1] == 5

    def test_total_and_maximum(self):
        pattern = Pattern("u1", [1, 7, 2])
        assert pattern.total == 10
        assert pattern.maximum == 7

    def test_add_same_user(self):
        a = Pattern("u1", [1, 2, 3])
        b = Pattern("u1", [3, 2, 1])
        assert (a + b).values == (4, 4, 4)

    def test_add_different_user_rejected(self):
        with pytest.raises(ValueError, match="different users"):
            Pattern("u1", [1]) + Pattern("u2", [1])

    def test_add_different_length_rejected(self):
        with pytest.raises(ValueError, match="different lengths"):
            Pattern("u1", [1, 2]) + Pattern("u1", [1])

    def test_add_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            Pattern("u1", [1]) + [1]

    def test_equality_is_value_based(self):
        assert Pattern("u1", [1, 2]) == Pattern("u1", [1, 2])
        assert Pattern("u1", [1, 2]) != Pattern("u1", [2, 1])

    def test_immutability(self):
        pattern = Pattern("u1", [1, 2])
        with pytest.raises(AttributeError):
            pattern.user_id = "u2"

    def test_size_bytes_scales_with_length(self):
        short = Pattern("u1", [1] * 4)
        long = Pattern("u1", [1] * 16)
        assert long.size_bytes() > short.size_bytes()

    def test_repr_truncates_long_patterns(self):
        pattern = Pattern("u1", list(range(20)))
        assert "..." in repr(pattern)


class TestLocalPattern:
    def test_carries_station(self):
        local = LocalPattern("u1", [1, 2], "bs-1")
        assert local.station_id == "bs-1"
        assert isinstance(local, Pattern)

    def test_size_bytes_larger_than_plain_pattern(self):
        plain = Pattern("u1", [1, 2])
        local = LocalPattern("u1", [1, 2], "bs-1")
        assert local.size_bytes() > plain.size_bytes()

    def test_repr_mentions_station(self):
        assert "bs-9" in repr(LocalPattern("u1", [1], "bs-9"))


class TestGlobalPattern:
    def test_from_locals_sums_per_interval(self):
        locals_ = [
            LocalPattern("u1", [1, 0, 2], "a"),
            LocalPattern("u1", [0, 3, 1], "b"),
        ]
        global_pattern = GlobalPattern.from_locals(locals_)
        assert global_pattern.values == (1, 3, 3)
        assert global_pattern.user_id == "u1"

    def test_from_single_local(self):
        global_pattern = GlobalPattern.from_locals([LocalPattern("u1", [5, 5], "a")])
        assert global_pattern.values == (5, 5)

    def test_from_locals_rejects_mixed_users(self):
        with pytest.raises(ValueError, match="multiple users"):
            GlobalPattern.from_locals(
                [LocalPattern("u1", [1], "a"), LocalPattern("u2", [1], "b")]
            )

    def test_from_locals_rejects_mixed_lengths(self):
        with pytest.raises(ValueError, match="different lengths"):
            GlobalPattern.from_locals(
                [LocalPattern("u1", [1], "a"), LocalPattern("u1", [1, 2], "b")]
            )

    def test_from_locals_rejects_empty(self):
        with pytest.raises(ValueError):
            GlobalPattern.from_locals([])


class TestPatternSet:
    def test_add_and_len(self):
        patterns = PatternSet([Pattern("u1", [1]), Pattern("u2", [2])])
        assert len(patterns) == 2

    def test_patterns_for_user(self):
        patterns = PatternSet([Pattern("u1", [1]), Pattern("u1", [2])])
        assert len(patterns.patterns_for("u1")) == 2
        assert patterns.patterns_for("unknown") == []

    def test_user_ids_ordered_by_first_appearance(self):
        patterns = PatternSet([Pattern("b", [1]), Pattern("a", [1]), Pattern("b", [2])])
        assert patterns.user_ids() == ["b", "a"]

    def test_contains(self):
        patterns = PatternSet([Pattern("u1", [1])])
        assert "u1" in patterns
        assert "u2" not in patterns

    def test_rejects_non_pattern(self):
        with pytest.raises(TypeError):
            PatternSet(["not-a-pattern"])

    def test_size_bytes_sums_members(self):
        a, b = Pattern("u1", [1]), Pattern("u2", [1, 2])
        assert PatternSet([a, b]).size_bytes() == a.size_bytes() + b.size_bytes()

    def test_iteration_preserves_order(self):
        items = [Pattern("u1", [1]), Pattern("u2", [2])]
        assert list(PatternSet(items)) == items
