"""Unit tests for similarity / distance functions (Eq. 2)."""

import pytest

from repro.timeseries.pattern import Pattern
from repro.timeseries.similarity import (
    chebyshev_distance,
    epsilon_similar,
    l1_distance,
    l2_distance,
    pattern_epsilon_similar,
)


class TestDistances:
    def test_l1(self):
        assert l1_distance([1, 2, 3], [2, 2, 5]) == 3

    def test_l2(self):
        assert l2_distance([0, 0], [3, 4]) == 5.0

    def test_chebyshev(self):
        assert chebyshev_distance([1, 5, 2], [2, 2, 2]) == 3

    def test_zero_distance_for_identical(self):
        assert l1_distance([1, 2], [1, 2]) == 0
        assert l2_distance([1, 2], [1, 2]) == 0
        assert chebyshev_distance([1, 2], [1, 2]) == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            l1_distance([1], [1, 2])

    def test_empty_sequences_rejected(self):
        with pytest.raises(ValueError):
            chebyshev_distance([], [])


class TestEpsilonSimilar:
    def test_exact_match_with_zero_epsilon(self):
        assert epsilon_similar([3, 4, 5], [3, 4, 5], 0)

    def test_single_interval_violation_fails(self):
        assert not epsilon_similar([3, 4, 5], [3, 4, 8], 2)

    def test_within_epsilon_everywhere(self):
        assert epsilon_similar([3, 4, 5], [4, 3, 6], 1)

    def test_equivalent_to_chebyshev_bound(self):
        a, b = [5, 1, 9, 0], [4, 3, 9, 1]
        assert epsilon_similar(a, b, 2) == (chebyshev_distance(a, b) <= 2)

    def test_symmetry(self):
        assert epsilon_similar([1, 2], [2, 3], 1) == epsilon_similar([2, 3], [1, 2], 1)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            epsilon_similar([1], [1], -1)


class TestPatternEpsilonSimilar:
    def test_paper_counterexample_individual_vs_global(self):
        # The paper's example: three stations holding {1,1,1}, {2,2,0}, {0,1,4};
        # none matches {3,4,5} individually, but the aggregate does.
        query = Pattern("q", [3, 4, 5])
        fragments = [Pattern("u", v) for v in ([1, 1, 1], [2, 2, 0], [0, 1, 4])]
        assert all(not pattern_epsilon_similar(f, query, 0) for f in fragments)
        aggregate = fragments[0] + fragments[1] + fragments[2]
        assert pattern_epsilon_similar(aggregate, query, 0)

    def test_over_match_counterexample(self):
        # Three identical local matches aggregate to {9,12,15}, which is different.
        query = Pattern("q", [3, 4, 5])
        fragment = Pattern("u", [3, 4, 5])
        assert pattern_epsilon_similar(fragment, query, 0)
        aggregate = fragment + fragment + fragment
        assert not pattern_epsilon_similar(aggregate, query, 0)
