"""Unit tests for uniform sampling (parameter b)."""

import pytest

from repro.timeseries.sampling import uniform_sample, uniform_sample_indices


class TestUniformSampleIndices:
    def test_sample_count_equals_length(self):
        assert uniform_sample_indices(5, 5) == [0, 1, 2, 3, 4]

    def test_sample_count_exceeds_length(self):
        assert uniform_sample_indices(3, 10) == [0, 1, 2]

    def test_single_sample_is_last_index(self):
        assert uniform_sample_indices(10, 1) == [9]

    def test_always_includes_last_index(self):
        for length in (5, 17, 24, 96):
            for count in (2, 3, 7, 12):
                assert uniform_sample_indices(length, count)[-1] == length - 1

    def test_always_includes_first_index_when_multiple(self):
        assert uniform_sample_indices(24, 12)[0] == 0

    def test_indices_strictly_increasing(self):
        indices = uniform_sample_indices(50, 12)
        assert indices == sorted(set(indices))

    def test_count_bounded_by_request(self):
        assert len(uniform_sample_indices(100, 12)) <= 13

    def test_deterministic(self):
        assert uniform_sample_indices(37, 9) == uniform_sample_indices(37, 9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_sample_indices(0, 3)
        with pytest.raises(ValueError):
            uniform_sample_indices(3, 0)


class TestUniformSample:
    def test_samples_values_at_indices(self):
        values = list(range(100, 124))
        sampled = uniform_sample(values, 4)
        assert sampled[0] == 100
        assert sampled[-1] == 123

    def test_sample_of_short_sequence(self):
        assert uniform_sample([1, 2], 10) == [1, 2]

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            uniform_sample([], 3)
