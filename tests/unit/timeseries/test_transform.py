"""Unit tests for the accumulation transform (Eq. 3)."""

import pytest

from repro.timeseries.pattern import GlobalPattern, LocalPattern, Pattern
from repro.timeseries.transform import (
    accumulate,
    accumulate_pattern,
    deaccumulate,
    is_non_decreasing,
)


class TestAccumulate:
    def test_paper_example(self):
        # The paper's example: {1, 2, 3} -> {1, 3, 6} and {3, 2, 1} -> {3, 5, 6}.
        assert accumulate([1, 2, 3]) == [1, 3, 6]
        assert accumulate([3, 2, 1]) == [3, 5, 6]

    def test_distinguishes_permutations(self):
        assert accumulate([1, 2, 3]) != accumulate([3, 2, 1])

    def test_single_value(self):
        assert accumulate([7]) == [7]

    def test_zeros(self):
        assert accumulate([0, 0, 0]) == [0, 0, 0]

    def test_result_is_non_decreasing_for_non_negative_input(self):
        assert is_non_decreasing(accumulate([2, 0, 5, 1]))

    def test_last_value_is_total(self):
        values = [4, 1, 0, 7]
        assert accumulate(values)[-1] == sum(values)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            accumulate([])

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError):
            accumulate([1, "2"])


class TestDeaccumulate:
    def test_inverts_accumulate(self):
        values = [3, 0, 5, 2, 2]
        assert deaccumulate(accumulate(values)) == values

    def test_single_value(self):
        assert deaccumulate([9]) == [9]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            deaccumulate([])


class TestIsNonDecreasing:
    def test_true_for_sorted(self):
        assert is_non_decreasing([1, 1, 2, 3])

    def test_false_for_decrease(self):
        assert not is_non_decreasing([1, 3, 2])

    def test_true_for_single_element(self):
        assert is_non_decreasing([5])


class TestAccumulatePattern:
    def test_preserves_pattern_type(self):
        assert isinstance(accumulate_pattern(Pattern("u", [1, 2])), Pattern)

    def test_preserves_local_pattern_type_and_station(self):
        result = accumulate_pattern(LocalPattern("u", [1, 2], "bs-1"))
        assert isinstance(result, LocalPattern)
        assert result.station_id == "bs-1"
        assert result.values == (1, 3)

    def test_preserves_global_pattern_type(self):
        source = GlobalPattern("u", [1, 2, 3])
        assert isinstance(accumulate_pattern(source), GlobalPattern)
