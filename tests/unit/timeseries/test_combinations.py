"""Unit tests for local-pattern combinations (Eq. 4)."""

import pytest

from repro.timeseries.combinations import (
    combination_count,
    enumerate_combinations,
    enumerate_pattern_combinations,
)
from repro.timeseries.pattern import LocalPattern


class TestCombinationCount:
    @pytest.mark.parametrize("l,expected", [(1, 1), (2, 3), (3, 7), (4, 15), (5, 31)])
    def test_matches_formula(self, l, expected):
        assert combination_count(l) == expected

    def test_equals_two_to_l_minus_one(self):
        for l in range(1, 10):
            assert combination_count(l) == 2**l - 1

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            combination_count(0)


class TestEnumerateCombinations:
    def test_counts_match_formula(self):
        items = ["a", "b", "c"]
        assert len(list(enumerate_combinations(items))) == combination_count(3)

    def test_sizes_in_increasing_order(self):
        sizes = [len(c) for c in enumerate_combinations([1, 2, 3])]
        assert sizes == sorted(sizes)

    def test_all_subsets_unique(self):
        subsets = list(enumerate_combinations(list(range(4))))
        assert len(subsets) == len(set(subsets))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            list(enumerate_combinations([]))


class TestEnumeratePatternCombinations:
    def _locals(self):
        return [
            LocalPattern("u", [1, 0, 0], "a"),
            LocalPattern("u", [0, 2, 0], "b"),
            LocalPattern("u", [0, 0, 3], "c"),
        ]

    def test_count(self):
        assert len(enumerate_pattern_combinations(self._locals())) == 7

    def test_last_combination_is_global(self):
        combos = enumerate_pattern_combinations(self._locals())
        assert combos[-1].values == (1, 2, 3)

    def test_singletons_present(self):
        combos = enumerate_pattern_combinations(self._locals())
        values = {c.values for c in combos}
        assert (1, 0, 0) in values and (0, 2, 0) in values and (0, 0, 3) in values

    def test_pairwise_sums_present(self):
        combos = enumerate_pattern_combinations(self._locals())
        values = {c.values for c in combos}
        assert (1, 2, 0) in values and (1, 0, 3) in values and (0, 2, 3) in values

    def test_user_id_preserved(self):
        combos = enumerate_pattern_combinations(self._locals())
        assert all(c.user_id == "u" for c in combos)

    def test_single_local_pattern(self):
        combos = enumerate_pattern_combinations([LocalPattern("u", [4, 5], "a")])
        assert len(combos) == 1
        assert combos[0].values == (4, 5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            enumerate_pattern_combinations([])
