"""Unit tests for QueryPattern."""

import pytest

from repro.timeseries.pattern import LocalPattern
from repro.timeseries.query import QueryPattern


class TestQueryPattern:
    def _locals(self):
        return [
            LocalPattern("alice", [1, 0, 2], "bs-1"),
            LocalPattern("alice", [0, 3, 0], "bs-2"),
        ]

    def test_global_is_sum_of_locals(self):
        query = QueryPattern("q1", self._locals())
        assert query.global_pattern.values == (1, 3, 2)

    def test_station_count(self):
        assert QueryPattern("q1", self._locals()).station_count == 2

    def test_length(self):
        assert QueryPattern("q1", self._locals()).length == 3

    def test_rejects_empty_locals(self):
        with pytest.raises(ValueError):
            QueryPattern("q1", [])

    def test_rejects_mixed_users(self):
        locals_ = [
            LocalPattern("alice", [1], "bs-1"),
            LocalPattern("bob", [1], "bs-2"),
        ]
        with pytest.raises(ValueError):
            QueryPattern("q1", locals_)

    def test_size_bytes_includes_all_locals(self):
        query = QueryPattern("q1", self._locals())
        assert query.size_bytes() > sum(p.size_bytes() for p in self._locals()) - 1

    def test_repr(self):
        assert "q1" in repr(QueryPattern("q1", self._locals()))

    def test_single_fragment_query(self):
        query = QueryPattern("q2", [LocalPattern("alice", [2, 2], "bs-1")])
        assert query.global_pattern.values == (2, 2)
        assert query.station_count == 1
