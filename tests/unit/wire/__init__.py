"""Unit tests for the binary wire codec."""
