"""Wire-version skew: golden v2 fixtures, old-reader rejection, negotiation.

Version 2 is the forward-compatible header revision: byte-identical to
version 1 except for the version octet and a uvarint-prefixed extension
block between the 7-byte header and the body.  The fixtures here pin both
shapes exactly, and the negotiation tests pin the rolling-upgrade rule the
topology layer builds on — every hop speaks the *lowest* version any party
advertises, so one pre-upgrade station keeps its whole region on version 1
while the trunk above it already writes version 2.
"""

from fractions import Fraction

import pytest

from repro import wire
from repro.core.exceptions import ConfigurationError
from repro.core.protocol import MatchReport
from repro.topology import RollingUpgrade, TopologySpec, build_tier_map
from repro.wire import (
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WIRE_VERSION_EXT,
    WireFormatError,
    negotiate_wire_version,
)

#: One weighted report, the canonical artifact of the uplink hop.
GOLDEN_V1 = "44494d57010009010103027131027331027531020100010203"
#: The same artifact at version 2: one extra byte (the empty extension
#: block's uvarint length) between header and body.
GOLDEN_V2 = "44494d5702000900010103027131027331027531020100010203"
#: Version 2 with a 7-byte opaque extension block this build must skip.
GOLDEN_V2_EXTENSION = (
    "44494d570200090707686f703d3432010103027131027331027531020100010203"
)

STATIONS = tuple(f"s{i}" for i in range(4))


def golden_reports() -> list[MatchReport]:
    return [
        MatchReport(
            user_id="u1", station_id="s1", weight=Fraction(1, 3), query_id="q1"
        )
    ]


class TestGoldenFrames:
    def test_version_1_stays_the_default_and_byte_stable(self):
        assert wire.encode(golden_reports()).hex() == GOLDEN_V1

    def test_version_2_golden_bytes(self):
        assert (
            wire.encode(golden_reports(), version=WIRE_VERSION_EXT).hex() == GOLDEN_V2
        )

    def test_version_2_differs_only_in_version_octet_and_extension_length(self):
        v1, v2 = bytes.fromhex(GOLDEN_V1), bytes.fromhex(GOLDEN_V2)
        assert v2[4] == WIRE_VERSION_EXT and v1[4] == WIRE_VERSION
        assert v2[7] == 0  # empty extension block
        assert v2[:4] == v1[:4] and v2[5:7] == v1[5:7] and v2[8:] == v1[7:]

    def test_version_2_extension_golden_bytes(self):
        assert (
            wire.encode(
                golden_reports(), version=WIRE_VERSION_EXT, extension=b"\x07hop=42"
            ).hex()
            == GOLDEN_V2_EXTENSION
        )

    @pytest.mark.parametrize(
        "fixture", [GOLDEN_V1, GOLDEN_V2, GOLDEN_V2_EXTENSION]
    )
    def test_every_golden_frame_decodes_to_the_artifact(self, fixture):
        assert wire.decode(bytes.fromhex(fixture)) == golden_reports()

    def test_old_readers_reject_version_2_frames(self):
        """A pre-upgrade build (max_version=1) must refuse, not misread."""
        for fixture in (GOLDEN_V2, GOLDEN_V2_EXTENSION):
            with pytest.raises(WireFormatError, match="unsupported wire version"):
                wire.decode(bytes.fromhex(fixture), max_version=WIRE_VERSION)

    def test_old_readers_still_read_version_1(self):
        assert (
            wire.decode(bytes.fromhex(GOLDEN_V1), max_version=WIRE_VERSION)
            == golden_reports()
        )

    def test_version_1_has_no_extension_block(self):
        with pytest.raises(WireFormatError, match="no extension block"):
            wire.encode(golden_reports(), version=WIRE_VERSION, extension=b"x")

    def test_unknown_versions_are_unwritable(self):
        with pytest.raises(WireFormatError, match="cannot write"):
            wire.encode(golden_reports(), version=9)


class TestNegotiation:
    def test_lowest_advertised_version_wins(self):
        assert negotiate_wire_version([2, 1, 2]) == 1
        assert negotiate_wire_version([2, 2]) == 2

    def test_empty_set_is_an_error(self):
        with pytest.raises(WireFormatError, match="empty set"):
            negotiate_wire_version([])

    def test_unknown_versions_cannot_be_negotiated(self):
        with pytest.raises(WireFormatError, match="unsupported wire version"):
            negotiate_wire_version([1, 9])

    def test_supported_versions_are_ascending(self):
        assert SUPPORTED_WIRE_VERSIONS == tuple(sorted(SUPPORTED_WIRE_VERSIONS))


class TestMixedVersionRegion:
    """The rolling-upgrade schedule drives per-hop versions region by region."""

    UPGRADE = RollingUpgrade(
        station_order=STATIONS, from_version=1, to_version=2, duration_rounds=4
    )
    TIER_MAP = build_tier_map(STATIONS, TopologySpec(kind="two-tier", regions=2))

    def test_before_the_rollout_every_hop_speaks_the_old_version(self):
        tier_map = self.UPGRADE.tier_map_at(0, self.TIER_MAP)
        assert all(r.wire_version == 1 for r in tier_map.regions)
        # Center and aggregators upgrade together, ahead of the stations.
        assert tier_map.trunk_wire_version == 2

    def test_a_mixed_region_negotiates_down_to_its_slowest_station(self):
        # Round 1: ceil(4 * 1/4) = 1 station upgraded — region-0 holds s0
        # (upgraded) and s1 (not), so its hop stays on version 1.
        versions = self.UPGRADE.versions_at(1)
        assert versions == {"s0": 2, "s1": 1, "s2": 1, "s3": 1}
        tier_map = self.UPGRADE.tier_map_at(1, self.TIER_MAP)
        assert [r.wire_version for r in tier_map.regions] == [1, 1]

    def test_a_fully_upgraded_region_moves_up_while_its_neighbor_waits(self):
        # Round 2: s0 and s1 upgraded — region-0 is homogeneous on version 2,
        # region-1 (s2, s3) still entirely on version 1.
        tier_map = self.UPGRADE.tier_map_at(2, self.TIER_MAP)
        assert [r.wire_version for r in tier_map.regions] == [2, 1]

    def test_after_the_rollout_every_hop_speaks_the_new_version(self):
        tier_map = self.UPGRADE.tier_map_at(self.UPGRADE.duration_rounds, self.TIER_MAP)
        assert all(r.wire_version == 2 for r in tier_map.regions)
        assert tier_map.trunk_wire_version == 2

    def test_upgrades_never_downgrade(self):
        with pytest.raises(ConfigurationError, match="must not downgrade"):
            RollingUpgrade(station_order=STATIONS, from_version=2, to_version=1)

    def test_legacy_region_frames_really_are_version_1_on_the_wire(self):
        """End to end: a mixed deployment's legacy hop writes v1 frames the
        old stations can read, while the trunk writes v2."""
        spec = TopologySpec(
            kind="two-tier", regions=2,
            wire_version=WIRE_VERSION_EXT, legacy_regions=("region-0",),
        )
        tier_map = build_tier_map(STATIONS, spec)
        legacy, upgraded = tier_map.regions
        legacy_frame = wire.encode(golden_reports(), version=legacy.wire_version)
        assert wire.decode(legacy_frame, max_version=WIRE_VERSION) == golden_reports()
        upgraded_frame = wire.encode(golden_reports(), version=upgraded.wire_version)
        with pytest.raises(WireFormatError):
            wire.decode(upgraded_frame, max_version=WIRE_VERSION)
