"""The message-payload decode cache: broadcast decode-once semantics.

A round broadcasts one artifact to N stations as N messages embedding the same
payload bytes; the cache makes the N envelope decodes share one payload decode.
These tests pin the guard rails: identical bytes hit, a mutated cached object
is evicted (revision check), the escape hatch disables sharing, and list
payloads (per-station reports) never share.
"""

import pytest

import repro.wire.codec as codec
from repro import wire
from repro.core.protocol import MatchReport
from repro.core.wbf import WeightedBloomFilter
from repro.distributed.messages import Message, MessageKind
from fractions import Fraction


@pytest.fixture(autouse=True)
def fresh_cache():
    codec.clear_payload_decode_cache()
    yield
    codec.PAYLOAD_DECODE_CACHE_ENABLED = True
    codec.clear_payload_decode_cache()


def _filter_message(recipient: str = "s1") -> Message:
    wbf = WeightedBloomFilter(512, 4)
    for item in range(40):
        wbf.add(item, ("q1", Fraction(1, 3)))
    return Message(
        sender="dc", recipient=recipient, kind=MessageKind.FILTER_DISSEMINATION,
        payload=wbf,
    )


class TestPayloadDecodeCache:
    def test_broadcast_decodes_share_one_payload(self):
        message = _filter_message()
        first = Message.from_wire(message.to_wire())
        second = Message.from_wire(
            Message(
                sender="dc", recipient="s2",
                kind=MessageKind.FILTER_DISSEMINATION, payload=message.payload,
            ).to_wire()
        )
        assert first.payload == message.payload
        # Different envelopes, same payload bytes: one decoded instance.
        assert second.payload is first.payload

    def test_mutated_cached_payload_is_evicted(self):
        message = _filter_message()
        first = Message.from_wire(message.to_wire())
        first.payload.add(999, ("q9", Fraction(1, 5)))
        # The cached object's revision moved, so the next decode of the same
        # bytes must re-decode rather than serve the mutated instance.
        again = Message.from_wire(message.to_wire())
        assert again.payload is not first.payload
        assert again.payload == message.payload

    def test_escape_hatch_disables_sharing(self):
        codec.PAYLOAD_DECODE_CACHE_ENABLED = False
        message = _filter_message()
        first = Message.from_wire(message.to_wire())
        second = Message.from_wire(message.to_wire())
        assert first.payload is not second.payload
        assert first.payload == second.payload

    def test_report_lists_never_share(self):
        reports = [
            MatchReport(
                user_id=f"u{i}", station_id="s1",
                weight=Fraction(1, 2), query_id="q1",
            )
            for i in range(40)
        ]
        message = Message(
            sender="s1", recipient="dc",
            kind=MessageKind.MATCH_REPORT, payload=reports,
        )
        first = Message.from_wire(message.to_wire())
        second = Message.from_wire(message.to_wire())
        assert first.payload == second.payload
        assert first.payload is not second.payload

    def test_cache_is_bounded(self):
        for index in range(codec._PAYLOAD_DECODE_CACHE_MAX + 4):
            wbf = WeightedBloomFilter(512, 4, seed=index)
            for item in range(40):
                wbf.add(item, ("q1", Fraction(1, 3)))
            message = Message(
                sender="dc", recipient="s1",
                kind=MessageKind.FILTER_DISSEMINATION, payload=wbf,
            )
            Message.from_wire(message.to_wire())
        assert len(codec._PAYLOAD_DECODE_CACHE) <= codec._PAYLOAD_DECODE_CACHE_MAX

    def test_decode_accepts_memoryview_and_bytearray(self):
        message = _filter_message()
        data = message.to_wire()
        from_view = wire.decode(memoryview(data))
        from_array = wire.decode(bytearray(data))
        assert from_view == message
        assert from_array == message
