"""Round-trip and error-handling tests for the artifact codec."""

from fractions import Fraction

import pytest

from repro import wire
from repro.bloom.backend import available_backends
from repro.bloom.standard import BloomFilter
from repro.core.config import DIMatchingConfig
from repro.core.encoder import PatternEncoder
from repro.core.protocol import MatchReport
from repro.core.wbf import WeightedBloomFilter
from repro.distributed.messages import Message, MessageKind
from repro.timeseries.pattern import LocalPattern, Pattern
from repro.timeseries.query import QueryPattern

BACKENDS = available_backends()


def make_wbf(backend: str = "python") -> WeightedBloomFilter:
    wbf = WeightedBloomFilter(256, 4, seed=3, backend=backend)
    wbf.add(10, ("q1", Fraction(1, 3)))
    wbf.add_many([11, 12, "a", (0, 7)], ("q1", Fraction(2, 3)))
    wbf.add(5, Fraction(1, 2))
    return wbf


def make_queries() -> tuple[QueryPattern, ...]:
    return (
        QueryPattern(
            "q1",
            [LocalPattern("u1", [1, 2, 0, 3], "s1"), LocalPattern("u1", [0, 1, 1, 0], "s2")],
        ),
        QueryPattern("q2", [LocalPattern("u2", [2, 2, 2, 2], "s1")]),
    )


class TestRoundTrips:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bloom_filter(self, backend):
        bloom = BloomFilter(200, 3, seed=9, backend=backend)
        bloom.add_many([1, "x", (2, "y"), 3.5])
        decoded = wire.decode(wire.encode(bloom), backend=backend)
        assert decoded == bloom
        assert decoded.contains("x") and decoded.contains(1)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_weighted_bloom_filter(self, backend):
        wbf = make_wbf(backend)
        decoded = wire.decode(wire.encode(wbf), backend=backend)
        assert decoded == wbf
        assert decoded.query_weights(10) == wbf.query_weights(10)
        assert decoded.query_weights(5) == wbf.query_weights(5)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_encoded_query_batch(self, backend):
        config = DIMatchingConfig(sample_count=4, epsilon=1, bit_backend=backend)
        batch = PatternEncoder(config).encode_batch(list(make_queries()))
        decoded = wire.decode(wire.encode(batch), backend=backend)
        assert decoded == batch

    def test_decode_backend_is_a_local_choice(self):
        if "numpy" not in BACKENDS:
            pytest.skip("NumPy backend unavailable")
        wbf = make_wbf("python")
        decoded = wire.decode(wire.encode(wbf), backend="numpy")
        assert decoded.backend_name == "numpy"
        assert decoded == wbf

    def test_match_reports_and_lists(self):
        reports = [
            MatchReport(user_id="u1", station_id="s1", weight=Fraction(1, 3), query_id="q1"),
            MatchReport(user_id="u2", station_id="s1", weight=None),
        ]
        assert wire.decode(wire.encode(reports)) == reports
        assert wire.decode(wire.encode([])) == []

    def test_report_lists_intern_repeated_identifiers(self):
        # Station uploads repeat a handful of long ids across many reports; the
        # columnar layout must amortize them through the string table.
        reports = [
            MatchReport(
                user_id=f"user-{index % 20:04d}",
                station_id="station-with-a-long-name-7",
                weight=Fraction(index + 1, 17),
                query_id=f"query-{index % 4:04d}-with-long-suffix",
            )
            for index in range(200)
        ]
        interned = len(wire.encode(reports))
        itemized = sum(len(wire.encode([report])) for report in reports)
        assert wire.decode(wire.encode(reports)) == reports
        assert interned < itemized / 3

    def test_mixed_lists_use_the_generic_layout(self):
        mixed = [
            MatchReport(user_id="u1", station_id="s1"),
            LocalPattern("u2", [1, 2], "s1"),
        ]
        assert wire.decode(wire.encode(mixed)) == mixed

    def test_patterns_and_queries(self):
        local = LocalPattern("u1", [0, 5, -2], "s9")
        plain = Pattern("u2", [7, 7])
        queries = make_queries()
        assert wire.decode(wire.encode(local)) == local
        assert wire.decode(wire.encode(plain)) == plain
        assert wire.decode(wire.encode(queries[0])) == queries[0]
        assert wire.decode(wire.encode(queries)) == queries

    def test_none_and_scalars(self):
        assert wire.decode(wire.encode(None)) is None
        for value in (True, 42, -7, 2.5, "text", b"blob", Fraction(3, 7), (1, "a")):
            assert wire.decode(wire.encode(value)) == value

    def test_message_envelopes(self):
        batch = PatternEncoder(DIMatchingConfig(sample_count=4)).encode_batch(
            list(make_queries())
        )
        for payload, kind in [
            (batch, MessageKind.FILTER_DISSEMINATION),
            ([MatchReport(user_id="u", station_id="s")], MessageKind.MATCH_REPORT),
            (None, MessageKind.CONTROL),
        ]:
            message = Message("data-center", "s1", kind, payload)
            decoded = wire.decode(wire.encode(message))
            assert isinstance(decoded, Message)
            assert (decoded.sender, decoded.recipient, decoded.kind) == (
                message.sender,
                message.recipient,
                message.kind,
            )
            assert decoded.payload == payload

    def test_compression_flag_round_trips(self):
        wbf = make_wbf()
        plain = wire.encode(wbf)
        compressed = wire.encode(wbf, compress=True)
        assert compressed != plain
        assert compressed[5] & wire.FLAG_ZLIB
        assert wire.decode(compressed) == wbf

    def test_encoded_size_matches_encoding_and_caches(self):
        wbf = make_wbf()
        assert wire.encoded_size(wbf) == len(wire.encode(wbf))
        # Cached: the same object encodes to the identical bytes object.
        assert wire.encode_cached(wbf) is wire.encode_cached(wbf)

    def test_mutating_a_cached_filter_invalidates_its_encoding(self):
        from repro.distributed.messages import Message, MessageKind

        wbf = make_wbf()
        before = wire.encoded_size(wbf)
        message = Message("dc", "s1", MessageKind.FILTER_DISSEMINATION, wbf)
        size_before = message.size_bytes()
        wbf.add(999, ("q9", Fraction(1, 7)))
        assert wire.encoded_size(wbf) > before
        assert wire.decode(wire.encode_cached(wbf)) == wbf
        assert message.size_bytes() > size_before
        assert message.size_bytes() == len(wire.encode(message))


class TestBackendIdenticalBytes:
    @pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
    def test_wbf_bytes_identical_across_backends(self):
        assert wire.encode(make_wbf("python")) == wire.encode(make_wbf("numpy"))

    @pytest.mark.skipif("numpy" not in BACKENDS, reason="NumPy backend unavailable")
    def test_batch_bytes_identical_across_backends(self):
        queries = list(make_queries())
        encodings = []
        for backend in ("python", "numpy"):
            config = DIMatchingConfig(sample_count=4, epsilon=1, bit_backend=backend)
            encodings.append(wire.encode(PatternEncoder(config).encode_batch(queries)))
        assert encodings[0] == encodings[1]


class TestErrorHandling:
    def test_unsupported_payload_raises_typed_error(self):
        class Opaque:
            pass

        with pytest.raises(wire.UnsupportedWireTypeError):
            wire.encode(Opaque())

    def test_short_buffer(self):
        with pytest.raises(wire.WireFormatError):
            wire.decode(b"DIM")

    def test_bad_magic(self):
        data = wire.encode(None)
        with pytest.raises(wire.WireFormatError):
            wire.decode(b"XXXX" + data[4:])

    def test_unknown_version(self):
        data = bytearray(wire.encode(None))
        data[4] = 99
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(data))

    def test_unknown_flags(self):
        data = bytearray(wire.encode(None))
        data[5] = 0x80
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(data))

    def test_unknown_tag(self):
        data = bytearray(wire.encode(None))
        data[6] = 0x7F
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(data))

    def test_truncated_body(self):
        data = wire.encode(make_wbf())
        for cut in (8, len(data) // 2, len(data) - 1):
            with pytest.raises(wire.WireFormatError):
                wire.decode(data[:cut])

    def test_trailing_garbage(self):
        with pytest.raises(wire.WireFormatError):
            wire.decode(wire.encode(make_wbf()) + b"\x00")

    def test_corrupt_compressed_body(self):
        data = bytearray(wire.encode(make_wbf(), compress=True))
        data[10] ^= 0xFF
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(data))

    def test_set_padding_bits_rejected(self):
        # A filter whose bit count is not a multiple of 8 leaves padding bits
        # in the final byte; a buffer with any of them set is non-canonical and
        # must be rejected, not decoded into a filter with a wrong popcount.
        bloom = BloomFilter(4, 1, backend="python")
        data = bytearray(wire.encode(bloom))
        data[-1] = 0xF0  # only padding bits set
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(data))
        wbf = make_wbf()  # 256 bits: exercise the aligned case stays accepted
        assert wire.decode(wire.encode(wbf)) == wbf

    def test_oversized_pattern_values_raise_typed_error(self):
        # size_bytes() of a naive upload must fall back to the estimate, not
        # crash, when a pattern value exceeds the wire's 64-bit range.
        from repro.distributed.messages import Message, MessageKind

        oversized = [LocalPattern("u", [2**70], "bs")]
        with pytest.raises(wire.UnsupportedWireTypeError):
            wire.encode(oversized)
        message = Message("bs", "center", MessageKind.MATCH_REPORT, oversized)
        assert message.size_bytes() == message.estimated_size_bytes()

    def test_corrupt_query_pattern_raises_typed_error(self):
        # A query whose local fragments name two different users (or differ in
        # length) fails QueryPattern's constructor validation; hand-craft such
        # a buffer and require the typed error, not a bare ValueError.
        from repro.wire.primitives import write_str, write_svarint, write_uvarint

        body = bytearray()
        write_str(body, "q1")
        write_uvarint(body, 2)
        for user, values in (("u1", [1, 2]), ("u2", [3, 4])):
            write_str(body, user)
            write_str(body, "s1")
            write_uvarint(body, len(values))
            for value in values:
                write_svarint(body, value)
        data = wire.MAGIC + bytes((wire.WIRE_VERSION, 0, 0x07)) + bytes(body)
        with pytest.raises(wire.WireFormatError):
            wire.decode(data)

    def test_inconsistent_weight_map_cannot_encode(self):
        wbf = WeightedBloomFilter(64, 2, backend="python")
        wbf.add(1, Fraction(1, 2))
        # Attach a weight to a clear bit behind the API's back.
        wbf._weights[63] = {Fraction(1, 3)}
        with pytest.raises(ValueError):
            wire.encode(wbf)
