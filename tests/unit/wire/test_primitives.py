"""Unit tests for the varint/fixed-width wire primitives."""

import pytest

from repro.wire.errors import WireFormatError
from repro.wire.primitives import (
    MAX_VARINT_BYTES,
    ByteReader,
    write_bool,
    write_bytes,
    write_f64,
    write_str,
    write_svarint,
    write_u8,
    write_uvarint,
)


def roundtrip_uvarint(value: int) -> int:
    out = bytearray()
    write_uvarint(out, value)
    reader = ByteReader(bytes(out))
    result = reader.uvarint()
    reader.expect_eof()
    return result


def roundtrip_svarint(value: int) -> int:
    out = bytearray()
    write_svarint(out, value)
    reader = ByteReader(bytes(out))
    result = reader.svarint()
    reader.expect_eof()
    return result


class TestVarints:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 129, 16383, 16384, 2**32, 2**64 - 1]
    )
    def test_uvarint_round_trip(self, value):
        assert roundtrip_uvarint(value) == value

    @pytest.mark.parametrize(
        "value", [0, 1, -1, 63, -64, 64, -65, 2**62, -(2**62), 2**63 - 1, -(2**63)]
    )
    def test_svarint_round_trip(self, value):
        assert roundtrip_svarint(value) == value

    def test_uvarint_width_is_minimal(self):
        for value, width in [(0, 1), (127, 1), (128, 2), (16383, 2), (16384, 3)]:
            out = bytearray()
            write_uvarint(out, value)
            assert len(out) == width

    def test_uvarint_rejects_negative_and_oversized(self):
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), -1)
        with pytest.raises(ValueError):
            write_uvarint(bytearray(), 2**64)

    def test_svarint_rejects_oversized(self):
        with pytest.raises(ValueError):
            write_svarint(bytearray(), 2**63)
        with pytest.raises(ValueError):
            write_svarint(bytearray(), -(2**63) - 1)

    def test_overlong_varint_rejected(self):
        reader = ByteReader(b"\x80" * MAX_VARINT_BYTES + b"\x01")
        with pytest.raises(WireFormatError):
            reader.uvarint()

    def test_truncated_varint_rejected(self):
        reader = ByteReader(b"\x80\x80")
        with pytest.raises(WireFormatError):
            reader.uvarint()


class TestFixedFields:
    def test_f64_round_trip(self):
        out = bytearray()
        write_f64(out, 1.5)
        write_f64(out, -0.25)
        reader = ByteReader(bytes(out))
        assert reader.f64() == 1.5
        assert reader.f64() == -0.25

    def test_str_and_bytes_round_trip(self):
        out = bytearray()
        write_str(out, "héllo")
        write_bytes(out, b"\x00\xff")
        reader = ByteReader(bytes(out))
        assert reader.str_() == "héllo"
        assert reader.bytes_() == b"\x00\xff"

    def test_bool_round_trip_and_strictness(self):
        out = bytearray()
        write_bool(out, True)
        write_bool(out, False)
        reader = ByteReader(bytes(out))
        assert reader.bool_() is True
        assert reader.bool_() is False
        with pytest.raises(WireFormatError):
            ByteReader(b"\x02").bool_()

    def test_u8_bounds(self):
        with pytest.raises(ValueError):
            write_u8(bytearray(), 256)
        with pytest.raises(ValueError):
            write_u8(bytearray(), -1)

    def test_invalid_utf8_rejected(self):
        out = bytearray()
        write_bytes(out, b"\xff\xfe")
        with pytest.raises(WireFormatError):
            ByteReader(bytes(out)).str_()


class TestByteReader:
    def test_truncated_raw_read(self):
        reader = ByteReader(b"abc")
        with pytest.raises(WireFormatError):
            reader.raw(4)

    def test_trailing_bytes_detected(self):
        reader = ByteReader(b"ab")
        reader.raw(1)
        with pytest.raises(WireFormatError):
            reader.expect_eof()
        reader.raw(1)
        reader.expect_eof()

    def test_remaining_and_offset_track_reads(self):
        reader = ByteReader(b"abcd")
        assert reader.remaining == 4
        reader.raw(3)
        assert reader.offset == 3
        assert reader.remaining == 1
