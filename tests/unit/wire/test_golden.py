"""Golden wire-format fixtures.

Each fixture is the exact hex encoding of a small canonical artifact, checked
in so that *any* unintentional change to the wire layout — field order, varint
widths, tag values, weight-table sorting — fails here before it ships.  If a
change is intentional, bump ``WIRE_VERSION`` and regenerate the fixtures.

The fixtures are backend-independent (encodings are canonical) and
platform-independent (SHA-256 hashing, fixed byte orders).  The *compressed*
fixture is asserted on the decode side only: zlib output bytes may legally
differ across zlib builds, while every build must decode every valid stream.
"""

from fractions import Fraction

import pytest

from repro import wire
from repro.bloom.standard import BloomFilter
from repro.core.protocol import MatchReport
from repro.core.wbf import WeightedBloomFilter
from repro.distributed.messages import Message, MessageKind
from repro.timeseries.pattern import LocalPattern
from repro.timeseries.query import QueryPattern

GOLDEN_BLOOM = "44494d57010001400202030021080044000000"
GOLDEN_WBF = (
    "44494d570100024002020300210800040000000307020208020502713107020308020502713107"
    "040302000102000101020102"
)
GOLDEN_REPORT_LIST = "44494d57010009010103027131027331027531020100010203"
GOLDEN_QUERY_BATCH = "44494d5701000801027131010275310273310402040006"
GOLDEN_MESSAGE = (
    "44494d5701000a0b646174612d63656e746572027331011944494d5701000901010302713102"
    "7331027531020100010203"
)
# Decode-only (see module docstring): a zlib-flagged encoding of GOLDEN_WBF's
# artifact as produced by one zlib build.
GOLDEN_WBF_COMPRESSED = (
    "44494d57010102789c736062626650e4606061606060666762e26062652a34646762863258"
    "989918188188918991090031f7020f"
)


def golden_bloom() -> BloomFilter:
    bloom = BloomFilter(64, 2, seed=1, backend="python")
    bloom.add_many([1, 2, "x"])
    return bloom


def golden_wbf() -> WeightedBloomFilter:
    wbf = WeightedBloomFilter(64, 2, seed=1, backend="python")
    wbf.add(1, ("q1", Fraction(1, 3)))
    wbf.add(2, ("q1", Fraction(2, 3)))
    wbf.add(1, Fraction(1, 2))
    return wbf


def golden_report() -> MatchReport:
    return MatchReport(user_id="u1", station_id="s1", weight=Fraction(1, 3), query_id="q1")


class TestGoldenEncodings:
    def test_header_layout(self):
        data = wire.encode(None)
        assert data[:4] == b"DIMW"
        assert data[4] == wire.WIRE_VERSION == 1
        assert data[5] == 0  # no flags
        assert len(data) == 7  # None has an empty body

    def test_bloom_filter_encoding_is_stable(self):
        assert wire.encode(golden_bloom()).hex() == GOLDEN_BLOOM

    def test_wbf_encoding_is_stable(self):
        assert wire.encode(golden_wbf()).hex() == GOLDEN_WBF

    def test_report_list_encoding_is_stable(self):
        assert wire.encode([golden_report()]).hex() == GOLDEN_REPORT_LIST

    def test_query_batch_encoding_is_stable(self):
        query = QueryPattern("q1", [LocalPattern("u1", [1, 2, 0, 3], "s1")])
        assert wire.encode((query,)).hex() == GOLDEN_QUERY_BATCH

    def test_message_encoding_is_stable(self):
        message = Message("data-center", "s1", MessageKind.MATCH_REPORT, [golden_report()])
        assert wire.encode(message).hex() == GOLDEN_MESSAGE


class TestGoldenDecodings:
    """The checked-in bytes must keep decoding to the same artifacts forever."""

    def test_bloom_filter_decodes(self):
        assert wire.decode(bytes.fromhex(GOLDEN_BLOOM)) == golden_bloom()

    def test_wbf_decodes(self):
        assert wire.decode(bytes.fromhex(GOLDEN_WBF)) == golden_wbf()

    def test_compressed_wbf_decodes(self):
        assert wire.decode(bytes.fromhex(GOLDEN_WBF_COMPRESSED)) == golden_wbf()

    def test_message_decodes(self):
        decoded = wire.decode(bytes.fromhex(GOLDEN_MESSAGE))
        assert decoded.payload == [golden_report()]
        assert decoded.kind is MessageKind.MATCH_REPORT


class TestGoldenCorruption:
    """Every way of damaging a golden buffer raises the typed error."""

    @pytest.mark.parametrize("cut", [0, 3, 6, 10, -1])
    def test_truncation(self, cut):
        data = bytes.fromhex(GOLDEN_WBF)
        truncated = data[:cut] if cut >= 0 else data[: len(data) + cut]
        with pytest.raises(wire.WireFormatError):
            wire.decode(truncated)

    def test_flipped_magic(self):
        data = bytearray(bytes.fromhex(GOLDEN_WBF))
        data[0] ^= 0xFF
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(data))

    def test_weight_table_index_out_of_range(self):
        # The last byte of the WBF fixture is a weight-table index; pointing it
        # past the table must be rejected, not crash or mis-decode.
        data = bytearray(bytes.fromhex(GOLDEN_WBF))
        data[-1] = 0x7F
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(data))

    def test_corrupt_compressed_stream(self):
        data = bytearray(bytes.fromhex(GOLDEN_WBF_COMPRESSED))
        data[12] ^= 0xFF
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(data))

    def test_nested_message_payload_truncation(self):
        # Truncating inside the nested payload block must surface as a typed
        # error from the envelope decoder.
        data = bytes.fromhex(GOLDEN_MESSAGE)
        with pytest.raises(wire.WireFormatError):
            wire.decode(data[:-3] + data[-2:])
