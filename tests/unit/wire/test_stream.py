"""Deterministic unit tests of the length-prefixed stream framing layer.

These pin the exact header layout (magic, length, CRC) and the decoder's
three-outcome contract — complete frame, "need more bytes", or a typed
:class:`WireFormatError` — with hand-built byte sequences.  The exhaustive
arbitrary-chunking coverage lives in ``tests/property/test_frame_stream.py``;
this module is the dependency-free pin that also runs on the no-NumPy leg.
"""

import struct
import zlib

import pytest

from repro.wire import (
    FrameStreamDecoder,
    MAX_FRAME_BYTES,
    STREAM_HEADER_SIZE,
    STREAM_MAGIC,
    StreamFrame,
    WireFormatError,
    encode_stream_frame,
)


class TestEncodeStreamFrame:
    def test_header_layout_is_magic_length_crc(self):
        payload = b"hello, stations"
        frame = encode_stream_frame(payload)
        assert frame[:4] == STREAM_MAGIC
        assert frame[4:8] == struct.pack(">I", len(payload))
        assert frame[8:12] == struct.pack(">I", zlib.crc32(payload))
        assert frame[12:] == payload
        assert len(frame) == STREAM_HEADER_SIZE + len(payload)

    def test_empty_payload_frames_to_bare_header(self):
        frame = encode_stream_frame(b"")
        assert len(frame) == STREAM_HEADER_SIZE
        (decoded,) = FrameStreamDecoder().feed(frame)
        assert decoded == StreamFrame(payload=b"", crc_ok=True)

    def test_oversize_payload_is_rejected_at_encode_time(self):
        class _HugeBytes(bytes):
            def __len__(self) -> int:
                return MAX_FRAME_BYTES + 1

        with pytest.raises(ValueError, match="frame limit"):
            encode_stream_frame(_HugeBytes())


class TestFrameStreamDecoder:
    def test_single_frame_round_trips(self):
        decoder = FrameStreamDecoder()
        frames = decoder.feed(encode_stream_frame(b"payload"))
        assert frames == [StreamFrame(payload=b"payload", crc_ok=True)]
        assert decoder.at_boundary

    def test_coalesced_frames_decode_in_order(self):
        stream = b"".join(
            encode_stream_frame(bytes([value]) * value) for value in (1, 2, 3)
        )
        frames = FrameStreamDecoder().feed(stream)
        assert [frame.payload for frame in frames] == [b"\x01", b"\x02\x02", b"\x03" * 3]
        assert all(frame.crc_ok for frame in frames)

    def test_byte_at_a_time_feeding_reassembles(self):
        decoder = FrameStreamDecoder()
        frames = []
        for byte in encode_stream_frame(b"one byte at a time"):
            frames += decoder.feed(bytes([byte]))
        assert [frame.payload for frame in frames] == [b"one byte at a time"]
        decoder.expect_boundary()

    def test_partial_frame_stays_buffered(self):
        decoder = FrameStreamDecoder()
        frame = encode_stream_frame(b"held back")
        assert decoder.feed(frame[:-1]) == []
        assert decoder.buffered == len(frame) - 1
        assert not decoder.at_boundary
        with pytest.raises(WireFormatError, match="ended mid-frame"):
            decoder.expect_boundary()
        # The final byte releases the frame.
        (decoded,) = decoder.feed(frame[-1:])
        assert decoded.payload == b"held back"

    def test_bad_magic_raises_immediately(self):
        with pytest.raises(WireFormatError, match="bad frame magic"):
            FrameStreamDecoder().feed(b"JUNK" + b"\x00" * 8)

    def test_partial_bad_magic_raises_before_full_header(self):
        # Two bytes that cannot be a prefix of b"DIMS" are already decisive.
        with pytest.raises(WireFormatError, match="desynchronized"):
            FrameStreamDecoder().feed(b"XY")

    def test_partial_good_magic_is_not_an_error(self):
        decoder = FrameStreamDecoder()
        assert decoder.feed(STREAM_MAGIC[:2]) == []
        assert decoder.buffered == 2

    def test_absurd_length_is_desynchronization(self):
        header = struct.pack(">4sII", STREAM_MAGIC, MAX_FRAME_BYTES + 1, 0)
        with pytest.raises(WireFormatError, match="over the"):
            FrameStreamDecoder().feed(header)

    def test_corrupted_payload_yields_crc_ok_false_and_stays_in_sync(self):
        good = encode_stream_frame(b"after the damage")
        damaged = bytearray(encode_stream_frame(b"damaged payload!"))
        damaged[STREAM_HEADER_SIZE] ^= 0xFF
        frames = FrameStreamDecoder().feed(bytes(damaged) + good)
        assert [frame.crc_ok for frame in frames] == [False, True]
        assert frames[1].payload == b"after the damage"

    def test_corrupted_header_crc_flags_the_frame(self):
        frame = bytearray(encode_stream_frame(b"crc field hit"))
        frame[8] ^= 0x01
        (decoded,) = FrameStreamDecoder().feed(bytes(frame))
        assert not decoded.crc_ok
        assert decoded.payload == b"crc field hit"
