"""Unit tests for report formatting."""

import pytest

from repro.evaluation.experiments import EffectivenessRow
from repro.evaluation.reporting import (
    comparison_series,
    format_comparison_sweep,
    format_convergence_table,
    format_effectiveness_table,
)


@pytest.fixture(scope="module")
def sweep_results(small_dataset, exact_config):
    from repro.evaluation.experiments import sweep_query_counts

    return sweep_query_counts(
        small_dataset, [2, 4], epsilon=0, config=exact_config, methods=("naive", "bf", "wbf")
    )


class TestComparisonSeries:
    def test_precision_series(self, sweep_results):
        series = comparison_series(sweep_results, "precision")
        assert set(series) == {"naive", "bf", "wbf"}
        assert all(len(values) == 2 for values in series.values())

    @pytest.mark.parametrize("quantity", ["time", "communication", "storage"])
    def test_other_quantities(self, sweep_results, quantity):
        series = comparison_series(sweep_results, quantity)
        assert all(v >= 0 for values in series.values() for v in values)

    def test_relative_quantities_are_one_for_naive(self, sweep_results):
        series = comparison_series(sweep_results, "communication")
        assert all(v == 1.0 for v in series["naive"])

    def test_unknown_quantity_rejected(self, sweep_results):
        with pytest.raises(ValueError):
            comparison_series(sweep_results, "latency")

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            comparison_series([], "precision")


class TestFormatting:
    def test_format_comparison_sweep(self, sweep_results):
        text = format_comparison_sweep(sweep_results, "precision", "Figure 4(a)")
        assert "Figure 4(a)" in text
        assert "patterns" in text
        assert "wbf" in text

    def test_format_effectiveness_table(self):
        rows = [EffectivenessRow("March 28th, 2009", 0.98, 0.99, 0.98)]
        text = format_effectiveness_table(rows)
        assert "March 28th, 2009" in text
        assert "Precision" in text

    def test_format_effectiveness_rejects_empty(self):
        with pytest.raises(ValueError):
            format_effectiveness_table([])

    def test_format_convergence_table(self):
        results = {"group-1": {2: 0.5, 12: 0.9}, "group-2": {2: 0.6, 12: 0.95}}
        text = format_convergence_table(results)
        assert "group-1" in text
        assert "12" in text

    def test_format_convergence_rejects_empty(self):
        with pytest.raises(ValueError):
            format_convergence_table({})
