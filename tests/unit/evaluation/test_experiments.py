"""Unit tests for the experiment runners."""

import pytest

from repro.core.config import DIMatchingConfig
from repro.datagen.workload import build_query_workload
from repro.evaluation.experiments import (
    ComparisonResult,
    convergence_study,
    effectiveness_study,
    ground_truth_users,
    make_protocols,
    run_comparison,
    sweep_query_counts,
)


class TestGroundTruth:
    def test_contains_query_users(self, small_dataset, small_workload):
        truth = ground_truth_users(small_dataset, list(small_workload.queries), 0)
        for query in small_workload.queries:
            assert query.local_patterns[0].user_id in truth

    def test_grows_with_epsilon(self, small_dataset, small_workload):
        queries = list(small_workload.queries)
        strict = ground_truth_users(small_dataset, queries, 0)
        loose = ground_truth_users(small_dataset, queries, 10)
        assert strict <= loose

    def test_rejects_empty_queries(self, small_dataset):
        with pytest.raises(ValueError):
            ground_truth_users(small_dataset, [], 0)


class TestMakeProtocols:
    def test_default_methods(self, exact_config):
        protocols = make_protocols(exact_config, epsilon=0)
        assert [p.name for p in protocols] == ["naive", "bf", "wbf"]

    def test_local_method(self, exact_config):
        protocols = make_protocols(exact_config, epsilon=0, methods=("local",))
        assert protocols[0].name == "local"

    def test_unknown_method_rejected(self, exact_config):
        with pytest.raises(ValueError):
            make_protocols(exact_config, epsilon=0, methods=("magic",))

    def test_empty_methods_rejected(self, exact_config):
        with pytest.raises(ValueError):
            make_protocols(exact_config, epsilon=0, methods=())


class TestRunComparison:
    def test_result_structure(self, small_dataset, small_workload, exact_config):
        result = run_comparison(small_dataset, small_workload, exact_config)
        assert isinstance(result, ComparisonResult)
        assert set(result.outcomes) == {"naive", "bf", "wbf"}
        assert result.query_count == len(small_workload)
        assert result.combined_pattern_count >= result.query_count
        assert result.ground_truth

    def test_naive_is_exact(self, small_dataset, small_workload, exact_config):
        result = run_comparison(small_dataset, small_workload, exact_config)
        assert result.outcome("naive").metrics.precision == 1.0
        assert result.outcome("naive").metrics.recall == 1.0

    def test_wbf_matches_naive_precision(self, small_dataset, small_workload, exact_config):
        result = run_comparison(small_dataset, small_workload, exact_config)
        assert result.outcome("wbf").metrics.precision >= 0.95

    def test_bf_precision_below_wbf(self, small_dataset, small_workload, exact_config):
        result = run_comparison(small_dataset, small_workload, exact_config)
        assert (
            result.outcome("bf").metrics.precision
            <= result.outcome("wbf").metrics.precision
        )

    def test_relative_costs_of_baseline_are_one(self, small_dataset, small_workload, exact_config):
        result = run_comparison(small_dataset, small_workload, exact_config)
        relative = result.relative_costs("naive")
        assert relative["communication"] == 1.0
        assert relative["storage"] == 1.0

    def test_unknown_method_outcome_rejected(self, small_dataset, small_workload, exact_config):
        result = run_comparison(small_dataset, small_workload, exact_config, methods=("wbf",))
        with pytest.raises(KeyError):
            result.outcome("naive")

    def test_explicit_k(self, small_dataset, small_workload, exact_config):
        result = run_comparison(small_dataset, small_workload, exact_config, methods=("wbf",), k=3)
        assert len(result.outcome("wbf").retrieved) <= 3


class TestSweeps:
    def test_sweep_query_counts(self, small_dataset, exact_config):
        results = sweep_query_counts(
            small_dataset, [2, 4], epsilon=0, config=exact_config, methods=("naive", "wbf")
        )
        assert len(results) == 2
        assert results[0].query_count == 2
        assert results[1].query_count == 4
        assert results[1].combined_pattern_count >= results[0].combined_pattern_count

    def test_sweep_rejects_empty(self, small_dataset, exact_config):
        with pytest.raises(ValueError):
            sweep_query_counts(small_dataset, [], epsilon=0, config=exact_config)

    def test_convergence_study_shape(self):
        results = convergence_study(
            sample_counts=[2, 8],
            group_count=2,
            users_per_category=4,
            station_count=4,
            query_count=4,
        )
        assert len(results) == 2
        for per_group in results.values():
            assert set(per_group) == {2, 8}
            assert all(0.0 <= v <= 1.0 for v in per_group.values())

    def test_convergence_accuracy_improves_with_samples(self):
        results = convergence_study(
            sample_counts=[1, 12],
            group_count=2,
            users_per_category=6,
            station_count=4,
            query_count=6,
        )
        improvements = [per_group[12] >= per_group[1] for per_group in results.values()]
        assert any(improvements)

    def test_effectiveness_study_rows(self):
        rows = effectiveness_study(day_count=1, cohort_size=48, queries_per_category=1)
        assert len(rows) == 1
        row = rows[0]
        assert row.day_label == "March 28th, 2009"
        assert 0.0 <= row.precision <= 1.0
        assert 0.0 <= row.recall <= 1.0
        assert 0.0 <= row.f1 <= 1.0

    def test_effectiveness_study_high_quality(self):
        rows = effectiveness_study(day_count=1, cohort_size=96, queries_per_category=2)
        assert rows[0].f1 >= 0.9
