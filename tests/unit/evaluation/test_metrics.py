"""Unit tests for retrieval metrics."""

import pytest

from repro.evaluation.metrics import evaluate_retrieval, f1_score, precision, recall


class TestPrecisionRecall:
    def test_perfect_retrieval(self):
        assert precision(["a", "b"], ["a", "b"]) == 1.0
        assert recall(["a", "b"], ["a", "b"]) == 1.0

    def test_half_precision(self):
        assert precision(["a", "x"], ["a", "b"]) == 0.5

    def test_half_recall(self):
        assert recall(["a"], ["a", "b"]) == 0.5

    def test_empty_retrieval_with_relevant_items(self):
        assert precision([], ["a"]) == 0.0
        assert recall([], ["a"]) == 0.0

    def test_empty_relevant_set(self):
        assert recall(["a"], []) == 1.0
        assert precision([], []) == 1.0

    def test_duplicates_ignored(self):
        assert precision(["a", "a"], ["a"]) == 1.0


class TestF1:
    def test_harmonic_mean(self):
        assert f1_score(0.5, 1.0) == pytest.approx(2 / 3)

    def test_zero_when_both_zero(self):
        assert f1_score(0.0, 0.0) == 0.0

    def test_perfect(self):
        assert f1_score(1.0, 1.0) == 1.0


class TestEvaluateRetrieval:
    def test_counts(self):
        metrics = evaluate_retrieval(["a", "b", "x"], ["a", "b", "c"])
        assert metrics.counts.true_positive == 2
        assert metrics.counts.false_positive == 1
        assert metrics.counts.false_negative == 1
        assert metrics.counts.retrieved == 3
        assert metrics.counts.relevant == 3

    def test_metrics_consistent_with_counts(self):
        metrics = evaluate_retrieval(["a", "x"], ["a", "b"])
        assert metrics.precision == 0.5
        assert metrics.recall == 0.5
        assert metrics.f1 == 0.5

    def test_perfect_retrieval(self):
        metrics = evaluate_retrieval(["a"], ["a"])
        assert metrics.precision == metrics.recall == metrics.f1 == 1.0
