"""Unit tests for the descriptive-figure data series (Fig. 1a, 1b, 3)."""

from repro.evaluation.figures import (
    accumulated_category_series,
    category_mean_series,
    local_similarity_counts,
)


class TestCategoryMeanSeries:
    def test_six_series_with_expected_length(self):
        series = category_mean_series(days=2, bin_hours=6)
        assert len(series) == 6
        assert all(len(values) == 8 for values in series.values())

    def test_values_normalised_to_mean_one(self):
        series = category_mean_series(days=2, bin_hours=6)
        for values in series.values():
            mean = sum(values) / len(values)
            assert abs(mean - 1.0) < 1e-6

    def test_daily_periodicity(self):
        series = category_mean_series(days=2, bin_hours=6)
        for values in series.values():
            assert values[:4] == values[4:]


class TestAccumulatedCategorySeries:
    def test_series_are_monotone_non_decreasing(self):
        series = accumulated_category_series(days=7, bin_hours=6)
        for values in series.values():
            assert all(b >= a for a, b in zip(values, values[1:]))

    def test_series_end_at_one(self):
        series = accumulated_category_series(days=7, bin_hours=6)
        for values in series.values():
            assert values[-1] == 1.0

    def test_length(self):
        series = accumulated_category_series(days=7, bin_hours=6)
        assert all(len(values) == 28 for values in series.values())


class TestLocalSimilarityCounts:
    def test_counts_are_non_negative(self, small_dataset):
        counts = local_similarity_counts(small_dataset, epsilon=0, max_pairs=200)
        assert counts
        assert all(count >= 0 for count in counts)

    def test_observation_two_most_pairs_share_a_local_pattern(self, small_dataset):
        counts = local_similarity_counts(small_dataset, epsilon=0, max_pairs=500)
        share = sum(1 for count in counts if count >= 1) / len(counts)
        assert share > 0.5

    def test_max_pairs_respected(self, small_dataset):
        counts = local_similarity_counts(small_dataset, epsilon=0, max_pairs=5)
        assert len(counts) <= 5
