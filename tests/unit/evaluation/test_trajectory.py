"""The perf-trajectory gate: headline extraction and regression detection."""

import pytest

from repro.evaluation.benchjson import write_bench_json
from repro.evaluation.trajectory import (
    compare_directories,
    compare_documents,
    headline_metrics,
    main,
)

SWEEP_PAYLOAD = {
    "methods": ["naive", "wbf"],
    "series": {
        "precision": {"naive": [1.0, 1.0], "wbf": [0.9, 0.8]},
        "communication": {"naive": [1.0, 1.0], "wbf": [0.2, 0.4]},
    },
    "communication_bytes": {"naive": [1000, 1000], "wbf": [200, 400]},
}

WORKLOAD_PAYLOAD = {
    "scenario": "steady-state",
    "rounds": [],
    "totals": {"bytes": 5000, "queries": 12, "lost_stations": 0, "retransmits": 0},
    "cumulative": {
        "precision": {"mean": 0.95},
        "goodput": {"minimum": 0.8},
        "latency_s": {"p90": 0.25},
    },
}

WIRE_PAYLOAD = {"batch_bytes": 900, "batch_bytes_zlib": 700, "report_upload_bytes": 4000}

SOAK_PAYLOAD = {
    "source": {
        "kind": "streaming",
        "declared_users": 1_000_000,
        "station_count": 10_000,
        "max_resident": 48,
        "peak_resident": 48,
        "built": 288,
        "evictions": 240,
    },
}


def _document(payload, name="demo"):
    return {"schema_version": 1, "benchmark": name, "payload": payload}


class TestHeadlineMetrics:
    def test_sweep_payload_yields_precision_and_bytes_per_method(self):
        metrics = {m.name: m for m in headline_metrics(_document(SWEEP_PAYLOAD))}
        assert metrics["wbf.precision.final"].value == 0.8
        assert metrics["wbf.precision.final"].direction == "higher"
        assert metrics["wbf.communication_bytes.final"].value == 400
        assert metrics["wbf.communication_bytes.final"].direction == "lower"

    def test_workload_payload_yields_deterministic_quantities_only(self):
        metrics = {m.name: m for m in headline_metrics(_document(WORKLOAD_PAYLOAD))}
        assert set(metrics) == {
            "total_bytes",
            "precision.mean",
            "goodput.min",
            "latency.p90",
        }
        assert metrics["latency.p90"].direction == "lower"

    def test_wire_payload_tracks_sizes(self):
        metrics = {m.name: m for m in headline_metrics(_document(WIRE_PAYLOAD))}
        assert metrics["batch_bytes"].value == 900

    def test_soak_payload_tracks_residency_direction_aware(self):
        metrics = {m.name: m for m in headline_metrics(_document(SOAK_PAYLOAD))}
        # Residency growth regresses (the cap stopped holding) ...
        assert metrics["source.peak_resident"].value == 48
        assert metrics["source.peak_resident"].direction == "lower"
        assert metrics["source.evictions"].direction == "lower"
        # ... and declared-scale shrinkage regresses (the soak got smaller).
        assert metrics["source.declared_users"].value == 1_000_000
        assert metrics["source.declared_users"].direction == "higher"

    def test_source_section_composes_with_the_workload_shape(self):
        payload = dict(WORKLOAD_PAYLOAD, **SOAK_PAYLOAD)
        names = {m.name for m in headline_metrics(_document(payload))}
        assert {"total_bytes", "source.peak_resident"} <= names

    def test_unknown_payload_yields_nothing(self):
        assert headline_metrics(_document({"something": 1})) == []


class TestCompareDocuments:
    def test_identical_documents_pass(self):
        doc = _document(WORKLOAD_PAYLOAD)
        assert not any(c.regressed for c in compare_documents(doc, doc))

    def test_byte_growth_beyond_tolerance_regresses(self):
        fresh = _document(
            {**WORKLOAD_PAYLOAD, "totals": {**WORKLOAD_PAYLOAD["totals"], "bytes": 6500}}
        )
        rows = compare_documents(_document(WORKLOAD_PAYLOAD), fresh, tolerance=0.25)
        regressed = {c.metric for c in rows if c.regressed}
        assert regressed == {"total_bytes"}

    def test_byte_growth_within_tolerance_passes(self):
        fresh = _document(
            {**WORKLOAD_PAYLOAD, "totals": {**WORKLOAD_PAYLOAD["totals"], "bytes": 6000}}
        )
        rows = compare_documents(_document(WORKLOAD_PAYLOAD), fresh, tolerance=0.25)
        assert not any(c.regressed for c in rows)

    def test_precision_drop_beyond_tolerance_regresses(self):
        fresh = _document(
            {
                **WORKLOAD_PAYLOAD,
                "cumulative": {
                    **WORKLOAD_PAYLOAD["cumulative"],
                    "precision": {"mean": 0.6},
                },
            }
        )
        rows = compare_documents(_document(WORKLOAD_PAYLOAD), fresh, tolerance=0.25)
        assert {c.metric for c in rows if c.regressed} == {"precision.mean"}

    def test_improvements_never_regress(self):
        fresh = _document(
            {
                **WORKLOAD_PAYLOAD,
                "totals": {**WORKLOAD_PAYLOAD["totals"], "bytes": 100},
                "cumulative": {
                    "precision": {"mean": 1.0},
                    "goodput": {"minimum": 1.0},
                    "latency_s": {"p90": 0.01},
                },
            }
        )
        rows = compare_documents(_document(WORKLOAD_PAYLOAD), fresh)
        assert not any(c.regressed for c in rows)

    def test_missing_metric_in_fresh_payload_regresses(self):
        fresh = _document({"something": 1})
        rows = compare_documents(_document(WIRE_PAYLOAD), fresh)
        assert rows and all(c.regressed for c in rows)
        assert all(c.fresh is None for c in rows)

    def test_zero_baseline_lower_is_better_only_passes_at_zero(self):
        baseline = _document({"batch_bytes": 0})
        assert not any(
            c.regressed for c in compare_documents(baseline, _document({"batch_bytes": 0}))
        )
        assert any(
            c.regressed for c in compare_documents(baseline, _document({"batch_bytes": 5}))
        )

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_documents(_document({}), _document({}), tolerance=-0.1)


class TestCompareDirectories:
    def _write(self, directory, name, payload):
        return write_bench_json(directory, name, payload)

    def test_clean_rerun_passes_and_cli_exits_zero(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "base", tmp_path / "fresh"
        for directory in (baseline, fresh):
            self._write(directory, "wire_codec", WIRE_PAYLOAD)
            self._write(directory, "workload_steady", WORKLOAD_PAYLOAD)
        rows, notices = compare_directories(baseline, fresh)
        assert rows and not any(c.regressed for c in rows)
        assert notices == []
        exit_code = main(["--baseline-dir", str(baseline), "--fresh-dir", str(fresh)])
        assert exit_code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regressed_rerun_fails_the_gate(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "base", tmp_path / "fresh"
        self._write(baseline, "wire_codec", WIRE_PAYLOAD)
        self._write(fresh, "wire_codec", {**WIRE_PAYLOAD, "batch_bytes": 2000})
        exit_code = main(["--baseline-dir", str(baseline), "--fresh-dir", str(fresh)])
        assert exit_code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_vanished_benchmark_fails_the_gate(self, tmp_path):
        baseline, fresh = tmp_path / "base", tmp_path / "fresh"
        self._write(baseline, "wire_codec", WIRE_PAYLOAD)
        fresh.mkdir()
        rows, _notices = compare_directories(baseline, fresh)
        assert any(c.regressed and "not produced" in c.note for c in rows)

    def test_new_benchmark_without_baseline_is_a_notice_not_a_failure(self, tmp_path):
        baseline, fresh = tmp_path / "base", tmp_path / "fresh"
        self._write(baseline, "wire_codec", WIRE_PAYLOAD)
        self._write(fresh, "wire_codec", WIRE_PAYLOAD)
        self._write(fresh, "brand_new", WIRE_PAYLOAD)
        rows, notices = compare_directories(baseline, fresh)
        assert not any(c.regressed for c in rows)
        assert any("brand_new" in notice for notice in notices)

    def test_empty_baseline_directory_is_an_error(self, tmp_path):
        (tmp_path / "base").mkdir()
        with pytest.raises(FileNotFoundError):
            compare_directories(tmp_path / "base", tmp_path / "fresh")
