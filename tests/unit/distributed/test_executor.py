"""Unit tests for the sharded station executor."""

import pickle

import pytest

from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.distributed.executor import (
    ShardedStationRunner,
    merge_shard_outcomes,
    partition_round_robin,
)


class TestPartitioning:
    def test_round_robin_covers_every_index_once(self):
        shards = partition_round_robin(10, 3)
        flat = sorted(index for shard in shards for index in shard)
        assert flat == list(range(10))

    def test_round_robin_balances_sizes(self):
        shards = partition_round_robin(10, 3)
        sizes = sorted(len(shard) for shard in shards)
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_items_drops_empty_shards(self):
        shards = partition_round_robin(2, 5)
        assert len(shards) == 2
        assert all(shard for shard in shards)

    def test_order_preserved_within_shard(self):
        for shard in partition_round_robin(12, 4):
            assert shard == sorted(shard)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            partition_round_robin(3, 0)


class TestRunnerConfiguration:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            ShardedStationRunner(executor="gpu")

    def test_rejects_negative_shard_count(self):
        with pytest.raises(ValueError):
            ShardedStationRunner(shard_count=-1)

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            ShardedStationRunner(max_workers=0)

    def test_serial_auto_shards_one_per_station(self):
        runner = ShardedStationRunner(executor="serial")
        assert runner.resolve_shard_count(7) == 7

    def test_pool_auto_shards_one_per_worker(self):
        runner = ShardedStationRunner(executor="thread", max_workers=3)
        assert runner.resolve_shard_count(10) == 3
        assert runner.resolve_shard_count(2) == 2

    def test_explicit_shard_count_capped_by_stations(self):
        runner = ShardedStationRunner(executor="serial", shard_count=16)
        assert runner.resolve_shard_count(5) == 5

    def test_zero_stations_zero_shards(self):
        assert ShardedStationRunner().resolve_shard_count(0) == 0


class TestRunnerExecution:
    def _simulation(self, small_dataset):
        from repro.distributed.simulator import DistributedSimulation

        return DistributedSimulation(small_dataset)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_outcomes_cover_every_station(self, small_dataset, exact_config, executor, small_workload):
        simulation = self._simulation(small_dataset)
        protocol = DIMatchingProtocol(exact_config)
        artifact = protocol.encode(list(small_workload.queries))
        runner = ShardedStationRunner(executor=executor, max_workers=2)
        outcomes = runner.run(protocol, simulation.stations, artifact)
        merged = merge_shard_outcomes(outcomes)
        assert sorted(merged) == sorted(s.node_id for s in simulation.stations)
        assert all(outcome.elapsed_s >= 0 for outcome in outcomes)

    def test_empty_station_list(self, exact_config):
        runner = ShardedStationRunner()
        assert runner.run(DIMatchingProtocol(exact_config), [], None) == []


class TestProcessExecutorPicklability:
    def test_protocol_round_trips_without_matcher_cache(self, small_dataset, small_workload, exact_config):
        protocol = DIMatchingProtocol(exact_config)
        artifact = protocol.encode(list(small_workload.queries))
        # Warm the matcher cache, then pickle: the cache must not travel.
        station = None
        from repro.distributed.simulator import DistributedSimulation

        simulation = DistributedSimulation(small_dataset)
        station = simulation.stations[0]
        before = station.run_matching(protocol, artifact)
        clone = pickle.loads(pickle.dumps(protocol))
        assert clone._matchers._matchers == {}
        after = clone.station_match(station.node_id, station.patterns, artifact)
        assert after == before

    def test_config_executor_validation(self):
        with pytest.raises(Exception):
            DIMatchingConfig(executor="bogus")
        with pytest.raises(Exception):
            DIMatchingConfig(shard_count=-2)
        assert DIMatchingConfig(executor="process", shard_count=3).shard_count == 3


class TestSharedArtifactHandoff:
    """Shared-memory artifact transfer for the process executor."""

    def _artifact(self, small_workload, exact_config):
        protocol = DIMatchingProtocol(exact_config)
        return protocol, protocol.encode(list(small_workload.queries))

    def test_export_and_load_round_trip(self, small_workload, exact_config):
        import repro.distributed.executor as executor_module
        from repro.distributed.executor import (
            export_shared_artifact,
            _load_shared_artifact,
        )

        from repro import wire

        _, artifact = self._artifact(small_workload, exact_config)
        exported = export_shared_artifact(artifact)
        assert exported is not None
        token, segment = exported
        try:
            executor_module._shared_artifact_cache = None
            loaded = _load_shared_artifact(token)
            # The worker decodes with the token's resolved bit backend, so
            # compare against the same decode of the canonical bytes (the
            # config's "auto" backend is pinned to its resolution either way).
            assert loaded == wire.decode(wire.encode_cached(artifact), backend=token.backend)
            # A second load with the same content key is served from cache
            # even after the segment is gone (cross-round reuse).
            assert _load_shared_artifact(token) is loaded
        finally:
            executor_module._shared_artifact_cache = None
            segment.close()
            segment.unlink()

    def test_corrupted_segment_is_rejected(self, small_workload, exact_config):
        import dataclasses

        import repro.distributed.executor as executor_module
        from repro.distributed.executor import (
            export_shared_artifact,
            _load_shared_artifact,
        )

        _, artifact = self._artifact(small_workload, exact_config)
        token, segment = export_shared_artifact(artifact)
        try:
            executor_module._shared_artifact_cache = None
            bad_token = dataclasses.replace(token, crc=token.crc ^ 0xFFFF)
            with pytest.raises(ValueError, match="checksum"):
                _load_shared_artifact(bad_token)
        finally:
            executor_module._shared_artifact_cache = None
            segment.close()
            segment.unlink()

    def test_unencodable_artifact_falls_back_to_pickling(self):
        from repro.distributed.executor import export_shared_artifact

        assert export_shared_artifact(object()) is None

    def test_process_round_matches_serial(self, small_dataset, small_workload, exact_config):
        from repro.distributed.simulator import DistributedSimulation

        protocol = DIMatchingProtocol(exact_config)
        artifact = protocol.encode(list(small_workload.queries))
        simulation = DistributedSimulation(small_dataset)
        serial = merge_shard_outcomes(
            ShardedStationRunner(executor="serial").run(
                protocol, simulation.stations, artifact
            )
        )
        with ShardedStationRunner(executor="process", max_workers=2) as runner:
            shared = merge_shard_outcomes(
                runner.run(protocol, simulation.stations, artifact)
            )
        assert shared == serial
