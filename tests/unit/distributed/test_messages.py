"""Unit tests for the message layer."""

from repro.distributed.messages import Message, MessageKind
from repro.timeseries.pattern import LocalPattern
from repro.utils.serialization import MESSAGE_OVERHEAD_BYTES


class TestMessage:
    def test_size_includes_overhead(self):
        message = Message("a", "b", MessageKind.CONTROL, payload=None)
        assert message.size_bytes() == MESSAGE_OVERHEAD_BYTES

    def test_payload_bytes_for_pattern_payload(self):
        pattern = LocalPattern("u", [1, 2, 3], "bs")
        message = Message("bs", "center", MessageKind.MATCH_REPORT, payload=[pattern])
        assert message.payload_bytes() == pattern.size_bytes()
        assert message.size_bytes() == pattern.size_bytes() + MESSAGE_OVERHEAD_BYTES

    def test_kinds_are_distinct(self):
        assert MessageKind.FILTER_DISSEMINATION != MessageKind.MATCH_REPORT

    def test_repr_mentions_route(self):
        message = Message("a", "b", MessageKind.CONTROL)
        assert "'a'" in repr(message) and "'b'" in repr(message)
