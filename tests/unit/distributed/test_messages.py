"""Unit tests for the message layer."""

import pytest

from repro import wire
from repro.distributed.messages import Message, MessageKind
from repro.timeseries.pattern import LocalPattern
from repro.utils.serialization import MESSAGE_OVERHEAD_BYTES


class TestMessage:
    def test_size_is_real_encoded_length(self):
        message = Message("a", "b", MessageKind.CONTROL, payload=None)
        assert message.size_bytes() == len(wire.encode(message))
        assert message.size_bytes() == len(message.to_wire())

    def test_arithmetic_envelope_size_matches_encoding_exactly(self):
        # size_bytes() computes the envelope arithmetically (no per-message
        # envelope bytes materialized); it must stay in lockstep with the real
        # encoder for every payload shape and multi-byte-varint field length.
        payloads = [
            None,
            [LocalPattern("user-x", list(range(40)), "bs-long-name")],
            [LocalPattern(f"u{i}", [i], "bs") for i in range(40)],
        ]
        for payload in payloads:
            message = Message("sender-" + "s" * 130, "r", MessageKind.MATCH_REPORT, payload)
            assert message.size_bytes() == len(wire.encode(message))

    def test_estimated_size_keeps_legacy_overhead_model(self):
        message = Message("a", "b", MessageKind.CONTROL, payload=None)
        assert message.estimated_size_bytes() == MESSAGE_OVERHEAD_BYTES
        pattern = LocalPattern("u", [1, 2, 3], "bs")
        report = Message("bs", "center", MessageKind.MATCH_REPORT, payload=[pattern])
        assert (
            report.estimated_size_bytes()
            == MESSAGE_OVERHEAD_BYTES + pattern.size_bytes()
        )

    def test_payload_bytes_for_pattern_payload(self):
        pattern = LocalPattern("u", [1, 2, 3], "bs")
        message = Message("bs", "center", MessageKind.MATCH_REPORT, payload=[pattern])
        assert message.payload_bytes() == len(wire.encode([pattern]))
        # The envelope adds routing fields on top of the payload block.
        assert message.size_bytes() > message.payload_bytes()

    def test_wire_round_trip(self):
        pattern = LocalPattern("u", [1, 2, 3], "bs")
        message = Message("bs", "center", MessageKind.MATCH_REPORT, payload=[pattern])
        assert Message.from_wire(message.to_wire()) == message

    def test_from_wire_rejects_non_message_buffers(self):
        with pytest.raises(wire.WireFormatError):
            Message.from_wire(wire.encode([LocalPattern("u", [1], "bs")]))

    def test_unencodable_payload_falls_back_to_estimate(self):
        class Opaque:
            def size_bytes(self) -> int:
                return 123

        message = Message("a", "b", MessageKind.CONTROL, payload=Opaque())
        assert message.payload_bytes() == 123
        assert message.size_bytes() == MESSAGE_OVERHEAD_BYTES + 123

    def test_kinds_are_distinct(self):
        assert MessageKind.FILTER_DISSEMINATION != MessageKind.MATCH_REPORT

    def test_repr_mentions_route(self):
        message = Message("a", "b", MessageKind.CONTROL)
        assert "'a'" in repr(message) and "'b'" in repr(message)


class TestEstimateFallbackAccounting:
    """Falling back from codec bytes to the estimate model is counted + warned."""

    @pytest.fixture(autouse=True)
    def fresh_counter(self):
        import repro.distributed.messages as messages_module

        messages_module.reset_estimated_size_fallbacks()
        warned = messages_module._fallback_warned
        yield
        messages_module.reset_estimated_size_fallbacks()
        messages_module._fallback_warned = warned

    def _opaque_message(self) -> Message:
        class Opaque:
            def size_bytes(self) -> int:
                return 123

        return Message("a", "b", MessageKind.CONTROL, payload=Opaque())

    def test_encodable_payloads_never_count_as_fallbacks(self):
        from repro.distributed.messages import estimated_size_fallbacks

        message = Message(
            "bs", "center", MessageKind.MATCH_REPORT,
            payload=[LocalPattern("u", [1, 2, 3], "bs")],
        )
        message.size_bytes()
        message.payload_bytes()
        assert estimated_size_fallbacks() == 0

    def test_each_fallback_increments_the_counter(self):
        import repro.distributed.messages as messages_module
        from repro.distributed.messages import estimated_size_fallbacks

        messages_module._fallback_warned = True  # silence; warning tested below
        message = self._opaque_message()
        assert message.size_bytes() == MESSAGE_OVERHEAD_BYTES + 123
        assert estimated_size_fallbacks() == 1
        message.payload_bytes()
        assert estimated_size_fallbacks() == 2

    def test_reset_returns_and_zeroes_the_count(self):
        import repro.distributed.messages as messages_module
        from repro.distributed.messages import (
            estimated_size_fallbacks,
            reset_estimated_size_fallbacks,
        )

        messages_module._fallback_warned = True
        self._opaque_message().size_bytes()
        assert reset_estimated_size_fallbacks() == 1
        assert estimated_size_fallbacks() == 0

    def test_first_fallback_warns_once_per_process(self):
        import warnings

        import repro.distributed.messages as messages_module

        messages_module._fallback_warned = False
        message = self._opaque_message()
        with pytest.warns(RuntimeWarning, match="estimate model.*Opaque"):
            message.size_bytes()
        # Subsequent fallbacks stay silent — the counter carries the tally.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            message.payload_bytes()
