"""Unit tests for cost reporting."""

import pytest

from repro.distributed.metrics import CostReport


def _report(method="wbf", **overrides):
    defaults = dict(
        downlink_bytes=100,
        uplink_bytes=50,
        message_count=5,
        storage_center_bytes=80,
        storage_station_bytes=20,
        encode_time_s=0.1,
        station_time_s=0.2,
        aggregate_time_s=0.05,
        transmission_time_s=0.3,
        report_count=7,
    )
    defaults.update(overrides)
    return CostReport(method=method, **defaults)


class TestCostReport:
    def test_communication_bytes(self):
        assert _report().communication_bytes == 150

    def test_storage_bytes(self):
        assert _report().storage_bytes == 100

    def test_computation_time(self):
        assert _report().computation_time_s == pytest.approx(0.35)

    def test_total_time(self):
        assert _report().total_time_s == pytest.approx(0.65)

    def test_relative_to_baseline(self):
        wbf = _report()
        naive = _report(
            method="naive", downlink_bytes=0, uplink_bytes=1500, storage_center_bytes=900,
            storage_station_bytes=100,
        )
        relative = wbf.relative_to(naive)
        assert relative["communication"] == pytest.approx(150 / 1500)
        assert relative["storage"] == pytest.approx(100 / 1000)
        assert relative["time"] > 0

    def test_relative_to_zero_baseline(self):
        zero = CostReport(method="empty")
        assert _report().relative_to(zero)["communication"] == 0.0

    def test_defaults_are_zero(self):
        empty = CostReport(method="x")
        assert empty.communication_bytes == 0
        assert empty.total_time_s == 0.0
