"""Unit tests for the deterministic event-driven network."""

import pytest

from repro.distributed.events import RoundTimeoutError
from repro.distributed.faults import FaultPlan
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import NetworkConfig, SimulatedNetwork
from repro.distributed.node import Node


def _message(payload=None, sender="a", recipient="b"):
    return Message(sender, recipient, MessageKind.CONTROL, payload=payload)


class TestNetworkConfig:
    def test_transfer_time_includes_latency_and_bandwidth(self):
        config = NetworkConfig(bandwidth_bytes_per_s=1000, latency_s=0.5)
        assert config.transfer_time_s(1000) == pytest.approx(1.5)

    def test_zero_bytes_costs_latency_only(self):
        config = NetworkConfig(latency_s=0.25)
        assert config.transfer_time_s(0) == pytest.approx(0.25)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            NetworkConfig(latency_s=-1)
        with pytest.raises(ValueError):
            NetworkConfig(max_attempts=0)
        with pytest.raises(ValueError):
            NetworkConfig(retransmit_timeout_s=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig().transfer_time_s(-1)


class TestSimulatedNetwork:
    def test_byte_accounting(self):
        network = SimulatedNetwork(NetworkConfig())
        network.send_downlink(_message(payload=[1, 2, 3]))
        network.send_uplink(_message(payload="abcd"))
        assert network.downlink_bytes > 0
        assert network.uplink_bytes > 0
        assert network.message_count == 2
        assert len(network.message_log) == 2

    def test_downlink_is_parallel_uplink_is_serial(self):
        config = NetworkConfig(bandwidth_bytes_per_s=1_000_000, latency_s=1.0)
        network = SimulatedNetwork(config)
        network.broadcast([(_message(recipient=f"bs-{i}"), None) for i in range(3)])
        network.gather([(_message(sender=f"bs-{i}"), None) for i in range(3)])
        # Downlink contributes max (1 s), uplink contributes the sum (3 s).
        assert network.transmission_time_s() == pytest.approx(4.0, rel=0.01)

    def test_transmission_time_empty(self):
        assert SimulatedNetwork().transmission_time_s() == 0.0

    def test_reset(self):
        network = SimulatedNetwork()
        network.send_uplink(_message())
        network.reset()
        assert network.message_count == 0
        assert network.uplink_bytes == 0
        assert network.transmission_time_s() == 0.0
        assert network.transcript == ()
        assert network.frame_stats().frames_sent == 0

    def test_send_returns_transfer_time(self):
        network = SimulatedNetwork(NetworkConfig(latency_s=0.1))
        assert network.send_downlink(_message()) >= 0.1

    def test_message_log_is_a_cheap_view_not_a_copy(self):
        network = SimulatedNetwork()
        network.send_uplink(_message())
        view_a = network.message_log
        view_b = network.message_log
        # The hot-loop fix: property access hands out the same O(1) view.
        assert view_a is view_b
        assert len(view_a) == 1
        network.send_uplink(_message())
        # The view is live ...
        assert len(view_a) == 2
        # ... while the explicit copy is a stable snapshot.
        snapshot = network.copy_message_log()
        network.send_uplink(_message())
        assert len(snapshot) == 2
        assert len(view_a) == 3
        assert list(snapshot) == list(network.message_log)[:2]

    def test_delivery_decodes_real_wire_bytes_into_the_receiver(self):
        center = Node("center")
        message = Message("bs-1", "center", MessageKind.MATCH_REPORT, payload=[1, 2, 3])
        network = SimulatedNetwork()
        outcome = network.gather([(message, center)])
        assert outcome.delivered_ids == ("bs-1",)
        assert len(center.inbox) == 1
        decoded = center.inbox[0]
        # The inbox holds the *decoded* message: equal, but a distinct object
        # that actually crossed the codec.
        assert decoded == message
        assert decoded is not message

    def test_opaque_payload_falls_back_to_object_delivery(self):
        center = Node("center")
        # Dicts are outside the wire vocabulary but inside the estimate model.
        message = Message("bs-1", "center", MessageKind.MATCH_REPORT, payload={"a": 1})
        network = SimulatedNetwork()
        outcome = network.gather([(message, center)])
        assert outcome.delivered_ids == ("bs-1",)
        assert center.inbox[0] is message
        assert network.uplink_bytes == message.estimated_size_bytes()


class TestReliability:
    def test_dropped_frames_are_retransmitted_until_delivered(self):
        plan = FaultPlan(drop_probability=0.5)
        center = Node("center")
        sends = [
            (Message(f"bs-{i}", "center", MessageKind.MATCH_REPORT, [i]), center)
            for i in range(8)
        ]
        network = SimulatedNetwork(NetworkConfig(), fault_plan=plan, seed=1)
        outcome = network.gather(sends)
        stats = network.frame_stats()
        # Half the frames drop on average, yet every message arrives.
        assert len(center.inbox) == 8
        assert outcome.failed_ids == ()
        assert stats.frames_dropped > 0
        assert stats.retransmit_count >= stats.frames_dropped
        assert stats.goodput_fraction < 1.0

    def test_exhausted_attempts_raise_typed_error(self):
        plan = FaultPlan(drop_probability=1.0)
        network = SimulatedNetwork(
            NetworkConfig(max_attempts=3), fault_plan=plan, seed=0
        )
        with pytest.raises(RoundTimeoutError) as excinfo:
            network.send_uplink(_message(sender="bs-1", recipient="center"))
        assert excinfo.value.failed_transfers == ("bs-1->center",)
        assert network.frame_stats().timeout_count == 1
        assert network.frame_stats().frames_sent == 3

    def test_allow_partial_reports_failed_ids_instead_of_raising(self):
        plan = FaultPlan(drop_probability=1.0)
        network = SimulatedNetwork(
            NetworkConfig(max_attempts=2), fault_plan=plan, seed=0, allow_partial=True
        )
        outcome = network.gather(
            [(_message(sender="bs-1", recipient="center"), None)]
        )
        assert outcome.delivered_ids == ()
        assert outcome.failed_ids == ("bs-1",)

    def test_corrupt_frames_never_reach_the_inbox(self):
        plan = FaultPlan(corrupt_probability=1.0)
        center = Node("center")
        message = Message("bs-1", "center", MessageKind.MATCH_REPORT, payload=[7])
        network = SimulatedNetwork(
            NetworkConfig(max_attempts=4), fault_plan=plan, seed=5, allow_partial=True
        )
        network.gather([(message, center)])
        stats = network.frame_stats()
        assert center.inbox == []
        assert stats.frames_corrupt == 4
        assert stats.frames_corrupt == (
            stats.corrupt_caught_by_codec + stats.corrupt_caught_by_checksum
        )

    def test_duplicates_are_suppressed_exactly_once_semantics(self):
        plan = FaultPlan(duplicate_probability=1.0)
        center = Node("center")
        sends = [
            (Message(f"bs-{i}", "center", MessageKind.MATCH_REPORT, [i]), center)
            for i in range(4)
        ]
        network = SimulatedNetwork(NetworkConfig(), fault_plan=plan, seed=1)
        network.gather(sends)
        stats = network.frame_stats()
        assert len(center.inbox) == 4
        assert stats.frames_duplicate == 4
        # The duplicate emissions were charged on the wire.
        assert stats.payload_bytes_sent == 2 * stats.payload_bytes_delivered

    def test_straggler_multiplier_slows_the_link(self):
        fast = SimulatedNetwork(NetworkConfig())
        slow = SimulatedNetwork(
            NetworkConfig(),
            fault_plan=FaultPlan(
                straggler_probability=1.0, straggler_multiplier=16.0
            ),
        )
        message = _message(payload=list(range(100)))
        assert slow.send_downlink(message) > 4 * fast.send_downlink(message)

    def test_transcript_records_phase_send_deliver(self):
        network = SimulatedNetwork()
        network.send_downlink(_message())
        events = [entry.event for entry in network.transcript]
        assert events == ["phase", "send", "deliver"]
        assert network.transcript_bytes().count(b"\n") == 2
