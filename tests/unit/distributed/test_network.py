"""Unit tests for the simulated network."""

import pytest

from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import NetworkConfig, SimulatedNetwork


def _message(payload=None):
    return Message("a", "b", MessageKind.CONTROL, payload=payload)


class TestNetworkConfig:
    def test_transfer_time_includes_latency_and_bandwidth(self):
        config = NetworkConfig(bandwidth_bytes_per_s=1000, latency_s=0.5)
        assert config.transfer_time_s(1000) == pytest.approx(1.5)

    def test_zero_bytes_costs_latency_only(self):
        config = NetworkConfig(latency_s=0.25)
        assert config.transfer_time_s(0) == pytest.approx(0.25)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NetworkConfig(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            NetworkConfig(latency_s=-1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig().transfer_time_s(-1)


class TestSimulatedNetwork:
    def test_byte_accounting(self):
        network = SimulatedNetwork(NetworkConfig())
        network.send_downlink(_message(payload=[1, 2, 3]))
        network.send_uplink(_message(payload="abcd"))
        assert network.downlink_bytes > 0
        assert network.uplink_bytes > 0
        assert network.message_count == 2
        assert len(network.message_log) == 2

    def test_downlink_is_parallel_uplink_is_serial(self):
        config = NetworkConfig(bandwidth_bytes_per_s=1_000_000, latency_s=1.0)
        network = SimulatedNetwork(config)
        for _ in range(3):
            network.send_downlink(_message())
        for _ in range(3):
            network.send_uplink(_message())
        # Downlink contributes max (1 s), uplink contributes the sum (3 s).
        assert network.transmission_time_s() == pytest.approx(4.0, rel=0.01)

    def test_transmission_time_empty(self):
        assert SimulatedNetwork().transmission_time_s() == 0.0

    def test_reset(self):
        network = SimulatedNetwork()
        network.send_uplink(_message())
        network.reset()
        assert network.message_count == 0
        assert network.uplink_bytes == 0
        assert network.transmission_time_s() == 0.0

    def test_send_returns_transfer_time(self):
        network = SimulatedNetwork(NetworkConfig(latency_s=0.1))
        assert network.send_downlink(_message()) >= 0.1
