"""Unit tests for the distributed simulation driver."""

import pytest

from repro.baselines.bf_matching import BloomFilterProtocol
from repro.baselines.naive import NaiveProtocol
from repro.core.dimatching import DIMatchingProtocol
from repro.distributed.network import NetworkConfig
from repro.distributed.simulator import DistributedSimulation, SimulationOutcome


class TestDistributedSimulation:
    def test_builds_station_nodes_for_non_empty_stations(self, small_dataset):
        simulation = DistributedSimulation(small_dataset)
        assert 0 < len(simulation.stations) <= small_dataset.station_count
        assert simulation.dataset is small_dataset

    def test_wbf_run_produces_outcome_with_costs(self, small_dataset, small_workload, exact_config):
        simulation = DistributedSimulation(small_dataset)
        outcome = simulation.run(
            DIMatchingProtocol(exact_config), list(small_workload.queries), k=None
        )
        assert isinstance(outcome, SimulationOutcome)
        assert outcome.method == "wbf"
        assert outcome.costs.downlink_bytes > 0
        assert outcome.costs.uplink_bytes > 0
        assert outcome.costs.message_count >= 2 * len(simulation.stations)
        assert outcome.costs.total_time_s > 0
        assert outcome.costs.report_count >= len(outcome.results)

    def test_naive_run_has_no_filter_downlink(self, small_dataset, small_workload):
        simulation = DistributedSimulation(small_dataset)
        outcome = simulation.run(NaiveProtocol(epsilon=0), list(small_workload.queries), k=None)
        # Naive downlink is only the per-station control trigger.
        per_station_overhead = outcome.costs.downlink_bytes / len(simulation.stations)
        assert per_station_overhead < 100

    def test_naive_uplink_carries_whole_dataset(self, small_dataset, small_workload):
        from repro import wire

        simulation = DistributedSimulation(small_dataset)
        outcome = simulation.run(NaiveProtocol(epsilon=0), list(small_workload.queries), k=None)
        # Every stored local pattern crosses the uplink, charged at its real
        # encoded size (varint-packed, so smaller than the estimate model).
        encoded_dataset_bytes = sum(
            len(wire.encode(list(simulation.dataset.local_patterns_at(s.node_id))))
            for s in simulation.stations
        )
        assert outcome.costs.uplink_bytes >= encoded_dataset_bytes

    def test_wbf_uplink_much_smaller_than_naive(self, small_dataset, small_workload, exact_config):
        simulation = DistributedSimulation(small_dataset)
        naive = simulation.run(NaiveProtocol(epsilon=0), list(small_workload.queries), k=None)
        wbf = simulation.run(DIMatchingProtocol(exact_config), list(small_workload.queries), k=None)
        assert wbf.costs.uplink_bytes < naive.costs.uplink_bytes / 2

    def test_bf_run(self, small_dataset, small_workload, exact_config):
        simulation = DistributedSimulation(small_dataset)
        outcome = simulation.run(
            BloomFilterProtocol(exact_config), list(small_workload.queries), k=None
        )
        assert outcome.method == "bf"
        assert outcome.retrieved_user_ids

    def test_network_config_scales_transmission_time(self, small_dataset, small_workload):
        slow = DistributedSimulation(
            small_dataset, NetworkConfig(bandwidth_bytes_per_s=10_000, latency_s=0.0)
        )
        fast = DistributedSimulation(
            small_dataset, NetworkConfig(bandwidth_bytes_per_s=10_000_000, latency_s=0.0)
        )
        queries = list(small_workload.queries)
        slow_outcome = slow.run(NaiveProtocol(epsilon=0), queries, k=None)
        fast_outcome = fast.run(NaiveProtocol(epsilon=0), queries, k=None)
        assert (
            slow_outcome.costs.transmission_time_s
            > 10 * fast_outcome.costs.transmission_time_s
        )

    def test_k_cutoff_respected(self, small_dataset, small_workload, exact_config):
        simulation = DistributedSimulation(small_dataset)
        outcome = simulation.run(
            DIMatchingProtocol(exact_config), list(small_workload.queries), k=3
        )
        assert len(outcome.results) <= 3

    def test_storage_accounting_present(self, small_dataset, small_workload, exact_config):
        simulation = DistributedSimulation(small_dataset)
        outcome = simulation.run(
            DIMatchingProtocol(exact_config), list(small_workload.queries), k=None
        )
        assert outcome.costs.storage_center_bytes > 0
        assert outcome.costs.storage_station_bytes > 0


class TestPerRoundOverrides:
    """Multi-round driving: per-round station subsets and transport seeds."""

    def test_station_subset_restricts_the_round(self, small_dataset, small_workload, exact_config):
        simulation = DistributedSimulation(small_dataset)
        queries = list(small_workload.queries)
        all_ids = [station.node_id for station in simulation.stations]
        subset = all_ids[:2]
        full = simulation.run(DIMatchingProtocol(exact_config), queries, k=None)
        partial = simulation.run(
            DIMatchingProtocol(exact_config), queries, k=None, station_ids=subset
        )
        assert partial.costs.downlink_bytes < full.costs.downlink_bytes
        senders = {entry.sender for entry in partial.transcript} | {
            entry.recipient for entry in partial.transcript
        }
        for excluded in set(all_ids) - set(subset):
            assert excluded not in senders

    def test_station_subset_equal_to_all_matches_default(
        self, small_dataset, small_workload, exact_config
    ):
        simulation = DistributedSimulation(small_dataset)
        queries = list(small_workload.queries)
        all_ids = [station.node_id for station in simulation.stations]
        default = simulation.run(DIMatchingProtocol(exact_config), queries, k=None)
        explicit = simulation.run(
            DIMatchingProtocol(exact_config), queries, k=None, station_ids=all_ids
        )
        assert default.transcript_bytes() == explicit.transcript_bytes()
        assert default.results == explicit.results

    def test_unknown_station_id_rejected(self, small_dataset, small_workload, exact_config):
        simulation = DistributedSimulation(small_dataset)
        with pytest.raises(ValueError, match="unknown station ids"):
            simulation.run(
                DIMatchingProtocol(exact_config),
                list(small_workload.queries),
                station_ids=["bs-on-the-moon"],
            )

    def test_per_round_net_seed_overrides_the_construction_seed(
        self, small_dataset, small_workload, exact_config
    ):
        simulation = DistributedSimulation(
            small_dataset, fault_plan="chaos", net_seed=0, allow_partial=True
        )
        queries = list(small_workload.queries)
        protocol = DIMatchingProtocol(exact_config)
        base = simulation.run(protocol, queries, k=None)
        replayed = simulation.run(protocol, queries, k=None, net_seed=0)
        reseeded = simulation.run(protocol, queries, k=None, net_seed=123)
        assert base.transcript_bytes() == replayed.transcript_bytes()
        assert reseeded.transcript_bytes() != base.transcript_bytes()
        assert reseeded.costs.net_seed == 123
