"""Unit tests for the seeded fault plans and the deterministic injector."""

import pytest

from repro.core.config import FAULT_PROFILE_CHOICES
from repro.distributed.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultPlan,
    resolve_fault_plan,
)


class TestFaultPlan:
    def test_defaults_are_fault_free(self):
        assert FaultPlan().is_fault_free

    def test_any_active_fault_clears_the_fault_free_flag(self):
        assert not FaultPlan(drop_probability=0.1).is_fault_free
        assert not FaultPlan(jitter_s=0.01).is_fault_free
        assert not FaultPlan(straggler_probability=0.5).is_fault_free
        assert not FaultPlan(blackout_probability=0.5, blackout_end_s=1.0).is_fault_free

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_probability=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(straggler_multiplier=0.5)
        with pytest.raises(ValueError):
            FaultPlan(blackout_start_s=2.0, blackout_end_s=1.0)
        with pytest.raises(ValueError):
            FaultPlan(jitter_s=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(name="")

    def test_with_updates(self):
        plan = FaultPlan(drop_probability=0.1).with_updates(drop_probability=0.2)
        assert plan.drop_probability == 0.2


class TestProfiles:
    def test_registry_matches_core_choices(self):
        assert set(FAULT_PROFILES) == set(FAULT_PROFILE_CHOICES)

    def test_resolve_by_name_plan_and_none(self):
        assert resolve_fault_plan("lossy") is FAULT_PROFILES["lossy"]
        assert resolve_fault_plan(None).is_fault_free
        plan = FaultPlan(drop_probability=0.3)
        assert resolve_fault_plan(plan) is plan

    def test_resolve_rejects_unknown_names_and_types(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            resolve_fault_plan("catastrophic")
        with pytest.raises(TypeError):
            resolve_fault_plan(3.14)


class TestFaultInjector:
    def test_decisions_are_pure_functions_of_seed_frame_attempt(self):
        plan = FAULT_PROFILES["chaos"]
        first = FaultInjector(plan, seed=42)
        second = FaultInjector(plan, seed=42)
        # Query in different orders: decisions must not depend on call order.
        forward = [first.frame_faults(frame, 1) for frame in range(20)]
        backward = [second.frame_faults(frame, 1) for frame in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        plan = FAULT_PROFILES["chaos"]
        a = [FaultInjector(plan, seed=1).frame_faults(f, 1) for f in range(30)]
        b = [FaultInjector(plan, seed=2).frame_faults(f, 1) for f in range(30)]
        assert a != b

    def test_attempts_reroll_faults(self):
        plan = FaultPlan(drop_probability=0.5)
        injector = FaultInjector(plan, seed=7)
        decisions = {injector.frame_faults(3, attempt).drop for attempt in range(1, 30)}
        assert decisions == {True, False}

    def test_fault_free_plan_short_circuits(self):
        faults = FaultInjector(FaultPlan(), seed=9).frame_faults(0, 1)
        assert not (faults.drop or faults.duplicate or faults.corrupt)
        assert faults.reorder_delay_s == 0.0
        assert faults.jitter_s == 0.0

    def test_station_decisions_are_stable_per_round(self):
        plan = FaultPlan(straggler_probability=0.5, straggler_multiplier=4.0)
        injector = FaultInjector(plan, seed=11)
        multipliers = {
            station: injector.straggler_multiplier(station)
            for station in ("bs-0", "bs-1", "bs-2", "bs-3", "bs-4", "bs-5")
        }
        # Repeated queries agree (per-round stability) ...
        for station, multiplier in multipliers.items():
            assert injector.straggler_multiplier(station) == multiplier
        # ... and with p=0.5 over six stations both outcomes appear.
        assert set(multipliers.values()) == {1.0, 4.0}

    def test_blackout_window_applies_per_station(self):
        plan = FaultPlan(
            blackout_probability=0.5, blackout_start_s=1.0, blackout_end_s=2.0
        )
        injector = FaultInjector(plan, seed=13)
        windows = {
            station: injector.blackout_window(station)
            for station in ("bs-0", "bs-1", "bs-2", "bs-3", "bs-4", "bs-5")
        }
        assert set(windows.values()) == {None, (1.0, 2.0)}

    def test_corrupt_bytes_always_changes_and_is_deterministic(self):
        injector = FaultInjector(FaultPlan(corrupt_probability=1.0), seed=3)
        data = bytes(range(50))
        corrupted = injector.corrupt_bytes(data, 7, 1)
        assert corrupted != data
        assert corrupted == injector.corrupt_bytes(data, 7, 1)
        assert injector.corrupt_bytes(b"", 7, 1) == b"\x00"

    def test_seed_must_be_an_integer(self):
        with pytest.raises(TypeError):
            FaultInjector(FaultPlan(), seed="zero")
