"""Unit tests for the node classes."""

import pytest

from repro.baselines.naive import NaiveProtocol
from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.distributed.basestation import BaseStationNode
from repro.distributed.datacenter import DATA_CENTER_NODE_ID, DataCenterNode
from repro.distributed.messages import Message, MessageKind
from repro.distributed.node import Node
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern


def _query():
    return QueryPattern("q", [LocalPattern("alice", [1, 2, 3, 4], "bs-1")])


class TestNode:
    def test_receive_appends_to_inbox(self):
        node = Node("n1")
        message = Message("other", "n1", MessageKind.CONTROL)
        node.receive(message)
        assert node.inbox == [message]

    def test_receive_rejects_misaddressed_message(self):
        node = Node("n1")
        with pytest.raises(ValueError, match="addressed"):
            node.receive(Message("other", "n2", MessageKind.CONTROL))

    def test_clear_inbox(self):
        node = Node("n1")
        node.receive(Message("x", "n1", MessageKind.CONTROL))
        node.clear_inbox()
        assert node.inbox == []

    def test_repr(self):
        assert "n1" in repr(Node("n1"))


class TestBaseStationNode:
    def test_holds_patterns(self):
        patterns = PatternSet([LocalPattern("u", [1, 2, 3, 4], "bs-1")])
        station = BaseStationNode("bs-1", patterns)
        assert station.stored_pattern_count == 1
        assert station.raw_storage_bytes() == patterns.size_bytes()

    def test_rejects_non_pattern_set(self):
        with pytest.raises(TypeError):
            BaseStationNode("bs-1", [LocalPattern("u", [1], "bs-1")])

    def test_run_matching_with_wbf_protocol(self):
        protocol = DIMatchingProtocol(DIMatchingConfig(sample_count=4))
        artifact = protocol.encode([_query()])
        patterns = PatternSet([LocalPattern("alice", [1, 2, 3, 4], "bs-1")])
        station = BaseStationNode("bs-1", patterns)
        reports = station.run_matching(protocol, artifact)
        assert [r.user_id for r in reports] == ["alice"]


class TestDataCenterNode:
    def test_default_id(self):
        assert DataCenterNode().node_id == DATA_CENTER_NODE_ID

    def test_encode_and_aggregate_delegate_to_protocol(self):
        center = DataCenterNode()
        protocol = NaiveProtocol(epsilon=0)
        artifact = center.encode(protocol, [_query()])
        assert artifact is None
        results = center.aggregate(
            protocol, [LocalPattern("alice", [1, 2, 3, 4], "bs-1")], k=None
        )
        assert results.user_ids() == ["alice"]

    def test_reports_grouped_by_sender_in_arrival_order(self):
        center = DataCenterNode()
        first = LocalPattern("alice", [1, 2, 3, 4], "bs-1")
        second = LocalPattern("bob", [5, 6, 7, 8], "bs-2")
        third = LocalPattern("carol", [1, 2, 3, 4], "bs-1")
        for sender, report in (("bs-1", first), ("bs-2", second), ("bs-1", third)):
            center.receive(
                Message(
                    sender, center.node_id, MessageKind.MATCH_REPORT, payload=[report]
                )
            )
        # Empty report lists still register the station as having reported.
        center.receive(
            Message("bs-3", center.node_id, MessageKind.MATCH_REPORT, payload=[])
        )
        # Non-report traffic is ignored entirely.
        center.receive(Message("bs-4", center.node_id, MessageKind.CONTROL))
        grouped = center.reports_by_sender()
        assert grouped == {"bs-1": [first, third], "bs-2": [second], "bs-3": []}

    def test_non_list_match_report_payload_raises(self):
        # A MATCH_REPORT whose payload is not a list is a protocol violation:
        # it must surface like transport corruption, never be coerced to "no
        # reports" (which would silently shrink the aggregation input).
        from repro.wire.errors import WireFormatError

        center = DataCenterNode()
        center.receive(
            Message(
                "bs-1",
                center.node_id,
                MessageKind.MATCH_REPORT,
                payload={"user": "alice"},
            )
        )
        with pytest.raises(WireFormatError, match="bs-1.*dict payload"):
            center.reports_by_sender()

    def test_none_match_report_payload_raises(self):
        from repro.wire.errors import WireFormatError

        center = DataCenterNode()
        center.receive(
            Message("bs-9", center.node_id, MessageKind.MATCH_REPORT, payload=None)
        )
        with pytest.raises(WireFormatError, match="NoneType"):
            center.reports_by_sender()
