"""Unit tests for the base-station matcher (Algorithm 2)."""

from fractions import Fraction

import pytest

from repro.core.config import DIMatchingConfig
from repro.core.encoder import PatternEncoder
from repro.core.exceptions import MatchingError
from repro.core.matcher import BaseStationMatcher
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern


def _query():
    locals_ = [
        LocalPattern("alice", [2, 0, 0, 3], "bs-1"),
        LocalPattern("alice", [0, 4, 0, 0], "bs-2"),
        LocalPattern("alice", [0, 0, 5, 0], "bs-3"),
    ]
    return QueryPattern("q0", locals_)


@pytest.fixture()
def encoded():
    return PatternEncoder(DIMatchingConfig(sample_count=4)).encode_batch([_query()])


@pytest.fixture()
def config():
    return DIMatchingConfig(sample_count=4)


class TestMatchPattern:
    def test_exact_fragment_matches_with_its_weight(self, encoded, config):
        fragment = LocalPattern("bob", [2, 0, 0, 3], "bs-9")
        matcher = BaseStationMatcher(config, "bs-9", PatternSet([fragment]))
        matched = matcher.match_pattern(fragment, encoded.wbf)
        assert matched == {"q0": frozenset({Fraction(5, 14)})}

    def test_global_pattern_matches_with_weight_one(self, encoded, config):
        fragment = LocalPattern("bob", [2, 4, 5, 3], "bs-9")
        matcher = BaseStationMatcher(config, "bs-9", PatternSet([fragment]))
        matched = matcher.match_pattern(fragment, encoded.wbf)
        assert matched == {"q0": frozenset({Fraction(1)})}

    def test_combined_fragment_matches_pair_combination(self, encoded, config):
        fragment = LocalPattern("bob", [2, 4, 0, 3], "bs-9")
        matcher = BaseStationMatcher(config, "bs-9", PatternSet([fragment]))
        matched = matcher.match_pattern(fragment, encoded.wbf)
        assert matched == {"q0": frozenset({Fraction(9, 14)})}

    def test_unrelated_pattern_does_not_match(self, encoded, config):
        fragment = LocalPattern("bob", [7, 7, 7, 7], "bs-9")
        matcher = BaseStationMatcher(config, "bs-9", PatternSet([fragment]))
        assert matcher.match_pattern(fragment, encoded.wbf) == {}

    def test_reordered_values_do_not_match(self, encoded, config):
        # {3,0,0,2} has the same values as the fragment {2,0,0,3} but a different
        # order; the accumulation transform distinguishes them.
        fragment = LocalPattern("bob", [3, 0, 0, 2], "bs-9")
        matcher = BaseStationMatcher(config, "bs-9", PatternSet([fragment]))
        assert matcher.match_pattern(fragment, encoded.wbf) == {}

    def test_epsilon_tolerance_accepts_close_pattern(self):
        config = DIMatchingConfig(sample_count=4, epsilon=1)
        encoded = PatternEncoder(config).encode_batch([_query()])
        fragment = LocalPattern("bob", [2, 0, 1, 3], "bs-9")
        matcher = BaseStationMatcher(config, "bs-9", PatternSet([fragment]))
        matched = matcher.match_pattern(fragment, encoded.wbf)
        assert "q0" in matched


class TestMatchAgainst:
    def test_reports_matching_users_with_weights(self, encoded, config):
        patterns = PatternSet(
            [
                LocalPattern("match-global", [2, 4, 5, 3], "bs-9"),
                LocalPattern("match-home", [2, 0, 0, 3], "bs-9"),
                LocalPattern("no-match", [9, 9, 9, 9], "bs-9"),
            ]
        )
        matcher = BaseStationMatcher(config, "bs-9", patterns)
        reports = matcher.match_against(encoded)
        by_user = {r.user_id: r for r in reports}
        assert set(by_user) == {"match-global", "match-home"}
        assert by_user["match-global"].weight == Fraction(1)
        assert by_user["match-home"].weight == Fraction(5, 14)
        assert all(r.station_id == "bs-9" for r in reports)
        assert all(r.query_id == "q0" for r in reports)

    def test_candidate_count(self, config):
        patterns = PatternSet([LocalPattern("a", [1, 1, 1, 1], "bs-9")])
        matcher = BaseStationMatcher(config, "bs-9", patterns)
        assert matcher.candidate_count == 1
        assert matcher.station_id == "bs-9"

    def test_empty_station_produces_no_reports(self, encoded, config):
        matcher = BaseStationMatcher(config, "bs-9", PatternSet())
        assert matcher.match_against(encoded) == []

    def test_mismatched_sample_count_rejected(self, encoded):
        other_config = DIMatchingConfig(sample_count=8)
        matcher = BaseStationMatcher(
            other_config, "bs-9", PatternSet([LocalPattern("a", [1, 1, 1, 1], "bs-9")])
        )
        with pytest.raises(MatchingError, match="sample counts differ"):
            matcher.match_against(encoded)

    def test_position_cache_reset_between_filters(self, config):
        # Two filters with different sizes must not share cached positions.
        small = PatternEncoder(config.with_updates(bits_per_element=8)).encode_batch([_query()])
        large = PatternEncoder(config.with_updates(bits_per_element=64)).encode_batch([_query()])
        fragment = LocalPattern("bob", [2, 4, 5, 3], "bs-9")
        matcher = BaseStationMatcher(config, "bs-9", PatternSet([fragment]))
        first = matcher.match_against(small)
        second = matcher.match_against(large)
        assert {r.user_id for r in first} == {"bob"}
        assert {r.user_id for r in second} == {"bob"}


class TestPlainMatching:
    def test_membership_only_matching_reports_without_weights(self, config):
        encoder = PatternEncoder(config)
        bloom = encoder.encode_batch_plain([_query()])
        patterns = PatternSet(
            [
                LocalPattern("match", [2, 4, 5, 3], "bs-9"),
                LocalPattern("no-match", [9, 9, 9, 9], "bs-9"),
            ]
        )
        matcher = BaseStationMatcher(config, "bs-9", patterns)
        reports = matcher.match_against_plain(bloom)
        assert [r.user_id for r in reports] == ["match"]
        assert reports[0].weight is None
