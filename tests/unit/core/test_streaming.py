"""Unit tests for the continuous (incremental) matching session."""

import pytest

from repro.baselines.bf_matching import BloomFilterProtocol
from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol
from repro.core.streaming import ContinuousMatchingSession
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern


def _query():
    return QueryPattern(
        "q0",
        [
            LocalPattern("alice", [1, 0, 2, 0], "bs-1"),
            LocalPattern("alice", [0, 3, 0, 4], "bs-2"),
        ],
    )


@pytest.fixture()
def session():
    return ContinuousMatchingSession(
        DIMatchingProtocol(DIMatchingConfig(sample_count=4)), [_query()]
    )


class TestConstruction:
    def test_encodes_once_at_construction(self, session):
        assert session.artifact is not None
        assert session.queries[0].query_id == "q0"
        assert session.update_count == 0

    def test_rejects_non_protocol(self):
        with pytest.raises(TypeError):
            ContinuousMatchingSession("wbf", [_query()])

    def test_rejects_empty_queries(self):
        with pytest.raises(ValueError):
            ContinuousMatchingSession(DIMatchingProtocol(), [])


class TestUpdates:
    def test_update_station_produces_reports(self, session):
        count = session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [1, 0, 2, 0], "bs-1")])
        )
        assert count == 1
        assert session.station_ids == ["bs-1"]
        assert session.matching_runs == 1

    def test_results_refresh_as_stations_report(self, session):
        session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [1, 0, 2, 0], "bs-1")])
        )
        partial = session.current_results()
        assert partial.user_ids() == ["bob"]
        assert partial.users[0].score < 1.0

        session.update_station(
            "bs-2", PatternSet([LocalPattern("bob", [0, 3, 0, 4], "bs-2")])
        )
        complete = session.current_results()
        assert complete.users[0].score == 1.0

    def test_update_replaces_previous_station_state(self, session):
        session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [1, 0, 2, 0], "bs-1")])
        )
        # The user's data at bs-1 changes to something unrelated: the old report must
        # not linger.
        session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [9, 9, 9, 9], "bs-1")])
        )
        assert session.current_results().user_ids() == []

    def test_only_updated_station_is_rematched(self, session):
        session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [1, 0, 2, 0], "bs-1")])
        )
        session.update_station(
            "bs-2", PatternSet([LocalPattern("bob", [0, 3, 0, 4], "bs-2")])
        )
        runs_before = session.matching_runs
        session.update_station(
            "bs-2", PatternSet([LocalPattern("bob", [0, 3, 0, 4], "bs-2")])
        )
        assert session.matching_runs == runs_before + 1

    def test_remove_station(self, session):
        session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [1, 3, 2, 4], "bs-1")])
        )
        session.remove_station("bs-1")
        assert session.current_results().user_ids() == []

    def test_rejects_non_pattern_set(self, session):
        with pytest.raises(TypeError):
            session.update_station("bs-1", [LocalPattern("bob", [1, 0, 2, 0], "bs-1")])

    def test_top_k_cutoff(self, session):
        for index in range(3):
            session.update_station(
                f"bs-{index}",
                PatternSet([LocalPattern(f"user-{index}", [1, 3, 2, 4], f"bs-{index}")]),
            )
        assert len(session.current_results(k=2)) == 2


class TestWireDeltas:
    def test_updates_mark_stations_dirty_in_order(self, session):
        session.update_station("bs-2", PatternSet([LocalPattern("bob", [0, 3, 0, 4], "bs-2")]))
        session.update_station("bs-1", PatternSet([LocalPattern("bob", [1, 0, 2, 0], "bs-1")]))
        assert session.dirty_station_ids == ("bs-2", "bs-1")

    def test_collect_deltas_returns_decodable_payloads_and_clears_dirty(self, session):
        from repro import wire

        session.update_station("bs-1", PatternSet([LocalPattern("alice", [1, 0, 2, 0], "bs-1")]))
        deltas = session.collect_deltas()
        assert set(deltas) == {"bs-1"}
        decoded = wire.decode(deltas["bs-1"])
        assert [r.user_id for r in decoded] == ["alice"]
        assert session.dirty_station_ids == ()
        assert session.delta_bytes_shipped == len(deltas["bs-1"])

    def test_only_changed_stations_are_reencoded(self, session):
        session.update_station("bs-1", PatternSet([LocalPattern("alice", [1, 0, 2, 0], "bs-1")]))
        session.update_station("bs-2", PatternSet([LocalPattern("alice", [0, 3, 0, 4], "bs-2")]))
        session.collect_deltas()
        runs_after_first = session.encoding_runs
        assert runs_after_first == 2
        # One station changes: exactly one re-encode, one delta entry.
        session.update_station("bs-1", PatternSet([LocalPattern("carol", [9, 9, 9, 9], "bs-1")]))
        deltas = session.collect_deltas()
        assert set(deltas) == {"bs-1"}
        assert session.encoding_runs == runs_after_first + 1

    def test_no_updates_means_empty_delta(self, session):
        session.update_station("bs-1", PatternSet([LocalPattern("alice", [1, 0, 2, 0], "bs-1")]))
        session.collect_deltas()
        assert session.collect_deltas() == {}

    def test_removed_station_is_not_shipped(self, session):
        session.update_station("bs-1", PatternSet([LocalPattern("alice", [1, 0, 2, 0], "bs-1")]))
        session.remove_station("bs-1")
        assert session.collect_deltas() == {}


class TestShipDeltas:
    def _dirty_session(self, session):
        session.update_station(
            "bs-1", PatternSet([LocalPattern("alice", [1, 0, 2, 0], "bs-1")])
        )
        session.update_station(
            "bs-2", PatternSet([LocalPattern("alice", [0, 3, 0, 4], "bs-2")])
        )
        return session

    def test_deltas_cross_the_wire_into_the_center(self, session):
        from repro.distributed.network import SimulatedNetwork
        from repro.distributed.node import Node

        self._dirty_session(session)
        center = Node("data-center")
        network = SimulatedNetwork()
        delivered = session.ship_deltas(network, center)
        assert set(delivered) == {"bs-1", "bs-2"}
        assert session.dirty_station_ids == ()
        assert session.delta_bytes_shipped == sum(len(d) for d in delivered.values())
        # The center decoded real report payloads off the wire.
        senders = {message.sender for message in center.inbox}
        assert senders == {"bs-1", "bs-2"}
        for message in center.inbox:
            assert [r.user_id for r in message.payload] == ["alice"]

    def test_strict_failure_marks_delivered_stations_clean_before_raising(self, session):
        from repro.distributed.events import RoundTimeoutError
        from repro.distributed.faults import FaultPlan
        from repro.distributed.network import NetworkConfig, SimulatedNetwork
        from repro.distributed.node import Node

        self._dirty_session(session)
        center = Node("data-center")
        # Seed 0 blacks out bs-1 past the retry horizon while bs-2 delivers,
        # so the strict gather raises after one station already landed.
        network = SimulatedNetwork(
            NetworkConfig(max_attempts=2),
            fault_plan=FaultPlan(
                blackout_probability=0.5, blackout_start_s=0.0, blackout_end_s=60.0
            ),
            seed=0,
        )
        with pytest.raises(RoundTimeoutError):
            session.ship_deltas(network, center)
        assert {message.sender for message in center.inbox} == {"bs-2"}
        # The delivered station is clean; only the failed one retries, so the
        # center can never receive bs-2's reports twice (exactly-once).
        assert set(session.dirty_station_ids) == {"bs-1"}
        delivered = session.ship_deltas(SimulatedNetwork(), center)
        assert set(delivered) == {"bs-1"}
        assert [message.sender for message in center.inbox].count("bs-2") == 1

    def test_timed_out_station_stays_dirty_for_the_next_shipment(self, session):
        from repro.distributed.faults import FaultPlan
        from repro.distributed.network import NetworkConfig, SimulatedNetwork
        from repro.distributed.node import Node

        self._dirty_session(session)
        center = Node("data-center")
        black_hole = SimulatedNetwork(
            NetworkConfig(max_attempts=2),
            fault_plan=FaultPlan(drop_probability=1.0),
            allow_partial=True,
        )
        assert session.ship_deltas(black_hole, center) == {}
        assert set(session.dirty_station_ids) == {"bs-1", "bs-2"}
        # A healthy network later retries and drains the dirty set.
        delivered = session.ship_deltas(SimulatedNetwork(), center)
        assert set(delivered) == {"bs-1", "bs-2"}
        assert session.dirty_station_ids == ()


class TestWithOtherProtocols:
    def test_works_with_plain_bf_protocol(self):
        session = ContinuousMatchingSession(
            BloomFilterProtocol(DIMatchingConfig(sample_count=4)), [_query()]
        )
        session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [1, 3, 2, 4], "bs-1")])
        )
        assert session.current_results().user_ids() == ["bob"]

    def test_repr(self, session):
        assert "ContinuousMatchingSession" in repr(session)


class TestReplaceQueries:
    def _bob_query(self):
        return QueryPattern(
            "q1",
            [
                LocalPattern("bob", [2, 0, 1, 0], "bs-1"),
                LocalPattern("bob", [0, 1, 0, 2], "bs-2"),
            ],
        )

    def test_rotation_rematches_every_known_station(self, session):
        session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [2, 0, 1, 0], "bs-1")])
        )
        session.update_station(
            "bs-2", PatternSet([LocalPattern("bob", [0, 1, 0, 2], "bs-2")])
        )
        session.collect_deltas()  # drain the dirty set
        runs_before = session.matching_runs
        session.replace_queries([self._bob_query()])
        assert session.batch_encodings == 2
        assert session.matching_runs == runs_before + 2
        # Every station is dirty again: the rotation must be re-shipped.
        assert set(session.dirty_station_ids) == {"bs-1", "bs-2"}
        assert session.current_results().user_ids() == ["bob"]
        assert session.queries[0].query_id == "q1"

    def test_rotation_invalidates_encoded_report_caches(self, session):
        session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [2, 0, 1, 0], "bs-1")])
        )
        before = dict(session.collect_deltas())
        session.replace_queries([self._bob_query()])
        after = dict(session.collect_deltas())
        assert set(after) == {"bs-1"}
        assert after["bs-1"] != before["bs-1"]

    def test_removed_stations_stay_removed_across_rotations(self, session):
        session.update_station(
            "bs-1", PatternSet([LocalPattern("bob", [2, 0, 1, 0], "bs-1")])
        )
        session.remove_station("bs-1")
        session.replace_queries([self._bob_query()])
        assert session.station_ids == []
        assert session.dirty_station_ids == ()

    def test_rejects_empty_batch(self, session):
        with pytest.raises(ValueError):
            session.replace_queries([])
