"""Unit tests for the data-center pattern encoder (Algorithm 1)."""

from fractions import Fraction

import pytest

from repro.bloom.standard import BloomFilter
from repro.core.config import DIMatchingConfig
from repro.core.encoder import EncodedQueryBatch, PatternEncoder
from repro.core.exceptions import EncodingError
from repro.timeseries.pattern import LocalPattern
from repro.timeseries.query import QueryPattern


def _query(query_id="q0"):
    locals_ = [
        LocalPattern("alice", [1, 0, 0, 2], "bs-1"),
        LocalPattern("alice", [0, 3, 0, 0], "bs-2"),
        LocalPattern("alice", [0, 0, 4, 0], "bs-3"),
    ]
    return QueryPattern(query_id, locals_)


class TestCombinedPatterns:
    def test_combination_count(self):
        encoder = PatternEncoder(DIMatchingConfig())
        assert len(encoder.combined_patterns(_query())) == 7

    def test_weights_are_fraction_of_global_total(self):
        encoder = PatternEncoder(DIMatchingConfig())
        combos = encoder.combined_patterns(_query())
        global_total = 1 + 2 + 3 + 4
        for combo in combos:
            assert combo.weight == Fraction(combo.accumulated[-1], global_total)

    def test_full_combination_has_weight_one(self):
        encoder = PatternEncoder(DIMatchingConfig())
        weights = {c.weight for c in encoder.combined_patterns(_query())}
        assert Fraction(1) in weights

    def test_paper_weight_example(self):
        # Weight of local pattern {1,2,3} w.r.t. global {4,7,9} is 3/9 = max/max
        # of the accumulated forms ({1,3,6} vs {4,11,20} -> 6/20 of the totals);
        # the paper states the raw-value ratio, our encoder uses the accumulated
        # totals which is the same quantity for the full pattern.
        locals_ = [
            LocalPattern("u", [1, 2, 3], "a"),
            LocalPattern("u", [3, 5, 6], "b"),
        ]
        query = QueryPattern("q", locals_)
        encoder = PatternEncoder(DIMatchingConfig())
        combos = {c.accumulated: c.weight for c in encoder.combined_patterns(query)}
        assert combos[(1, 3, 6)] == Fraction(6, 20)

    def test_disjoint_singleton_weights_sum_to_one(self):
        # The query's three fragments have totals 3, 3 and 4 (global total 10); the
        # weights of the three singleton combinations must sum exactly to 1, which is
        # what lets a true target's per-station reports aggregate to exactly 1.
        encoder = PatternEncoder(DIMatchingConfig())
        combos = encoder.combined_patterns(_query())
        singleton_weights = [c.weight for c in combos if c.accumulated[-1] in (3, 4)]
        assert len(singleton_weights) == 3
        assert sum(singleton_weights, Fraction(0)) == Fraction(1)

    def test_zero_weight_combinations_dropped(self):
        locals_ = [
            LocalPattern("u", [0, 0], "a"),
            LocalPattern("u", [1, 2], "b"),
        ]
        encoder = PatternEncoder(DIMatchingConfig())
        combos = encoder.combined_patterns(QueryPattern("q", locals_))
        assert all(c.weight > 0 for c in combos)

    def test_duplicate_shapes_deduplicated_keeping_larger_weight(self):
        locals_ = [
            LocalPattern("u", [0, 0], "a"),
            LocalPattern("u", [1, 2], "b"),
        ]
        encoder = PatternEncoder(DIMatchingConfig(deduplicate_combinations=True))
        combos = encoder.combined_patterns(QueryPattern("q", locals_))
        shapes = [c.accumulated for c in combos]
        assert len(shapes) == len(set(shapes))
        assert {c.weight for c in combos} == {Fraction(1)}

    def test_all_zero_query_rejected(self):
        locals_ = [LocalPattern("u", [0, 0], "a")]
        encoder = PatternEncoder(DIMatchingConfig())
        with pytest.raises(EncodingError):
            encoder.combined_patterns(QueryPattern("q", locals_))

    def test_too_many_local_patterns_rejected(self):
        locals_ = [LocalPattern("u", [1, 1], f"bs-{i}") for i in range(5)]
        encoder = PatternEncoder(DIMatchingConfig(max_local_patterns=3))
        with pytest.raises(EncodingError, match="local fragments"):
            encoder.combined_patterns(QueryPattern("q", locals_))


class TestItemEnumeration:
    def test_sample_indices_respect_sample_count(self):
        encoder = PatternEncoder(DIMatchingConfig(sample_count=3))
        assert len(encoder.sample_indices(100)) == 3

    def test_candidate_items_include_index_by_default(self):
        encoder = PatternEncoder(DIMatchingConfig(sample_count=2))
        items = encoder.items_for_accumulated([1, 2, 3, 4])
        assert all(isinstance(item, tuple) and len(item) == 2 for item in items)

    def test_candidate_items_values_only_when_configured(self):
        encoder = PatternEncoder(DIMatchingConfig(sample_count=2, include_sample_index=False))
        items = encoder.items_for_accumulated([1, 2, 3, 4])
        assert all(isinstance(item, int) for item in items)

    def test_insertions_include_epsilon_band(self):
        config = DIMatchingConfig(sample_count=2, epsilon=1, expand_epsilon=True)
        encoder = PatternEncoder(config)
        insertions, _, _ = encoder.enumerate_insertions([_query()])
        items = {item for item, _ in insertions}
        # The final accumulated value of the global combination is 10; its ±1 band
        # must be present.
        last_index = 3
        assert (last_index, 9) in items and (last_index, 10) in items and (last_index, 11) in items

    def test_accumulated_tolerance_mode_widens_band(self):
        narrow = PatternEncoder(
            DIMatchingConfig(sample_count=2, epsilon=1, epsilon_tolerance_mode="interval")
        )
        wide = PatternEncoder(
            DIMatchingConfig(sample_count=2, epsilon=1, epsilon_tolerance_mode="accumulated")
        )
        narrow_items, _, _ = narrow.enumerate_insertions([_query()])
        wide_items, _, _ = wide.enumerate_insertions([_query()])
        assert len(wide_items) > len(narrow_items)

    def test_insertions_carry_query_qualified_weights(self):
        encoder = PatternEncoder(DIMatchingConfig(sample_count=2))
        insertions, _, _ = encoder.enumerate_insertions([_query("my-query")])
        assert all(weight[0] == "my-query" for _, weight in insertions)
        assert all(isinstance(weight[1], Fraction) for _, weight in insertions)

    def test_mixed_lengths_rejected(self):
        short = QueryPattern("short", [LocalPattern("u", [1, 2], "a")])
        encoder = PatternEncoder(DIMatchingConfig())
        with pytest.raises(EncodingError, match="same length"):
            encoder.enumerate_insertions([_query(), short])

    def test_duplicate_query_ids_rejected(self):
        encoder = PatternEncoder(DIMatchingConfig())
        with pytest.raises(EncodingError, match="unique"):
            encoder.enumerate_insertions([_query("same"), _query("same")])

    def test_empty_batch_rejected(self):
        encoder = PatternEncoder(DIMatchingConfig())
        with pytest.raises(ValueError):
            encoder.enumerate_insertions([])


class TestEncodeBatch:
    def test_returns_encoded_batch(self):
        encoder = PatternEncoder(DIMatchingConfig())
        batch = encoder.encode_batch([_query()])
        assert isinstance(batch, EncodedQueryBatch)
        assert batch.query_count == 1
        assert batch.combined_pattern_count == 7
        assert batch.pattern_length == 4
        assert batch.inserted_item_count == batch.wbf.item_count

    def test_filter_sized_from_insertions(self):
        config = DIMatchingConfig(bits_per_element=16, min_bit_count=1)
        encoder = PatternEncoder(config)
        batch = encoder.encode_batch([_query()])
        assert batch.wbf.bit_count == config.filter_bit_count(batch.inserted_item_count)

    def test_fixed_filter_size(self):
        config = DIMatchingConfig(auto_size=False, bit_count=2048)
        batch = PatternEncoder(config).encode_batch([_query()])
        assert batch.wbf.bit_count == 2048

    def test_size_bytes_delegates_to_filter(self):
        batch = PatternEncoder(DIMatchingConfig()).encode_batch([_query()])
        assert batch.size_bytes() == batch.wbf.size_bytes()

    def test_encode_batch_plain_matches_item_enumeration(self):
        encoder = PatternEncoder(DIMatchingConfig())
        bloom = encoder.encode_batch_plain([_query()])
        assert isinstance(bloom, BloomFilter)
        insertions, _, _ = encoder.enumerate_insertions([_query()])
        assert bloom.item_count == len(insertions)
        assert all(item in bloom for item, _ in insertions)

    def test_multiple_queries_share_one_filter(self):
        encoder = PatternEncoder(DIMatchingConfig())
        batch = encoder.encode_batch([_query("a"), _query("b")])
        assert batch.query_count == 2
        assert batch.combined_pattern_count == 14
