"""Unit tests for the similarity ranker (Algorithm 3)."""

from fractions import Fraction

import pytest

from repro.core.aggregator import SimilarityRanker
from repro.core.exceptions import MatchingError
from repro.core.protocol import MatchReport


def _report(user, station, weight, query="q0"):
    return MatchReport(user_id=user, station_id=station, weight=weight, query_id=query)


class TestWeightOptions:
    def test_groups_by_user_query_and_station(self):
        ranker = SimilarityRanker()
        reports = [
            _report("u1", "a", Fraction(1, 2)),
            _report("u1", "b", Fraction(1, 2)),
            _report("u2", "a", Fraction(1)),
        ]
        options = ranker.weight_options(reports)
        assert set(options) == {("u1", "q0"), ("u2", "q0")}
        assert options[("u1", "q0")]["a"] == {Fraction(1, 2)}

    def test_rejects_weightless_reports(self):
        ranker = SimilarityRanker()
        with pytest.raises(MatchingError):
            ranker.weight_options([MatchReport("u1", "a", weight=None)])


class TestBestWeightSum:
    def test_single_option_per_station(self):
        ranker = SimilarityRanker()
        best = ranker.best_weight_sum({"a": {Fraction(1, 3)}, "b": {Fraction(2, 3)}})
        assert best == Fraction(1)

    def test_over_matching_returns_none(self):
        ranker = SimilarityRanker()
        assert ranker.best_weight_sum({"a": {Fraction(1)}, "b": {Fraction(1)}}) is None

    def test_chooses_assignment_that_reaches_one(self):
        # Station "a" is ambiguous between 1/3 and 2/3; only the 1/3 choice keeps the
        # total at exactly 1.
        ranker = SimilarityRanker()
        best = ranker.best_weight_sum(
            {"a": {Fraction(1, 3), Fraction(2, 3)}, "b": {Fraction(2, 3)}}
        )
        assert best == Fraction(1)

    def test_partial_match_keeps_largest_valid_sum(self):
        ranker = SimilarityRanker()
        best = ranker.best_weight_sum({"a": {Fraction(1, 4), Fraction(1, 2)}})
        assert best == Fraction(1, 2)

    def test_custom_bound(self):
        ranker = SimilarityRanker(max_weight_sum=Fraction(2))
        assert ranker.best_weight_sum({"a": {Fraction(1)}, "b": {Fraction(1)}}) == Fraction(2)


class TestUserScores:
    def test_true_target_scores_one(self):
        ranker = SimilarityRanker()
        reports = [
            _report("u1", "a", Fraction(3, 10)),
            _report("u1", "b", Fraction(7, 10)),
        ]
        assert ranker.user_scores(reports) == {"u1": Fraction(1)}

    def test_over_matching_user_deleted(self):
        # The paper's over-matching example: each of three stations reports a full
        # match (weight 1); the aggregated sum 3 exceeds 1 and the user is deleted.
        ranker = SimilarityRanker()
        reports = [_report("decoy", station, Fraction(1)) for station in ("a", "b", "c")]
        assert ranker.user_scores(reports) == {}

    def test_partial_match_scores_below_one(self):
        ranker = SimilarityRanker()
        scores = ranker.user_scores([_report("u1", "a", Fraction(2, 5))])
        assert scores["u1"] == Fraction(2, 5)

    def test_weights_of_different_queries_not_mixed(self):
        ranker = SimilarityRanker()
        reports = [
            _report("u1", "a", Fraction(1, 2), query="qA"),
            _report("u1", "b", Fraction(1, 2), query="qB"),
        ]
        # Each per-query sum is only 1/2; mixing them would (wrongly) give 1.
        assert ranker.user_scores(reports) == {"u1": Fraction(1, 2)}

    def test_best_query_wins(self):
        ranker = SimilarityRanker()
        reports = [
            _report("u1", "a", Fraction(1, 2), query="qA"),
            _report("u1", "a", Fraction(1), query="qB"),
        ]
        assert ranker.user_scores(reports)["u1"] == Fraction(1)


class TestAggregate:
    def test_ranking_order(self):
        ranker = SimilarityRanker()
        reports = [
            _report("complete", "a", Fraction(1)),
            _report("partial", "a", Fraction(1, 2)),
        ]
        results = ranker.aggregate(reports)
        assert results.user_ids() == ["complete", "partial"]
        assert results.users[0].score == 1.0

    def test_top_k_cutoff(self):
        ranker = SimilarityRanker()
        reports = [
            _report(f"user-{i}", "a", Fraction(1, i + 1)) for i in range(5)
        ]
        assert len(ranker.aggregate(reports, k=2)) == 2

    def test_k_zero_returns_empty(self):
        ranker = SimilarityRanker()
        assert len(ranker.aggregate([_report("u", "a", Fraction(1))], k=0)) == 0

    def test_negative_k_rejected(self):
        ranker = SimilarityRanker()
        with pytest.raises(ValueError):
            ranker.aggregate([], k=-1)

    def test_deterministic_tie_break(self):
        ranker = SimilarityRanker()
        reports = [
            _report("zeta", "a", Fraction(1)),
            _report("alpha", "a", Fraction(1)),
        ]
        assert ranker.aggregate(reports).user_ids() == ["alpha", "zeta"]

    def test_empty_reports(self):
        assert len(SimilarityRanker().aggregate([])) == 0


class TestConstruction:
    def test_invalid_bound_type(self):
        with pytest.raises(TypeError):
            SimilarityRanker(max_weight_sum=1.0)

    def test_non_positive_bound(self):
        with pytest.raises(ValueError):
            SimilarityRanker(max_weight_sum=Fraction(0))

    def test_bound_property(self):
        assert SimilarityRanker(Fraction(3, 2)).max_weight_sum == Fraction(3, 2)


class TestColumnarParity:
    """The NumPy columnar scorer must be indistinguishable from the plain path."""

    def _bulk_reports(self):
        # Enough reports to cross the columnar threshold, mixing:
        # exact matchers, over-matchers (pruned), partial matchers, multi-query
        # users, and multi-option station groups (ambiguous duplicate weights).
        reports = []
        for i in range(80):
            user = f"u{i:03d}"
            reports.append(_report(user, "a", Fraction(1, 2)))
            reports.append(_report(user, "b", Fraction(1, 2), query="q1"))
        for i in range(10):  # exact matches across two stations
            user = f"x{i}"
            reports.append(_report(user, "a", Fraction(1, 3)))
            reports.append(_report(user, "b", Fraction(2, 3)))
        for i in range(6):  # over-matchers: sum beyond the bound, pruned
            user = f"o{i}"
            reports.append(_report(user, "a", Fraction(1)))
            reports.append(_report(user, "b", Fraction(1, 2)))
        for i in range(6):  # multi-option groups: two weights at one station
            user = f"m{i}"
            reports.append(_report(user, "a", Fraction(1, 4)))
            reports.append(_report(user, "a", Fraction(3, 4)))
            reports.append(_report(user, "b", Fraction(1, 4)))
        return reports

    def _plain_scores(self, ranker, reports):
        enabled = SimilarityRanker.COLUMNAR_ENABLED
        SimilarityRanker.COLUMNAR_ENABLED = False
        try:
            return ranker.user_scores(reports)
        finally:
            SimilarityRanker.COLUMNAR_ENABLED = enabled

    def test_scores_identical_to_plain_path(self):
        pytest.importorskip("numpy")
        ranker = SimilarityRanker()
        reports = self._bulk_reports()
        columnar = ranker.user_scores(reports)
        plain = self._plain_scores(ranker, reports)
        # Exact equality including dict insertion order and Fraction identity
        # of values — byte-identical downstream rankings depend on both.
        assert list(columnar.items()) == list(plain.items())
        assert all(isinstance(score, Fraction) for score in columnar.values())

    def test_ranking_identical_to_plain_path(self):
        pytest.importorskip("numpy")
        ranker = SimilarityRanker()
        reports = self._bulk_reports()
        enabled = SimilarityRanker.COLUMNAR_ENABLED
        SimilarityRanker.COLUMNAR_ENABLED = False
        try:
            plain = ranker.aggregate(reports)
        finally:
            SimilarityRanker.COLUMNAR_ENABLED = enabled
        assert ranker.aggregate(reports) == plain

    def test_small_batches_skip_the_columnar_path(self):
        # Below the threshold the plain path runs even with the flag on; the
        # result contract is the same either way.
        ranker = SimilarityRanker()
        reports = [_report("u1", "a", Fraction(1))]
        assert ranker.user_scores(reports) == {"u1": Fraction(1)}

    def test_code_space_overflow_falls_back(self, monkeypatch):
        pytest.importorskip("numpy")
        import repro.core.aggregator as aggregator_module

        # Shrink the packed-code space so the columnar path bails out and the
        # dispatcher silently reruns the plain path.
        monkeypatch.setattr(aggregator_module, "_CODE_LIMIT", 4)
        ranker = SimilarityRanker()
        reports = self._bulk_reports()
        assert ranker.user_scores(reports) == self._plain_scores(ranker, reports)
