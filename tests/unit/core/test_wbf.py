"""Unit tests for the Weighted Bloom Filter."""

from fractions import Fraction

import pytest

from repro.core.wbf import WeightedBloomFilter


class TestInsertionAndMembership:
    def test_added_items_are_members(self):
        wbf = WeightedBloomFilter(1024, 4)
        wbf.add_many(range(30), Fraction(1))
        assert all(wbf.contains(v) for v in range(30))

    def test_absent_items_mostly_rejected(self):
        wbf = WeightedBloomFilter(4096, 4)
        wbf.add_many(range(100), Fraction(1, 2))
        false_positives = sum(1 for v in range(10_000, 11_000) if v in wbf)
        assert false_positives < 60

    def test_item_count(self):
        wbf = WeightedBloomFilter(256, 3)
        wbf.add("a", Fraction(1))
        wbf.add("b", Fraction(1, 2))
        assert wbf.item_count == 2

    def test_unhashable_weight_rejected(self):
        wbf = WeightedBloomFilter(256, 3)
        with pytest.raises(TypeError):
            wbf.add("a", [1, 2])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WeightedBloomFilter(0, 2)
        with pytest.raises(ValueError):
            WeightedBloomFilter(16, 0)


class TestWeightedQueries:
    def test_returns_weight_of_inserted_value(self):
        wbf = WeightedBloomFilter(1024, 4)
        wbf.add("pattern-point", Fraction(3, 9))
        assert wbf.query_weights("pattern-point") == frozenset({Fraction(3, 9)})

    def test_absent_value_returns_empty(self):
        wbf = WeightedBloomFilter(1024, 4)
        wbf.add("present", Fraction(1))
        assert wbf.query_weights("absent") == frozenset()

    def test_value_inserted_twice_with_different_weights_returns_both(self):
        wbf = WeightedBloomFilter(1024, 4)
        wbf.add("shared", Fraction(1, 3))
        wbf.add("shared", Fraction(2, 3))
        assert wbf.query_weights("shared") == frozenset({Fraction(1, 3), Fraction(2, 3)})

    def test_paper_example_mixed_pattern_rejected(self):
        # The paper's example: patterns {1,2,3} and {2,4,5} are inserted with their
        # own weights; the mixed pattern {1,4,5} passes a plain membership test but
        # has no common weight across its values, so the WBF rejects it.
        wbf = WeightedBloomFilter(4096, 4)
        weight_a, weight_b = Fraction(1, 2), Fraction(1, 3)
        for value in (1, 2, 3):
            wbf.add(("point", value), weight_a)
        for value in (2, 4, 5):
            wbf.add(("point", value), weight_b)
        assert all(wbf.contains(("point", v)) for v in (1, 4, 5))
        weights_per_value = [wbf.query_weights(("point", v)) for v in (1, 4, 5)]
        common = frozenset.intersection(*weights_per_value)
        assert common == frozenset()

    def test_consistent_pattern_keeps_common_weight(self):
        wbf = WeightedBloomFilter(4096, 4)
        weight = Fraction(2, 5)
        for value in (10, 20, 30):
            wbf.add(("point", value), weight)
        weights_per_value = [wbf.query_weights(("point", v)) for v in (10, 20, 30)]
        assert frozenset.intersection(*weights_per_value) == frozenset({weight})

    def test_query_weights_at_matches_query_weights(self):
        wbf = WeightedBloomFilter(2048, 3)
        wbf.add("x", Fraction(1, 7))
        positions = wbf.hash_family.positions("x")
        assert wbf.query_weights_at(positions) == wbf.query_weights("x")

    def test_qualified_weight_tuples(self):
        wbf = WeightedBloomFilter(1024, 4)
        wbf.add("v", ("query-1", Fraction(1, 2)))
        wbf.add("v", ("query-2", Fraction(1, 2)))
        assert len(wbf.query_weights("v")) == 2


class TestIntrospection:
    def test_fill_ratio_and_fp_rate_grow(self):
        wbf = WeightedBloomFilter(512, 3)
        assert wbf.fill_ratio() == 0.0
        wbf.add_many(range(40), Fraction(1))
        assert wbf.fill_ratio() > 0.0
        assert wbf.estimated_false_positive_rate() > 0.0

    def test_distinct_weights(self):
        wbf = WeightedBloomFilter(512, 3)
        wbf.add("a", Fraction(1, 2))
        wbf.add("b", Fraction(1, 2))
        wbf.add("c", Fraction(1, 3))
        assert wbf.distinct_weights() == {Fraction(1, 2), Fraction(1, 3)}

    def test_size_bytes_exceeds_plain_bit_array(self):
        wbf = WeightedBloomFilter(1024, 4)
        empty_size = wbf.size_bytes()
        wbf.add_many(range(50), Fraction(1, 2))
        assert wbf.size_bytes() > empty_size

    def test_seed_property(self):
        assert WeightedBloomFilter(64, 2, seed=5).seed == 5

    def test_repr(self):
        assert "WeightedBloomFilter" in repr(WeightedBloomFilter(64, 2))
