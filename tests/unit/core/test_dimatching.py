"""Unit tests for the DI-matching protocol orchestration."""

import pytest

from repro.core.config import DIMatchingConfig
from repro.core.dimatching import DIMatchingProtocol, run_dimatching
from repro.core.encoder import EncodedQueryBatch
from repro.core.exceptions import MatchingError
from repro.core.protocol import MatchReport
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern


def _query():
    return QueryPattern(
        "q0",
        [
            LocalPattern("alice", [1, 0, 2, 0], "bs-1"),
            LocalPattern("alice", [0, 3, 0, 4], "bs-2"),
        ],
    )


class TestProtocolInterface:
    def test_name(self):
        assert DIMatchingProtocol().name == "wbf"

    def test_encode_returns_batch(self):
        protocol = DIMatchingProtocol(DIMatchingConfig(sample_count=4))
        assert isinstance(protocol.encode([_query()]), EncodedQueryBatch)

    def test_station_match_and_aggregate_roundtrip(self):
        protocol = DIMatchingProtocol(DIMatchingConfig(sample_count=4))
        artifact = protocol.encode([_query()])
        patterns = PatternSet([LocalPattern("alice", [1, 3, 2, 4], "bs-x")])
        reports = protocol.station_match("bs-x", patterns, artifact)
        assert reports and all(isinstance(r, MatchReport) for r in reports)
        results = protocol.aggregate(reports, k=None)
        assert results.user_ids() == ["alice"]
        assert results.users[0].score == 1.0

    def test_station_match_rejects_wrong_artifact(self):
        protocol = DIMatchingProtocol()
        with pytest.raises(MatchingError):
            protocol.station_match("bs-x", PatternSet(), artifact="not-a-batch")

    def test_station_match_sees_patterns_added_between_rounds(self):
        # The per-station matcher cache must not serve stale candidates when the
        # station's PatternSet is grown in place between broadcasts.
        protocol = DIMatchingProtocol(DIMatchingConfig(sample_count=4))
        artifact = protocol.encode([_query()])
        patterns = PatternSet([LocalPattern("bob", [9, 9, 9, 9], "bs-x")])
        assert protocol.station_match("bs-x", patterns, artifact) == []
        patterns.add(LocalPattern("alice", [1, 3, 2, 4], "bs-x"))
        reports = protocol.station_match("bs-x", patterns, artifact)
        assert [report.user_id for report in reports] == ["alice"]

    def test_aggregate_rejects_foreign_reports(self):
        protocol = DIMatchingProtocol()
        with pytest.raises(MatchingError):
            protocol.aggregate(["bogus"], k=None)

    def test_config_property(self):
        config = DIMatchingConfig(sample_count=6)
        assert DIMatchingProtocol(config).config is config


class TestRunDimatching:
    def test_end_to_end_on_dataset(self, small_dataset, small_workload, exact_config):
        queries = list(small_workload.queries)
        results = run_dimatching(small_dataset, queries, exact_config, k=None)
        retrieved = set(results.user_ids())
        # Every query user must retrieve themselves with a complete match.
        for query in queries:
            assert query.local_patterns[0].user_id in retrieved

    def test_retrieved_users_exist_in_dataset(self, small_dataset, small_workload, exact_config):
        results = run_dimatching(
            small_dataset, list(small_workload.queries), exact_config, k=5
        )
        assert len(results) <= 5
        assert all(u in set(small_dataset.user_ids) for u in results.user_ids())
