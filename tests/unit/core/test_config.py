"""Unit tests for DIMatchingConfig."""

import pytest

from repro.core.config import DIMatchingConfig, FAULT_PROFILE_CHOICES
from repro.core.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_defaults(self):
        config = DIMatchingConfig()
        assert config.sample_count == 12
        assert config.hash_count == 4
        assert config.epsilon == 0

    def test_is_frozen(self):
        config = DIMatchingConfig()
        with pytest.raises(AttributeError):
            config.sample_count = 5


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_count": 0},
            {"hash_count": 0},
            {"epsilon": -1},
            {"bit_count": 0},
            {"bits_per_element": 0},
            {"min_bit_count": 0},
            {"max_local_patterns": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DIMatchingConfig(**kwargs)

    def test_non_integer_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            DIMatchingConfig(epsilon=1.5)

    def test_invalid_tolerance_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            DIMatchingConfig(epsilon_tolerance_mode="weird")

    def test_valid_tolerance_modes(self):
        assert DIMatchingConfig(epsilon_tolerance_mode="interval")
        assert DIMatchingConfig(epsilon_tolerance_mode="accumulated")


class TestFilterSizing:
    def test_auto_size_scales_with_items(self):
        config = DIMatchingConfig(auto_size=True, bits_per_element=10, min_bit_count=64)
        assert config.filter_bit_count(1000) == 10_000

    def test_auto_size_respects_minimum(self):
        config = DIMatchingConfig(auto_size=True, bits_per_element=10, min_bit_count=4096)
        assert config.filter_bit_count(10) == 4096

    def test_fixed_size(self):
        config = DIMatchingConfig(auto_size=False, bit_count=8192)
        assert config.filter_bit_count(10_000) == 8192


class TestWithUpdates:
    def test_returns_modified_copy(self):
        base = DIMatchingConfig(sample_count=12)
        updated = base.with_updates(sample_count=5)
        assert updated.sample_count == 5
        assert base.sample_count == 12

    def test_updates_are_validated(self):
        with pytest.raises(ConfigurationError):
            DIMatchingConfig().with_updates(sample_count=-1)


class TestFaultKnobs:
    def test_defaults_are_fault_free(self):
        config = DIMatchingConfig()
        assert config.fault_profile == "none"
        assert config.net_seed == 0

    def test_known_profiles_accepted(self):
        for profile in FAULT_PROFILE_CHOICES:
            assert DIMatchingConfig(fault_profile=profile).fault_profile == profile

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            DIMatchingConfig(fault_profile="catastrophic")

    def test_net_seed_must_be_an_integer(self):
        with pytest.raises(ConfigurationError):
            DIMatchingConfig(net_seed="zero")
        with pytest.raises(ConfigurationError):
            DIMatchingConfig(net_seed=True)

    def test_fault_knobs_never_travel_on_the_wire(self):
        from repro.wire.codec import _CONFIG_WIRE_FIELDS

        assert "fault_profile" not in _CONFIG_WIRE_FIELDS
        assert "net_seed" not in _CONFIG_WIRE_FIELDS
