"""Unit tests for the protocol data types."""

from fractions import Fraction

import pytest

from repro.core.protocol import MatchReport, RankedResults, RankedUser


class TestMatchReport:
    def test_weighted_report_size(self):
        with_weight = MatchReport("u", "s", weight=Fraction(1), query_id="q")
        without_weight = MatchReport("u", "s")
        assert with_weight.size_bytes() > without_weight.size_bytes()

    def test_weightless_report_size_is_id_only(self):
        from repro.utils.serialization import sizeof_id

        assert MatchReport("u", "s").size_bytes() == sizeof_id()

    def test_immutable(self):
        report = MatchReport("u", "s")
        with pytest.raises(AttributeError):
            report.user_id = "other"


class TestRankedResults:
    def _results(self):
        return RankedResults(
            (
                RankedUser("a", 1.0),
                RankedUser("b", 0.7),
                RankedUser("c", 0.5),
            )
        )

    def test_user_ids_in_order(self):
        assert self._results().user_ids() == ["a", "b", "c"]

    def test_len_and_iter(self):
        results = self._results()
        assert len(results) == 3
        assert [entry.user_id for entry in results] == ["a", "b", "c"]

    def test_top(self):
        assert self._results().top(2).user_ids() == ["a", "b"]

    def test_top_beyond_length(self):
        assert self._results().top(10).user_ids() == ["a", "b", "c"]

    def test_top_negative_rejected(self):
        with pytest.raises(ValueError):
            self._results().top(-1)
