"""Unit tests for the plain-Bloom-filter baseline."""

import pytest

from repro.baselines.bf_matching import BloomFilterProtocol
from repro.bloom.standard import BloomFilter
from repro.core.config import DIMatchingConfig
from repro.core.exceptions import MatchingError
from repro.core.protocol import MatchReport
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern


def _query():
    return QueryPattern(
        "q0",
        [
            LocalPattern("alice", [2, 0, 0, 3], "bs-1"),
            LocalPattern("alice", [0, 4, 5, 0], "bs-2"),
        ],
    )


@pytest.fixture()
def protocol():
    return BloomFilterProtocol(DIMatchingConfig(sample_count=4))


class TestBloomFilterProtocol:
    def test_name(self, protocol):
        assert protocol.name == "bf"

    def test_encode_returns_plain_bloom_filter(self, protocol):
        assert isinstance(protocol.encode([_query()]), BloomFilter)

    def test_station_match_reports_without_weights(self, protocol):
        artifact = protocol.encode([_query()])
        patterns = PatternSet([LocalPattern("alice", [2, 4, 5, 3], "bs-9")])
        reports = protocol.station_match("bs-9", patterns, artifact)
        assert len(reports) == 1
        assert reports[0].weight is None

    def test_over_matching_user_not_filtered(self, protocol):
        # The decoy whose fragments each equal the full query pattern is retrieved by
        # the BF baseline (it has no weight-sum rule) — this is the false positive
        # the WBF eliminates.
        artifact = protocol.encode([_query()])
        decoy_fragment = [2, 4, 5, 3]
        reports = []
        for station in ("bs-a", "bs-b"):
            patterns = PatternSet([LocalPattern("decoy", decoy_fragment, station)])
            reports.extend(protocol.station_match(station, patterns, artifact))
        results = protocol.aggregate(reports, k=None)
        assert "decoy" in results.user_ids()

    def test_aggregate_ranks_by_station_count(self, protocol):
        reports = [
            MatchReport("two-stations", "a"),
            MatchReport("two-stations", "b"),
            MatchReport("one-station", "a"),
        ]
        results = protocol.aggregate(reports, k=None)
        assert results.user_ids() == ["two-stations", "one-station"]

    def test_aggregate_top_k(self, protocol):
        reports = [MatchReport(f"u{i}", "a") for i in range(6)]
        assert len(protocol.aggregate(reports, k=4)) == 4

    def test_station_match_rejects_wrong_artifact(self, protocol):
        with pytest.raises(MatchingError):
            protocol.station_match("bs", PatternSet(), artifact=object())

    def test_aggregate_rejects_foreign_reports(self, protocol):
        with pytest.raises(MatchingError):
            protocol.aggregate([object()], k=None)

    def test_config_property(self):
        config = DIMatchingConfig(sample_count=6)
        assert BloomFilterProtocol(config).config is config
