"""Unit tests for the naive centralised baseline (Approach 1)."""

import pytest

from repro.baselines.naive import NaiveProtocol
from repro.core.exceptions import MatchingError
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern


def _query():
    return QueryPattern(
        "q0",
        [
            LocalPattern("alice", [1, 0, 2], "bs-1"),
            LocalPattern("alice", [2, 4, 3], "bs-2"),
        ],
    )


class TestNaiveProtocol:
    def test_name_and_epsilon(self):
        protocol = NaiveProtocol(epsilon=2)
        assert protocol.name == "naive"
        assert protocol.epsilon == 2

    def test_encode_returns_none(self):
        assert NaiveProtocol().encode([_query()]) is None

    def test_station_match_uploads_everything(self):
        protocol = NaiveProtocol()
        patterns = PatternSet(
            [LocalPattern("u1", [1, 1, 1], "bs-1"), LocalPattern("u2", [2, 2, 2], "bs-1")]
        )
        reports = protocol.station_match("bs-1", patterns, None)
        assert len(reports) == 2

    def test_aggregate_reconstructs_globals_and_matches(self):
        protocol = NaiveProtocol(epsilon=0)
        protocol.encode([_query()])
        reports = [
            LocalPattern("bob", [1, 0, 2], "bs-7"),
            LocalPattern("bob", [2, 4, 3], "bs-8"),
            LocalPattern("carol", [9, 9, 9], "bs-7"),
        ]
        results = protocol.aggregate(reports, k=None)
        assert results.user_ids() == ["bob"]

    def test_aggregate_with_epsilon_tolerance(self):
        protocol = NaiveProtocol(epsilon=1)
        protocol.encode([_query()])
        reports = [LocalPattern("near", [3, 5, 5], "bs-1")]
        results = protocol.aggregate(reports, k=None)
        assert results.user_ids() == ["near"]

    def test_exact_match_ranks_above_approximate(self):
        protocol = NaiveProtocol(epsilon=1)
        protocol.encode([_query()])
        reports = [
            LocalPattern("approx", [3, 5, 5], "bs-1"),
            LocalPattern("exact", [3, 4, 5], "bs-1"),
        ]
        assert protocol.aggregate(reports, k=None).user_ids()[0] == "exact"

    def test_top_k_cutoff(self):
        protocol = NaiveProtocol(epsilon=5)
        protocol.encode([_query()])
        reports = [LocalPattern(f"u{i}", [3, 4, 5], "bs") for i in range(5)]
        assert len(protocol.aggregate(reports, k=2)) == 2

    def test_aggregate_before_encode_rejected(self):
        with pytest.raises(MatchingError):
            NaiveProtocol().aggregate([], k=None)

    def test_aggregate_rejects_non_pattern_reports(self):
        protocol = NaiveProtocol()
        protocol.encode([_query()])
        with pytest.raises(MatchingError):
            protocol.aggregate(["garbage"], k=None)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            NaiveProtocol(epsilon=-1)

    def test_oracle_matches_ground_truth_on_dataset(self, small_dataset, small_workload):
        from repro.evaluation.experiments import ground_truth_users

        protocol = NaiveProtocol(epsilon=small_workload.epsilon)
        queries = list(small_workload.queries)
        protocol.encode(queries)
        reports = []
        for station_id in small_dataset.station_ids:
            patterns = small_dataset.local_patterns_at(station_id)
            reports.extend(protocol.station_match(station_id, patterns, None))
        retrieved = set(protocol.aggregate(reports, k=None).user_ids())
        truth = ground_truth_users(small_dataset, queries, small_workload.epsilon)
        assert retrieved == set(truth)
