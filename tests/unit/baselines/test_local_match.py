"""Unit tests for the local-only baseline (Approach 2)."""

import pytest

from repro.baselines.local_match import LocalOnlyProtocol
from repro.core.exceptions import MatchingError
from repro.timeseries.pattern import LocalPattern, PatternSet
from repro.timeseries.query import QueryPattern


def _query():
    return QueryPattern(
        "q0",
        [
            LocalPattern("alice", [1, 1, 1], "bs-1"),
            LocalPattern("alice", [2, 3, 4], "bs-2"),
        ],
    )


class TestLocalOnlyProtocol:
    def test_name_and_epsilon(self):
        protocol = LocalOnlyProtocol(epsilon=1)
        assert protocol.name == "local"
        assert protocol.epsilon == 1

    def test_encode_distributes_raw_queries(self):
        artifact = LocalOnlyProtocol().encode([_query()])
        assert isinstance(artifact, tuple)
        assert artifact[0].query_id == "q0"

    def test_station_reports_local_matches_of_global_pattern(self):
        protocol = LocalOnlyProtocol(epsilon=0)
        artifact = protocol.encode([_query()])
        patterns = PatternSet(
            [
                LocalPattern("whole-at-one-station", [3, 4, 5], "bs-9"),
                LocalPattern("fragment-only", [1, 1, 1], "bs-9"),
            ]
        )
        reports = protocol.station_match("bs-9", patterns, artifact)
        assert [r.user_id for r in reports] == ["whole-at-one-station"]

    def test_misses_split_users(self):
        # The lossy case the paper describes: the user's aggregated pattern matches
        # but no individual fragment does, so the local-only approach misses them.
        protocol = LocalOnlyProtocol(epsilon=0)
        artifact = protocol.encode([_query()])
        fragments = PatternSet(
            [
                LocalPattern("split-user", [1, 1, 1], "bs-9"),
                LocalPattern("split-user", [2, 3, 4], "bs-9"),
            ]
        )
        reports = protocol.station_match("bs-9", fragments, artifact)
        assert reports == []

    def test_aggregate_counts_stations(self):
        protocol = LocalOnlyProtocol()
        artifact = protocol.encode([_query()])
        patterns = PatternSet([LocalPattern("match", [3, 4, 5], "bs-1")])
        reports = protocol.station_match("bs-1", patterns, artifact)
        reports += protocol.station_match("bs-2", patterns, artifact)
        results = protocol.aggregate(reports, k=None)
        assert results.user_ids() == ["match"]
        assert results.users[0].score == 2.0

    def test_aggregate_top_k(self):
        protocol = LocalOnlyProtocol()
        from repro.core.protocol import MatchReport

        reports = [MatchReport(f"u{i}", "a") for i in range(5)]
        assert len(protocol.aggregate(reports, k=2)) == 2

    def test_station_match_rejects_wrong_artifact(self):
        with pytest.raises(MatchingError):
            LocalOnlyProtocol().station_match("bs", PatternSet(), artifact="raw")

    def test_aggregate_rejects_foreign_reports(self):
        with pytest.raises(MatchingError):
            LocalOnlyProtocol().aggregate([42], k=None)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            LocalOnlyProtocol(epsilon=-0.5)
