"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCompareCommand:
    def test_runs_and_prints_table(self, capsys):
        exit_code = main(
            [
                "compare",
                "--users-per-category", "4",
                "--stations", "3",
                "--queries", "3",
                "--seed", "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "precision" in captured
        assert "wbf" in captured

    def test_method_selection(self, capsys):
        main(
            [
                "compare",
                "--users-per-category", "4",
                "--stations", "3",
                "--queries", "2",
                "--methods", "naive", "wbf",
            ]
        )
        captured = capsys.readouterr().out
        assert "naive" in captured
        assert " bf " not in captured

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["compare", "--methods", "magic"])

    def test_fault_profile_adds_reliability_columns(self, capsys):
        exit_code = main(
            [
                "compare",
                "--users-per-category", "4",
                "--stations", "3",
                "--queries", "2",
                "--seed", "3",
                "--methods", "naive", "wbf",
                "--fault-profile", "chaos",
                "--net-seed", "5",
                "--allow-partial",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "faults: chaos (net seed 5)" in captured
        assert "retransmits" in captured
        assert "goodput" in captured

    def test_fault_free_table_keeps_legacy_columns(self, capsys):
        main(
            [
                "compare",
                "--users-per-category", "4",
                "--stations", "3",
                "--queries", "2",
                "--seed", "3",
                "--methods", "wbf",
            ]
        )
        captured = capsys.readouterr().out
        assert "retransmits" not in captured
        assert "faults:" not in captured

    def test_rejects_unknown_fault_profile(self):
        with pytest.raises(SystemExit):
            main(["compare", "--fault-profile", "catastrophic"])


class TestTable2Command:
    def test_runs_one_day(self, capsys):
        exit_code = main(["table2", "--days", "1", "--cohort-size", "48"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "March 28th, 2009" in captured
        assert "Precision" in captured


class TestConvergenceCommand:
    def test_runs_small_study(self, capsys):
        exit_code = main(["convergence", "--samples", "2", "8", "--groups", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "group-1" in captured


class TestFigureCommand:
    @pytest.mark.parametrize("name", ["fig1a", "fig3"])
    def test_descriptive_figures(self, capsys, name):
        exit_code = main(["figure", name])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "legend" in captured

    def test_fig1b(self, capsys):
        exit_code = main(["figure", "fig1b"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "CDF" in captured

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig9"])


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
