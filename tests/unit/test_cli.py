"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCompareCommand:
    def test_runs_and_prints_table(self, capsys):
        exit_code = main(
            [
                "compare",
                "--users-per-category", "4",
                "--stations", "3",
                "--queries", "3",
                "--seed", "3",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "precision" in captured
        assert "wbf" in captured

    def test_method_selection(self, capsys):
        main(
            [
                "compare",
                "--users-per-category", "4",
                "--stations", "3",
                "--queries", "2",
                "--methods", "naive", "wbf",
            ]
        )
        captured = capsys.readouterr().out
        assert "naive" in captured
        assert " bf " not in captured

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["compare", "--methods", "magic"])

    def test_fault_profile_adds_reliability_columns(self, capsys):
        exit_code = main(
            [
                "compare",
                "--users-per-category", "4",
                "--stations", "3",
                "--queries", "2",
                "--seed", "3",
                "--methods", "naive", "wbf",
                "--fault-profile", "chaos",
                "--net-seed", "5",
                "--allow-partial",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "faults: chaos (net seed 5)" in captured
        assert "retransmits" in captured
        assert "goodput" in captured

    def test_fault_free_table_keeps_legacy_columns(self, capsys):
        main(
            [
                "compare",
                "--users-per-category", "4",
                "--stations", "3",
                "--queries", "2",
                "--seed", "3",
                "--methods", "wbf",
            ]
        )
        captured = capsys.readouterr().out
        assert "retransmits" not in captured
        assert "faults:" not in captured

    def test_rejects_unknown_fault_profile(self):
        with pytest.raises(SystemExit):
            main(["compare", "--fault-profile", "catastrophic"])


class TestTable2Command:
    def test_runs_one_day(self, capsys):
        exit_code = main(["table2", "--days", "1", "--cohort-size", "48"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "March 28th, 2009" in captured
        assert "Precision" in captured


class TestConvergenceCommand:
    def test_runs_small_study(self, capsys):
        exit_code = main(["convergence", "--samples", "2", "8", "--groups", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "group-1" in captured


class TestFigureCommand:
    @pytest.mark.parametrize("name", ["fig1a", "fig3"])
    def test_descriptive_figures(self, capsys, name):
        exit_code = main(["figure", name])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "legend" in captured

    def test_fig1b(self, capsys):
        exit_code = main(["figure", "fig1b"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "CDF" in captured

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig9"])


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCompareErrorPaths:
    def test_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            main(["compare", "--executor", "gpu"])

    def test_rejects_negative_shards(self):
        with pytest.raises(SystemExit):
            main(["compare", "--shards", "-1"])


class TestWorkloadCommand:
    TINY = [
        "--stations", "3", "--users-per-category", "3", "--rounds", "2",
    ]

    def test_list_prints_the_catalog(self, capsys):
        exit_code = main(["workload", "list"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        for name in ("steady-state", "flash-crowd", "degraded-network"):
            assert name in captured

    def test_run_prints_rounds_and_summary(self, capsys):
        exit_code = main(["workload", "run", "steady-state", *self.TINY])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario: steady-state" in captured
        assert "precision" in captured
        assert "p99" in captured

    def test_faulty_scenario_prints_reliability_columns(self, capsys):
        exit_code = main(["workload", "run", "degraded-network", *self.TINY])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "goodput" in captured
        assert "retransmits" in captured

    def test_session_drive_runs(self, capsys):
        exit_code = main(
            ["workload", "run", "long-session", *self.TINY, "--drive", "session"]
        )
        assert exit_code == 0
        assert "drive session" in capsys.readouterr().out

    def test_json_dir_writes_bench_file(self, capsys, tmp_path):
        exit_code = main(
            ["workload", "run", "steady-state", *self.TINY, "--json-dir", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "BENCH_workload_steady_state.json").exists()

    def test_seed_override_changes_the_run_identity(self, capsys):
        main(["workload", "run", "steady-state", *self.TINY, "--seed", "99"])
        assert "seed 99" in capsys.readouterr().out

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["workload", "run", "black-friday"])

    def test_rejects_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main(["workload"])

    def test_rejects_unknown_drive(self):
        with pytest.raises(SystemExit):
            main(["workload", "run", "steady-state", "--drive", "teleport"])

    def test_rejects_bad_executor(self):
        with pytest.raises(SystemExit):
            main(["workload", "run", "steady-state", "--executor", "gpu"])

    def test_rejects_non_positive_rounds(self):
        with pytest.raises(SystemExit):
            main(["workload", "run", "steady-state", "--rounds", "0"])

    def test_rejects_non_positive_stations(self):
        with pytest.raises(SystemExit):
            main(["workload", "run", "steady-state", "--stations", "-2"])

    def test_rejects_unknown_fault_profile(self):
        with pytest.raises(SystemExit):
            main(["workload", "run", "steady-state", "--fault-profile", "catastrophic"])

    def test_arrival_rate_implies_the_open_drive(self, capsys):
        exit_code = main(
            ["workload", "run", "steady-state", *self.TINY,
             "--arrival-rate", "4", "--max-arrivals", "6",
             "--ramp", "plateau:2"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "drive open" in captured
        assert "offered 4 qps" in captured
        assert "queue s" in captured
        assert "arrival s" in captured
        assert "phase plateau:" in captured

    def test_open_scenario_carries_its_own_offered_load(self, capsys):
        exit_code = main(
            ["workload", "run", "open-ramp", *self.TINY, "--drive", "open",
             "--max-arrivals", "8"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        # The scenario's four-phase ramp shows up in the per-phase summary.
        assert "offered 4 qps" in captured
        assert "phase warm-up:" in captured
        assert "phase drain:" in captured
        assert "no arrivals" in captured

    def test_ramp_flag_overrides_the_schedule(self, capsys):
        exit_code = main(
            ["workload", "run", "open-steady", *self.TINY, "--drive", "open",
             "--ramp", "burst:1:2,quiet:1:0", "--arrival-process", "scheduled",
             "--max-arrivals", "4"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "scheduled, 2 phases" in captured
        assert "phase burst:" in captured
        assert "phase quiet:" in captured

    def test_open_runs_are_deterministic(self, capsys):
        argv = [
            "workload", "run", "open-saturation", *self.TINY,
            "--drive", "open", "--max-arrivals", "6",
        ]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_rejects_open_flags_on_closed_drives(self):
        with pytest.raises(SystemExit, match="apply only to --drive open"):
            main(
                ["workload", "run", "steady-state", *self.TINY,
                 "--drive", "simulation", "--arrival-rate", "4"]
            )

    def test_rejects_open_drive_without_an_offered_load(self):
        with pytest.raises(SystemExit, match="offered load"):
            main(["workload", "run", "steady-state", *self.TINY, "--drive", "open"])

    def test_rejects_malformed_ramp_phases(self):
        for ramp in ("", "plateau", "plateau:zero", "p:1:1:1", "a:1,a:2"):
            with pytest.raises(SystemExit):
                main(
                    ["workload", "run", "open-steady", "--drive", "open",
                     "--ramp", ramp]
                )

    def test_rejects_non_positive_arrival_rate(self):
        with pytest.raises(SystemExit):
            main(["workload", "run", "open-steady", "--arrival-rate", "0"])

    def test_rejects_executor_knobs_on_the_session_drive(self):
        # The session drive matches in-process; silently ignoring the knob
        # would misrepresent what was measured.
        with pytest.raises(SystemExit, match="session drive"):
            main(
                ["workload", "run", "steady-state", *self.TINY,
                 "--drive", "session", "--executor", "process"]
            )
        with pytest.raises(SystemExit, match="session drive"):
            main(
                ["workload", "run", "steady-state", *self.TINY,
                 "--drive", "session", "--shards", "4"]
            )


class TestWorkloadTopologyFlags:
    TINY = [
        "--stations", "3", "--users-per-category", "3", "--rounds", "2",
    ]

    def test_two_tier_override_prints_the_topology_header(self, capsys):
        exit_code = main(
            ["workload", "run", "steady-state", *self.TINY,
             "--topology", "two-tier", "--regions", "2"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "topology two-tier (2 regions)" in captured

    def test_hier_scenarios_run_from_the_catalog(self, capsys):
        for name in ("hier-steady", "hier-degraded-region"):
            exit_code = main(["workload", "run", name, *self.TINY])
            assert exit_code == 0
            assert "topology two-tier" in capsys.readouterr().out

    def test_tenant_flag_prints_per_tenant_summaries(self, capsys):
        exit_code = main(
            ["workload", "run", "steady-state", *self.TINY, "--tenants", "2"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "2 tenants" in captured
        assert "tenant tenant-0:" in captured
        assert "tenant tenant-1:" in captured

    def test_multi_tenant_scenario_runs_with_named_tenants(self, capsys):
        exit_code = main(["workload", "run", "multi-tenant-skew", *self.TINY])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "tenant hot:" in captured
        assert "tenant broad:" in captured

    def test_rejects_unknown_topology_kind(self):
        with pytest.raises(SystemExit):
            main(
                ["workload", "run", "steady-state", *self.TINY,
                 "--topology", "ring"]
            )

    def test_rejects_more_regions_than_stations(self):
        with pytest.raises(SystemExit, match="must not exceed stations"):
            main(
                ["workload", "run", "steady-state", *self.TINY,
                 "--topology", "two-tier", "--regions", "5"]
            )

    def test_rejects_regions_on_the_flat_star(self):
        with pytest.raises(SystemExit, match="applies only to --topology two-tier"):
            main(
                ["workload", "run", "steady-state", *self.TINY,
                 "--topology", "star", "--regions", "2"]
            )

    def test_rejects_tenants_on_the_open_drive(self):
        with pytest.raises(SystemExit, match="closed-loop"):
            main(
                ["workload", "run", "open-steady", *self.TINY,
                 "--drive", "open", "--tenants", "2"]
            )

    def test_rejects_non_positive_region_and_tenant_counts(self):
        with pytest.raises(SystemExit):
            main(
                ["workload", "run", "steady-state", *self.TINY,
                 "--topology", "two-tier", "--regions", "0"]
            )
        with pytest.raises(SystemExit):
            main(
                ["workload", "run", "steady-state", *self.TINY, "--tenants", "0"]
            )
