"""Lazy station-batch generation: determinism, the resident cap, the bridge."""

import pytest

from repro.datagen.streaming import StreamingStationSource, iter_station_batches


def _source(**overrides: object) -> StreamingStationSource:
    fields = dict(
        station_count=10,
        users_per_station=4,
        pattern_length=12,
        fragments_per_user=2,
        active_intervals=6,
        seed=42,
        max_resident=4,
    )
    fields.update(overrides)
    return StreamingStationSource(**fields)


class TestValidation:
    def test_rejects_non_positive_knobs(self):
        for field in (
            "station_count",
            "users_per_station",
            "pattern_length",
            "fragments_per_user",
            "active_intervals",
            "max_resident",
        ):
            with pytest.raises((TypeError, ValueError)):
                _source(**{field: 0})

    def test_rejects_more_fragments_than_stations(self):
        with pytest.raises(ValueError, match="fragments_per_user"):
            _source(station_count=2, fragments_per_user=3)

    def test_rejects_more_active_intervals_than_pattern(self):
        with pytest.raises(ValueError, match="active_intervals"):
            _source(pattern_length=4, active_intervals=5)

    def test_unknown_station_and_user_raise(self):
        source = _source()
        with pytest.raises(KeyError):
            source.station_batch("s99999")
        with pytest.raises(KeyError):
            source.fragments_of("u9999999")


class TestLazyBatches:
    def test_nothing_is_resident_until_touched(self):
        source = _source()
        assert source.user_count == 40
        assert len(source.station_ids) == 10
        assert source.resident_count == 0
        assert source.built_count == 0

    def test_every_fragment_lands_at_its_claimed_station(self):
        source = _source()
        for station_id in source.station_ids:
            for user_id, fragment in source.station_batch(station_id).items():
                assert fragment.user_id == user_id
                assert fragment.station_id == station_id

    def test_batches_agree_with_per_user_fragments(self):
        source = _source()
        # Collect the city two ways: via station batches and via user streams.
        by_station = {}
        for station_id in source.station_ids:
            for user_id, fragment in source.station_batch(station_id).items():
                by_station[(user_id, station_id)] = fragment.values
        by_user = {}
        for station_id in source.station_ids:
            for user_id in source.user_ids_for(station_id):
                for fragment in source.fragments_of(user_id):
                    by_user[(user_id, fragment.station_id)] = fragment.values
        assert by_station == by_user

    def test_resident_set_is_bounded_and_lru(self):
        source = _source(max_resident=3)
        stations = source.station_ids
        for station_id in stations:
            source.station_batch(station_id)
            assert source.resident_count <= 3
        assert source.built_count == 10
        assert source.eviction_count == 7
        # The last three touched are resident: re-touching them builds nothing.
        for station_id in stations[-3:]:
            source.station_batch(station_id)
        assert source.built_count == 10
        # A cold station evicts the least recently used one.
        source.station_batch(stations[0])
        assert source.built_count == 11
        assert source.eviction_count == 8

    def test_retire_drops_a_batch_explicitly(self):
        source = _source()
        station_id = source.station_ids[0]
        source.station_batch(station_id)
        assert source.retire(station_id) is True
        assert source.resident_count == 0
        assert source.retire(station_id) is False
        # Re-touching rebuilds — to identical content.
        first = {u: f.values for u, f in source.station_batch(station_id).items()}
        source.retire(station_id)
        second = {u: f.values for u, f in source.station_batch(station_id).items()}
        assert first == second

    def test_iter_station_batches_sweeps_without_accumulating(self):
        source = _source(max_resident=8)
        seen = []
        for station_id, patterns in iter_station_batches(source):
            seen.append(station_id)
            assert len(patterns) > 0
            assert source.resident_count <= 1
        assert seen == source.station_ids
        assert source.resident_count == 0


class TestDeterminism:
    def test_two_sources_agree_regardless_of_access_order(self):
        first = _source()
        second = _source()
        for station_id in first.station_ids:
            left = first.station_batch(station_id)
            right = second.station_batch(station_id)
            assert {u: f.values for u, f in left.items()} == {
                u: f.values for u, f in right.items()
            }
        # Access order (and evictions in between) never changes content.
        shuffled = list(reversed(first.station_ids))
        third = _source(max_resident=1)
        for station_id in shuffled:
            assert {
                u: f.values for u, f in third.station_batch(station_id).items()
            } == {u: f.values for u, f in first.station_batch(station_id).items()}

    def test_seed_changes_the_city(self):
        baseline = _source()
        reseeded = _source(seed=43)
        station_id = baseline.station_ids[0]
        assert {
            u: f.values for u, f in baseline.station_batch(station_id).items()
        } != {u: f.values for u, f in reseeded.station_batch(station_id).items()}

    def test_queries_never_build_station_batches(self):
        source = _source()
        queries = source.sample_queries(5)
        assert len(queries) == 5
        assert source.built_count == 0
        assert source.resident_count == 0
        assert queries == source.sample_queries(5)  # and they are deterministic

    def test_query_sampling_derives_from_the_source_seed(self):
        # No explicit seed: the draw comes from the source's own identity,
        # so differently-seeded sources sample different exemplars.
        baseline = [q.query_id for q in _source().sample_queries(4)]
        reseeded = [q.query_id for q in _source(seed=43).sample_queries(4)]
        assert baseline != reseeded
        # An explicit seed overrides the identity: both sources then pick
        # the same exemplar ids (content still differs with the city).
        left = [q.query_id for q in _source().sample_queries(4, seed=7)]
        right = [q.query_id for q in _source(seed=43).sample_queries(4, seed=7)]
        assert left == right

    def test_query_fragments_match_the_station_batches(self):
        source = _source()
        query = source.query_for("u0000003")
        for fragment in query.local_patterns:
            stored = source.station_batch(fragment.station_id)["u0000003"]
            assert stored.values == fragment.values


class TestMaterialize:
    def test_materialize_is_deprecated_in_favor_of_source_adoption(self):
        source = _source()
        with pytest.warns(DeprecationWarning, match="Cluster\\(spec, source="):
            dataset = source.materialize()
        assert dataset.station_ids == source.station_ids

    def test_full_materialization_matches_the_lazy_view(self):
        source = _source()
        with pytest.warns(DeprecationWarning):
            dataset = source.materialize()
        assert dataset.station_ids == source.station_ids
        assert len(dataset.user_ids) == source.user_count
        for station_id in source.station_ids:
            lazy = source.local_patterns_at(station_id)
            eager = dataset.local_patterns_at(station_id)
            assert {p.user_id: p.values for p in lazy} == {
                p.user_id: p.values for p in eager
            }

    def test_subset_materialization_only_builds_the_subset(self):
        source = _source()
        chosen = source.station_ids[:3]
        with pytest.warns(DeprecationWarning):
            dataset = source.materialize(chosen)
        assert dataset.station_ids == chosen
        # Users appear iff they store a fragment on an included station, and
        # only those fragments are present.
        for user_id in dataset.user_ids:
            stations = {f.station_id for f in source.fragments_of(user_id)}
            assert stations & set(chosen)
        with pytest.warns(DeprecationWarning), pytest.raises(KeyError):
            source.materialize(["nope"])
