"""The StationSource boundary: protocol conformance, specs, the eager wrapper."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.datagen import (
    DatasetStationSource,
    SourceSpec,
    StationSource,
    StationSourceBase,
)
from repro.datagen.streaming import StreamingStationSource
from repro.datagen.workload import DatasetSpec, build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(
        DatasetSpec(
            users_per_category=4,
            station_count=4,
            days=1,
            intervals_per_day=24,
            noise_level=0,
            seed=2026,
        )
    )


@pytest.fixture(scope="module")
def eager_source(dataset):
    return DatasetStationSource(dataset)


@pytest.fixture(scope="module")
def streaming_source():
    return SourceSpec(
        kind="streaming",
        station_count=6,
        users_per_station=4,
        max_resident=3,
        seed=42,
    ).build()


class TestProtocolConformance:
    def test_both_implementations_satisfy_the_protocol(
        self, eager_source, streaming_source
    ):
        assert isinstance(eager_source, StationSource)
        assert isinstance(streaming_source, StationSource)
        assert isinstance(eager_source, StationSourceBase)
        assert isinstance(streaming_source, StationSourceBase)

    def test_an_unrelated_object_does_not(self):
        assert not isinstance(object(), StationSource)

    def test_resident_cap_distinguishes_the_serving_modes(
        self, eager_source, streaming_source
    ):
        # None = fully materialized; an int = LRU-bounded streaming.
        assert eager_source.resident_cap is None
        assert streaming_source.resident_cap == 3

    def test_base_supplies_patterns_and_retire_defaults(self, streaming_source):
        station_id = streaming_source.station_ids[0]
        patterns = streaming_source.local_patterns_at(station_id)
        assert len(patterns) > 0
        assert {p.user_id for p in patterns} == set(
            streaming_source.station_batch(station_id)
        )


class TestDatasetStationSource:
    def test_declares_the_wrapped_city(self, dataset, eager_source):
        assert eager_source.station_ids == tuple(dataset.station_ids)
        assert eager_source.user_count == dataset.user_count
        assert eager_source.pattern_length == dataset.pattern_length
        assert eager_source.resident_count == len(dataset.station_ids)
        assert eager_source.dataset is dataset

    def test_local_patterns_preserve_dataset_identity(self, dataset, eager_source):
        for station_id in dataset.station_ids:
            theirs = dataset.local_patterns_at(station_id)
            ours = eager_source.local_patterns_at(station_id)
            assert {p.user_id: list(p.values) for p in ours} == {
                p.user_id: list(p.values) for p in theirs
            }

    def test_retire_declines_everything_stays_resident(self, eager_source):
        station_id = eager_source.station_ids[0]
        assert eager_source.retire(station_id) is False
        assert eager_source.resident_count == len(eager_source.station_ids)

    def test_exemplars_are_the_sorted_non_decoy_pool(self, dataset, eager_source):
        expected = [
            user_id
            for user_id in sorted(dataset.user_ids)
            if not dataset.profile(user_id).is_decoy
        ]
        assert eager_source.exemplar_count == len(expected)
        query = eager_source.exemplar_query(0)
        assert query.query_id == f"q-{expected[0]}"
        assert all(p.user_id == expected[0] for p in query.local_patterns)

    def test_ground_truth_is_the_exact_scan(self, dataset, eager_source):
        from repro.evaluation.experiments import ground_truth_users

        queries = [eager_source.exemplar_query(i) for i in range(3)]
        assert eager_source.ground_truth(queries, 0.0) == frozenset(
            ground_truth_users(dataset, queries, 0.0)
        )


class TestStreamingExemplars:
    def test_exemplar_space_covers_the_declared_census(self, streaming_source):
        assert streaming_source.exemplar_count == streaming_source.user_count

    def test_exemplar_queries_never_build_batches(self):
        source = SourceSpec(
            kind="streaming", station_count=6, users_per_station=4, seed=42
        ).build()
        query = source.exemplar_query(5)
        assert query.local_patterns
        assert source.built_count == 0
        with pytest.raises(IndexError):
            source.exemplar_query(source.exemplar_count)
        with pytest.raises(IndexError):
            source.exemplar_query(-1)

    def test_exemplar_ground_truth_is_the_label_set(self, streaming_source):
        queries = [streaming_source.exemplar_query(i) for i in (0, 3)]
        truth = streaming_source.ground_truth(queries, 0.0)
        assert truth == {"u0000000", "u0000003"}


class TestSourceSpec:
    def test_defaults_are_a_valid_eager_spec(self):
        spec = SourceSpec()
        assert spec.kind == "eager"
        assert spec.pattern_length == 24
        assert spec.dataset_spec().station_count == spec.station_count

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="source kind"):
            SourceSpec(kind="oracular")

    def test_rejects_non_positive_shape_knobs(self):
        for field in ("station_count", "users_per_station", "max_resident"):
            with pytest.raises(ConfigurationError, match=field):
                SourceSpec(kind="streaming", **{field: 0})

    def test_stations_per_round_is_streaming_only_and_bounded(self):
        with pytest.raises(ConfigurationError, match="streaming-source knob"):
            SourceSpec(kind="eager", stations_per_round=2)
        with pytest.raises(ConfigurationError, match="stations_per_round"):
            SourceSpec(kind="streaming", station_count=4, stations_per_round=5)
        spec = SourceSpec(kind="streaming", station_count=4, stations_per_round=4)
        assert spec.stations_per_round == 4

    def test_streaming_layout_constraints(self):
        with pytest.raises(ConfigurationError, match="fragments_per_user"):
            SourceSpec(kind="streaming", station_count=2, fragments_per_user=3)
        with pytest.raises(ConfigurationError, match="active_intervals"):
            SourceSpec(kind="streaming", days=1, intervals_per_day=4)

    def test_declared_user_count_scales_with_the_kind(self):
        streaming = SourceSpec(
            kind="streaming", station_count=100, users_per_station=50
        )
        assert streaming.declared_user_count == 5_000
        eager = SourceSpec(kind="eager")
        assert eager.declared_user_count == eager.dataset_spec().user_count

    def test_eager_spec_has_no_streaming_build_and_vice_versa(self):
        with pytest.raises(ConfigurationError, match="no eager DatasetSpec"):
            SourceSpec(kind="streaming").dataset_spec()

    def test_build_dispatches_on_kind(self):
        eager = SourceSpec(kind="eager", users_per_category=4, station_count=3).build()
        assert isinstance(eager, DatasetStationSource)
        streaming = SourceSpec(
            kind="streaming", station_count=3, users_per_station=2
        ).build()
        assert isinstance(streaming, StreamingStationSource)
        assert streaming.resident_cap == SourceSpec().max_resident

    def test_build_threads_the_seed(self):
        spec = SourceSpec(kind="streaming", station_count=3, users_per_station=2)
        # None inherits the caller's default seed; an explicit seed wins.
        a = spec.build(default_seed=11)
        b = spec.with_updates(seed=11).build(default_seed=99)
        sid = a.station_ids[0]
        assert {u: f.values for u, f in a.station_batch(sid).items()} == {
            u: f.values for u, f in b.station_batch(sid).items()
        }

    def test_with_updates_revalidates(self):
        spec = SourceSpec(kind="streaming", station_count=4, stations_per_round=4)
        with pytest.raises(ConfigurationError):
            spec.with_updates(station_count=2)
