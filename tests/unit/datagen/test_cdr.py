"""Unit tests for CDR records and aggregation."""

import pytest

from repro.datagen.cdr import (
    CallDetailRecord,
    CallType,
    CellDetailListEntry,
    aggregate_records_to_attributes,
)


def _record(start, duration=60, caller="u1", callee="p1", station="bs-1"):
    return CallDetailRecord(
        caller_id=caller,
        callee_id=callee,
        station_id=station,
        start_time_s=start,
        duration_s=duration,
    )


class TestCallDetailRecord:
    def test_construction(self):
        record = _record(10)
        assert record.call_type is CallType.OUTGOING
        assert record.size_bytes() > 0

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            _record(-1)
        with pytest.raises(ValueError):
            _record(0, duration=-5)


class TestCellDetailListEntry:
    def test_construction(self):
        entry = CellDetailListEntry("bs-1", 1.0, 2.0)
        assert entry.station_id == "bs-1"


class TestAggregation:
    def test_counts_calls_per_interval(self):
        records = [_record(10), _record(20), _record(3700)]
        attrs = aggregate_records_to_attributes(records, "u1", 3600, 2)
        assert attrs[0].call_count == 2
        assert attrs[1].call_count == 1

    def test_sums_durations(self):
        records = [_record(0, duration=30), _record(5, duration=45)]
        attrs = aggregate_records_to_attributes(records, "u1", 3600, 1)
        assert attrs[0].call_duration == 75

    def test_counts_distinct_partners(self):
        records = [
            _record(0, callee="a"),
            _record(1, callee="a"),
            _record(2, callee="b"),
        ]
        attrs = aggregate_records_to_attributes(records, "u1", 3600, 1)
        assert attrs[0].partner_count == 2

    def test_ignores_other_callers(self):
        records = [_record(0, caller="someone-else")]
        attrs = aggregate_records_to_attributes(records, "u1", 3600, 1)
        assert attrs[0].call_count == 0

    def test_ignores_records_beyond_horizon(self):
        records = [_record(3600 * 5)]
        attrs = aggregate_records_to_attributes(records, "u1", 3600, 2)
        assert all(a.call_count == 0 for a in attrs)

    def test_returns_requested_interval_count(self):
        attrs = aggregate_records_to_attributes([], "u1", 60, 10)
        assert len(attrs) == 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            aggregate_records_to_attributes([], "u1", 0, 1)
        with pytest.raises(ValueError):
            aggregate_records_to_attributes([], "u1", 60, 0)
