"""Unit tests for the ground-truth cohort (Data set 2 substitute)."""

import pytest

from repro.datagen.ground_truth import (
    PAPER_COHORT_SIZE,
    PAPER_STUDY_DAYS,
    build_ground_truth_cohort,
)


class TestBuildGroundTruthCohort:
    def test_day_labels_match_paper(self):
        for day_index, label in enumerate(PAPER_STUDY_DAYS):
            cohort = build_ground_truth_cohort(day_index, cohort_size=60)
            assert cohort.day_label == label

    def test_extra_days_get_synthetic_labels(self):
        cohort = build_ground_truth_cohort(10, cohort_size=60)
        assert "synthetic day" in cohort.day_label

    def test_cohort_size_is_exactly_the_requested_one(self):
        # The old rounding (`max(1, round(size / categories))` per category)
        # silently drifted by up to half a category; the remainder is now
        # distributed deterministically, so the realized cohort is exact.
        for cohort_size in (PAPER_COHORT_SIZE, 310, 61, 6, 7, 11):
            cohort = build_ground_truth_cohort(0, cohort_size=cohort_size)
            regular_users = [
                u
                for u in cohort.dataset.user_ids
                if not cohort.dataset.profile(u).is_decoy
            ]
            assert len(regular_users) == cohort_size

    def test_remainder_spreads_across_the_leading_categories(self):
        # 310 over 6 categories: 4 categories of 52 users, 2 of 51 — never
        # six rounded-up (or down) copies of the same count.
        cohort = build_ground_truth_cohort(0, cohort_size=310)
        categories = set(cohort.labels.values())
        sizes = sorted(
            (
                sum(
                    1
                    for user_id in cohort.members_of(category)
                    if not cohort.dataset.profile(user_id).is_decoy
                )
                for category in categories
            ),
            reverse=True,
        )
        assert sizes == [52, 52, 52, 52, 51, 51]

    def test_six_categories_present(self):
        cohort = build_ground_truth_cohort(0, cohort_size=60)
        categories = {cohort.dataset.category_of(u) for u in cohort.dataset.user_ids}
        assert len(categories) == 6

    def test_labels_mapping(self):
        cohort = build_ground_truth_cohort(0, cohort_size=60)
        labels = cohort.labels
        assert set(labels.keys()) == set(cohort.dataset.user_ids)

    def test_members_of(self):
        cohort = build_ground_truth_cohort(0, cohort_size=60)
        members = cohort.members_of("student")
        assert members
        assert all(cohort.dataset.category_of(u) == "student" for u in members)

    def test_days_differ(self):
        first = build_ground_truth_cohort(0, cohort_size=60)
        second = build_ground_truth_cohort(1, cohort_size=60)
        shared = set(first.dataset.user_ids) & set(second.dataset.user_ids)
        differing = [
            u
            for u in list(shared)[:20]
            if first.dataset.global_pattern(u).values != second.dataset.global_pattern(u).values
        ]
        assert differing

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_ground_truth_cohort(-1)
        with pytest.raises(ValueError):
            build_ground_truth_cohort(0, cohort_size=0)
