"""Unit tests for the occupation-category profiles."""

import pytest

from repro.datagen.categories import (
    HOURS_PER_DAY,
    CategoryProfile,
    PlaceSlot,
    default_categories,
    get_category,
)


class TestDefaultCategories:
    def test_six_categories(self):
        assert len(default_categories()) == 6

    def test_unique_names(self):
        names = [c.name for c in default_categories()]
        assert len(names) == len(set(names))

    def test_profiles_cover_all_hours(self):
        for category in default_categories():
            assert len(category.hourly_activity) == HOURS_PER_DAY
            assert len(category.place_schedule) == HOURS_PER_DAY

    def test_activity_levels_valid(self):
        for category in default_categories():
            assert all(0.0 <= level <= 1.0 for level in category.hourly_activity)

    def test_every_category_has_home_hours(self):
        for category in default_categories():
            assert PlaceSlot.HOME in category.place_schedule

    def test_categories_are_mutually_distinguishable(self):
        profiles = default_categories()
        signatures = {tuple(c.hourly_activity) for c in profiles}
        assert len(signatures) == len(profiles)

    def test_night_shift_is_active_at_night(self):
        night = get_category("night_shift")
        office = get_category("office_worker")
        assert night.activity_at(2) > office.activity_at(2)
        assert office.activity_at(10) > night.activity_at(10)


class TestCategoryProfile:
    def test_activity_at_wraps_around(self):
        category = default_categories()[0]
        assert category.activity_at(25) == category.activity_at(1)

    def test_place_at_wraps_around(self):
        category = default_categories()[0]
        assert category.place_at(24) == category.place_at(0)

    def test_invalid_activity_length_rejected(self):
        with pytest.raises(ValueError):
            CategoryProfile(
                name="bad",
                description="",
                hourly_activity=(0.5,) * 23,
                place_schedule=(PlaceSlot.HOME,) * 24,
                base_call_count=1,
                base_call_duration=1,
                base_partner_count=1,
            )

    def test_invalid_activity_value_rejected(self):
        with pytest.raises(ValueError):
            CategoryProfile(
                name="bad",
                description="",
                hourly_activity=(1.5,) + (0.5,) * 23,
                place_schedule=(PlaceSlot.HOME,) * 24,
                base_call_count=1,
                base_call_duration=1,
                base_partner_count=1,
            )

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            CategoryProfile(
                name="bad",
                description="",
                hourly_activity=(0.5,) * 24,
                place_schedule=(PlaceSlot.HOME,) * 24,
                base_call_count=-1,
                base_call_duration=1,
                base_partner_count=1,
            )


class TestGetCategory:
    def test_lookup_by_name(self):
        assert get_category("student").name == "student"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown category"):
            get_category("astronaut")
