"""Unit tests for the synthetic value / CDR generators."""

import pytest

from repro.datagen.categories import PlaceSlot, get_category
from repro.datagen.cdr import aggregate_records_to_attributes
from repro.datagen.generator import (
    CallGenerationSpec,
    SyntheticCdrGenerator,
    apply_timing_jitter,
    generate_user_interval_values,
    hour_of_day_for_interval,
    synthesize_interval_attributes,
)
from repro.utils.rng import make_rng


class TestHourMapping:
    def test_hourly_intervals(self):
        assert hour_of_day_for_interval(0, 24) == 0
        assert hour_of_day_for_interval(25, 24) == 1

    def test_six_hour_intervals(self):
        assert hour_of_day_for_interval(1, 4) == 6
        assert hour_of_day_for_interval(3, 4) == 18

    def test_fifteen_minute_intervals(self):
        assert hour_of_day_for_interval(4, 96) == 1

    def test_invalid_intervals_per_day(self):
        with pytest.raises(ValueError):
            hour_of_day_for_interval(0, 0)


class TestSynthesizeAttributes:
    def test_attributes_scale_with_activity(self):
        category = get_category("office_worker")
        rng = make_rng(1)
        peak = synthesize_interval_attributes(category, 10, 24, rng)
        night = synthesize_interval_attributes(category, 3, 24, rng)
        assert peak.call_count > night.call_count


class TestTimingJitter:
    def test_preserves_total_activity(self):
        values = [5, 0, 3, 2, 8, 0, 1]
        jittered = apply_timing_jitter(values, make_rng(3), noise_level=2)
        assert sum(jittered) == sum(values)

    def test_keeps_values_non_negative(self):
        values = [1, 0, 0, 0, 1]
        jittered = apply_timing_jitter(values, make_rng(5), noise_level=3)
        assert all(v >= 0 for v in jittered)

    def test_zero_noise_is_identity(self):
        values = [1, 2, 3]
        assert apply_timing_jitter(values, make_rng(1), noise_level=0) == values

    def test_does_not_mutate_input(self):
        values = [4, 4, 4, 4]
        apply_timing_jitter(values, make_rng(1), noise_level=2)
        assert values == [4, 4, 4, 4]


class TestGenerateUserIntervalValues:
    def test_length(self):
        values = generate_user_interval_values(
            get_category("student"), 48, 24, make_rng(1), noise_level=0
        )
        assert len(values) == 48

    def test_non_negative_integers(self):
        values = generate_user_interval_values(
            get_category("student"), 24, 24, make_rng(2), noise_level=1
        )
        assert all(isinstance(v, int) and v >= 0 for v in values)

    def test_daily_periodicity_without_noise(self):
        values = generate_user_interval_values(
            get_category("office_worker"), 48, 24, make_rng(3), noise_level=0
        )
        assert values[:24] == values[24:]

    def test_deterministic_for_same_rng_seed(self):
        a = generate_user_interval_values(get_category("retiree"), 24, 24, make_rng(7))
        b = generate_user_interval_values(get_category("retiree"), 24, 24, make_rng(7))
        assert a == b

    def test_place_offsets_shift_active_intervals(self):
        category = get_category("office_worker")
        plain = generate_user_interval_values(category, 24, 24, make_rng(4), noise_level=0)
        offset = generate_user_interval_values(
            category,
            24,
            24,
            make_rng(4),
            noise_level=0,
            place_offsets={PlaceSlot.WORK: 6, PlaceSlot.HOME: 0, PlaceSlot.OTHER: 0},
        )
        work_hours = [h for h in range(24) if category.place_at(h) == PlaceSlot.WORK and plain[h] > 0]
        assert all(offset[h] == plain[h] + 6 for h in work_hours)
        home_hours = [h for h in range(24) if category.place_at(h) == PlaceSlot.HOME]
        assert all(offset[h] == plain[h] for h in home_hours)

    def test_invalid_interval_count(self):
        with pytest.raises(ValueError):
            generate_user_interval_values(get_category("student"), 0, 24, make_rng(1))


class TestSyntheticCdrGenerator:
    def test_records_reference_serving_station(self):
        category = get_category("field_sales")
        stations = ["bs-a"] * 12 + ["bs-b"] * 12
        generator = SyntheticCdrGenerator()
        records = generator.generate_for_user("u1", category, stations, 24, make_rng(5))
        assert records
        assert {r.station_id for r in records} <= {"bs-a", "bs-b"}

    def test_aggregation_roundtrip_matches_generated_intensity(self):
        category = get_category("field_sales")
        stations = ["bs-a"] * 24
        generator = SyntheticCdrGenerator(CallGenerationSpec(interval_seconds=3600))
        records = generator.generate_for_user("u1", category, stations, 24, make_rng(6))
        attrs = aggregate_records_to_attributes(records, "u1", 3600, 24)
        peak_hour = max(range(24), key=lambda h: category.activity_at(h))
        assert attrs[peak_hour].call_count > 0

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            CallGenerationSpec(interval_seconds=0)

    def test_spec_property(self):
        spec = CallGenerationSpec()
        assert SyntheticCdrGenerator(spec).spec is spec
