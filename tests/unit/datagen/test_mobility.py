"""Unit tests for the mobility model."""

from repro.datagen.categories import PlaceSlot, get_category
from repro.datagen.mobility import UserMobility, assign_mobility
from repro.utils.rng import make_rng


class TestUserMobility:
    def test_station_for_place(self):
        mobility = UserMobility("u1", "home", "work", "other")
        assert mobility.station_for(PlaceSlot.HOME) == "home"
        assert mobility.station_for(PlaceSlot.WORK) == "work"
        assert mobility.station_for(PlaceSlot.OTHER) == "other"

    def test_visited_stations_deduplicated(self):
        mobility = UserMobility("u1", "a", "a", "b")
        assert mobility.visited_stations == ["a", "b"]

    def test_visited_stations_all_distinct(self):
        mobility = UserMobility("u1", "a", "b", "c")
        assert mobility.visited_stations == ["a", "b", "c"]


class TestAssignMobility:
    def test_assignment_uses_known_stations(self):
        stations = [f"bs-{i}" for i in range(5)]
        mobility = assign_mobility("u1", get_category("student"), stations, make_rng(1))
        assert set(mobility.visited_stations) <= set(stations)

    def test_deterministic_for_same_rng(self):
        stations = [f"bs-{i}" for i in range(5)]
        a = assign_mobility("u1", get_category("student"), stations, make_rng(9))
        b = assign_mobility("u1", get_category("student"), stations, make_rng(9))
        assert a == b

    def test_full_colocation_forces_single_station(self):
        stations = [f"bs-{i}" for i in range(5)]
        mobility = assign_mobility(
            "u1", get_category("student"), stations, make_rng(2), colocation_probability=1.0
        )
        assert len(mobility.visited_stations) == 1

    def test_single_station_city(self):
        mobility = assign_mobility("u1", get_category("student"), ["only"], make_rng(3))
        assert mobility.visited_stations == ["only"]

    def test_zero_colocation_usually_splits(self):
        stations = [f"bs-{i}" for i in range(20)]
        split_counts = [
            len(
                assign_mobility(
                    f"u{i}",
                    get_category("office_worker"),
                    stations,
                    make_rng(i),
                    colocation_probability=0.0,
                ).visited_stations
            )
            for i in range(30)
        ]
        assert sum(1 for c in split_counts if c >= 2) > 20
