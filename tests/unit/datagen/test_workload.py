"""Unit tests for dataset and query-workload construction."""

import pytest

from repro.datagen.workload import (
    DatasetSpec,
    DistributedDataset,
    build_dataset,
    build_query_workload,
)
from repro.timeseries.pattern import LocalPattern


class TestDatasetSpec:
    def test_defaults_are_valid(self):
        spec = DatasetSpec()
        assert spec.interval_count == 24
        assert spec.user_count > 0

    def test_interval_count(self):
        assert DatasetSpec(days=2, intervals_per_day=48).interval_count == 96

    def test_user_count_includes_decoys(self):
        spec = DatasetSpec(users_per_category=5, replicated_decoys_per_category=2)
        assert spec.user_count == (5 + 2) * len(spec.categories)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DatasetSpec(users_per_category=0)
        with pytest.raises(ValueError):
            DatasetSpec(station_count=0)
        with pytest.raises(ValueError):
            DatasetSpec(cliques_per_place=0)

    def test_category_user_counts_overrides_the_uniform_split(self):
        spec = DatasetSpec(users_per_category=5)
        counts = tuple(
            3 + (1 if index < 2 else 0) for index in range(len(spec.categories))
        )
        spec = DatasetSpec(users_per_category=5, category_user_counts=counts)
        assert [
            spec.regular_users_in(index) for index in range(len(spec.categories))
        ] == list(counts)
        assert spec.user_count == sum(counts) + 2 * len(spec.categories)

    def test_category_user_counts_validation(self):
        category_count = len(DatasetSpec().categories)
        with pytest.raises(ValueError, match="one entry per category"):
            DatasetSpec(category_user_counts=(1,))
        with pytest.raises(ValueError):
            DatasetSpec(category_user_counts=(-1,) * category_count)
        with pytest.raises(ValueError, match="at least one user"):
            DatasetSpec(category_user_counts=(0,) * category_count)

    def test_uneven_category_counts_build_exactly(self):
        category_count = len(DatasetSpec().categories)
        counts = tuple(
            2 + (1 if index < 1 else 0) for index in range(category_count)
        )
        spec = DatasetSpec(
            users_per_category=2,
            station_count=4,
            category_user_counts=counts,
            replicated_decoys_per_category=0,
        )
        dataset = build_dataset(spec)
        assert len(dataset.user_ids) == sum(counts)
        per_category = [
            len(dataset.users_in_category(category.name))
            for category in spec.categories
        ]
        assert per_category == list(counts)


class TestBuildDataset:
    def test_dataset_shape(self, small_dataset, small_spec):
        assert small_dataset.station_count == small_spec.station_count
        assert small_dataset.user_count == small_spec.user_count
        assert small_dataset.pattern_length == small_spec.interval_count

    def test_every_user_has_local_patterns(self, small_dataset):
        for user_id in small_dataset.user_ids:
            fragments = small_dataset.local_patterns_for(user_id)
            assert fragments
            assert all(isinstance(f, LocalPattern) for f in fragments)

    def test_global_pattern_is_sum_of_fragments(self, small_dataset):
        for user_id in small_dataset.user_ids[:10]:
            fragments = small_dataset.local_patterns_for(user_id)
            summed = [0] * small_dataset.pattern_length
            for fragment in fragments:
                for index, value in enumerate(fragment.values):
                    summed[index] += value
            assert list(small_dataset.global_pattern(user_id).values) == summed

    def test_fragments_stored_at_distinct_stations(self, small_dataset):
        for user_id in small_dataset.user_ids[:10]:
            stations = [f.station_id for f in small_dataset.local_patterns_for(user_id)]
            assert len(stations) == len(set(stations))

    def test_no_all_zero_fragments_unless_only_fragment(self, small_dataset):
        for user_id in small_dataset.user_ids:
            fragments = small_dataset.local_patterns_for(user_id)
            if len(fragments) > 1:
                assert all(any(fragment.values) for fragment in fragments)

    def test_decoys_present_and_marked(self, small_dataset):
        decoys = [u for u in small_dataset.user_ids if small_dataset.profile(u).is_decoy]
        assert decoys
        for decoy in decoys:
            fragments = small_dataset.local_patterns_for(decoy)
            assert len(fragments) == 2
            assert fragments[0].values == fragments[1].values

    def test_same_clique_members_have_identical_globals_without_noise(self, small_dataset):
        by_group = {}
        for user_id in small_dataset.user_ids:
            profile = small_dataset.profile(user_id)
            if profile.is_decoy:
                continue
            key = (profile.category_name, profile.clique_assignment)
            by_group.setdefault(key, []).append(user_id)
        multi_member = [members for members in by_group.values() if len(members) > 1]
        assert multi_member
        for members in multi_member:
            reference = small_dataset.global_pattern(members[0]).values
            assert all(
                small_dataset.global_pattern(m).values == reference for m in members[1:]
            )

    def test_different_cliques_differ(self, small_dataset):
        # Cliques whose differing place slot carries no activity (e.g. a retiree's
        # work slot) legitimately coincide, so the check is that every category with
        # several cliques exhibits at least two distinct global shapes.
        by_category = {}
        for user_id in small_dataset.user_ids:
            profile = small_dataset.profile(user_id)
            if profile.is_decoy:
                continue
            by_category.setdefault(profile.category_name, {}).setdefault(
                profile.clique_assignment, user_id
            )
        checked = 0
        for cliques in by_category.values():
            if len(cliques) < 2:
                continue
            checked += 1
            patterns = {
                small_dataset.global_pattern(user_id).values for user_id in cliques.values()
            }
            assert len(patterns) >= 2
        assert checked > 0

    def test_deterministic_given_seed(self, small_spec):
        a = build_dataset(small_spec)
        b = build_dataset(small_spec)
        assert a.user_ids == b.user_ids
        for user_id in a.user_ids[:5]:
            assert a.global_pattern(user_id).values == b.global_pattern(user_id).values

    def test_users_in_category(self, small_dataset):
        members = small_dataset.users_in_category("student")
        assert members
        assert all(small_dataset.category_of(u) == "student" for u in members)

    def test_unknown_user_rejected(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.profile("ghost")
        with pytest.raises(KeyError):
            small_dataset.local_patterns_for("ghost")

    def test_unknown_station_rejected(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.local_patterns_at("bs-unknown")

    def test_similar_users_contains_self(self, small_dataset):
        user_id = small_dataset.user_ids[0]
        similar = small_dataset.similar_users(small_dataset.global_pattern(user_id), 0)
        assert user_id in similar

    def test_total_raw_size_positive(self, small_dataset):
        assert small_dataset.total_raw_size_bytes() > 0


class TestDistributedDatasetValidation:
    def test_rejects_unknown_station_reference(self):
        local = {"bs-x": {"u": LocalPattern("u", [1], "bs-x")}}
        from repro.datagen.mobility import UserMobility
        from repro.datagen.workload import UserProfile

        users = {
            "u": UserProfile("u", "student", UserMobility("u", "bs-x", "bs-x", "bs-x"))
        }
        with pytest.raises(ValueError, match="unknown station"):
            DistributedDataset(["bs-a"], users, local, 1, 24)


class TestBuildQueryWorkload:
    def test_query_count(self, small_dataset):
        workload = build_query_workload(small_dataset, 5, epsilon=0)
        assert len(workload) == 5

    def test_queries_cover_categories_round_robin(self, small_dataset):
        workload = build_query_workload(small_dataset, 6, epsilon=0)
        categories = {
            small_dataset.category_of(q.local_patterns[0].user_id) for q in workload
        }
        assert len(categories) == 6

    def test_queries_never_use_decoys(self, small_dataset):
        workload = build_query_workload(small_dataset, 12, epsilon=0)
        for query in workload:
            assert not small_dataset.profile(query.local_patterns[0].user_id).is_decoy

    def test_queries_prefer_maximally_split_users(self, small_dataset):
        workload = build_query_workload(small_dataset, 12, epsilon=0)
        for query in workload:
            user_id = query.local_patterns[0].user_id
            category = small_dataset.category_of(user_id)
            best = max(
                len(small_dataset.local_patterns_for(u))
                for u in small_dataset.users_in_category(category)
                if not small_dataset.profile(u).is_decoy
            )
            assert query.station_count == best

    def test_query_ids_unique(self, small_dataset):
        workload = build_query_workload(small_dataset, 10, epsilon=0)
        ids = [q.query_id for q in workload]
        assert len(ids) == len(set(ids))

    def test_epsilon_recorded(self, small_dataset):
        assert build_query_workload(small_dataset, 2, epsilon=3).epsilon == 3

    def test_restricting_categories(self, small_dataset):
        workload = build_query_workload(
            small_dataset, 4, epsilon=0, categories=["student"]
        )
        users = {q.local_patterns[0].user_id for q in workload}
        assert all(small_dataset.category_of(u) == "student" for u in users)

    def test_invalid_query_count(self, small_dataset):
        with pytest.raises(ValueError):
            build_query_workload(small_dataset, 0, epsilon=0)

    def test_unknown_category_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            build_query_workload(small_dataset, 2, epsilon=0, categories=["astronaut"])
