"""Unit tests for the city / base-station grid model."""

import pytest

from repro.datagen.city import BaseStationSite, CityGrid


class TestBaseStationSite:
    def test_distance(self):
        site = BaseStationSite("bs", 0.0, 0.0)
        assert site.distance_to(3.0, 4.0) == 5.0


class TestCityGrid:
    def test_station_count_matches_grid(self):
        grid = CityGrid(width_km=30, height_km=20, station_spacing_km=10)
        assert len(grid) == 6

    def test_station_ids_unique(self):
        grid = CityGrid(width_km=40, height_km=40, station_spacing_km=10)
        ids = grid.station_ids
        assert len(ids) == len(set(ids))

    def test_area(self):
        assert CityGrid(30, 20, 10).area_km2 == 600

    def test_sites_inside_city(self):
        grid = CityGrid(30, 30, 10)
        for site in grid.sites:
            assert 0 <= site.x_km <= 30
            assert 0 <= site.y_km <= 30

    def test_site_lookup(self):
        grid = CityGrid(20, 20, 10)
        station_id = grid.station_ids[0]
        assert grid.site(station_id).station_id == station_id

    def test_site_lookup_unknown(self):
        with pytest.raises(KeyError):
            CityGrid(20, 20, 10).site("nope")

    def test_nearest_station(self):
        grid = CityGrid(20, 20, 10)
        site = grid.sites[0]
        assert grid.nearest_station(site.x_km + 0.1, site.y_km - 0.1) == site

    def test_small_city_has_at_least_one_station(self):
        assert len(CityGrid(1, 1, 10)) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CityGrid(0, 10, 10)
        with pytest.raises(ValueError):
            CityGrid(10, 10, 0)

    def test_repr(self):
        assert "stations=" in repr(CityGrid(20, 20, 10))
