"""Unit tests for the partitioned Bloom filter."""

import pytest

from repro.bloom.partitioned import PartitionedBloomFilter


class TestBasicOperations:
    def test_no_false_negatives(self):
        pbf = PartitionedBloomFilter(1024, 4)
        items = [f"v-{i}" for i in range(100)]
        pbf.add_many(items)
        assert all(item in pbf for item in items)

    def test_absent_items_mostly_rejected(self):
        pbf = PartitionedBloomFilter(4096, 4)
        pbf.add_many(range(100))
        false_positives = sum(1 for value in range(10_000, 11_000) if value in pbf)
        assert false_positives < 60

    def test_partition_size(self):
        pbf = PartitionedBloomFilter(100, 4)
        assert pbf.partition_size == 25
        assert pbf.bit_count == 100

    def test_item_count(self):
        pbf = PartitionedBloomFilter(64, 2)
        pbf.add_many(["a", "b"])
        assert pbf.item_count == 2

    def test_fill_ratio_bounded(self):
        pbf = PartitionedBloomFilter(128, 4)
        pbf.add_many(range(10))
        assert 0.0 < pbf.fill_ratio() <= 1.0


class TestValidation:
    def test_bit_count_must_cover_hash_count(self):
        with pytest.raises(ValueError):
            PartitionedBloomFilter(2, 4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PartitionedBloomFilter(0, 1)
        with pytest.raises(ValueError):
            PartitionedBloomFilter(16, 0)

    def test_size_bytes(self):
        pbf = PartitionedBloomFilter(64, 4)
        assert pbf.size_bytes() == 4 * ((16 + 7) // 8)

    def test_repr(self):
        assert "PartitionedBloomFilter" in repr(PartitionedBloomFilter(64, 4))
