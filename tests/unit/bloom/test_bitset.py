"""Unit tests for the BitArray backing store."""

import pytest

from repro.bloom.bitset import BitArray


class TestConstruction:
    def test_starts_all_zero(self):
        bits = BitArray(64)
        assert bits.count() == 0
        assert len(bits) == 64

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            BitArray(0)

    def test_non_multiple_of_eight_length(self):
        bits = BitArray(13)
        assert len(bits) == 13
        bits.set(12)
        assert bits.get(12)

    def test_from_indices(self):
        bits = BitArray.from_indices(16, [1, 3, 5])
        assert bits.count() == 3
        assert bits.get(3)
        assert not bits.get(2)


class TestBitOperations:
    def test_set_and_get(self):
        bits = BitArray(32)
        assert bits.set(7) is True
        assert bits.get(7)

    def test_set_returns_false_when_already_set(self):
        bits = BitArray(32)
        bits.set(7)
        assert bits.set(7) is False

    def test_clear(self):
        bits = BitArray(32)
        bits.set(9)
        bits.clear(9)
        assert not bits.get(9)

    def test_item_access_syntax(self):
        bits = BitArray(8)
        bits[3] = True
        assert bits[3]
        bits[3] = False
        assert not bits[3]

    def test_out_of_range_rejected(self):
        bits = BitArray(8)
        with pytest.raises(IndexError):
            bits.get(8)
        with pytest.raises(IndexError):
            bits.set(-1)

    def test_non_integer_index_rejected(self):
        bits = BitArray(8)
        with pytest.raises(TypeError):
            bits.get("3")


class TestAggregates:
    def test_count(self):
        bits = BitArray(100)
        for index in range(0, 100, 7):
            bits.set(index)
        assert bits.count() == len(range(0, 100, 7))

    def test_iter_set_bits_sorted(self):
        bits = BitArray.from_indices(64, [40, 2, 17])
        assert list(bits.iter_set_bits()) == [2, 17, 40]

    def test_union(self):
        a = BitArray.from_indices(16, [1, 2])
        b = BitArray.from_indices(16, [2, 3])
        assert sorted((a | b).iter_set_bits()) == [1, 2, 3]

    def test_intersection(self):
        a = BitArray.from_indices(16, [1, 2])
        b = BitArray.from_indices(16, [2, 3])
        assert sorted((a & b).iter_set_bits()) == [2]

    def test_union_does_not_mutate_operands(self):
        a = BitArray.from_indices(16, [1])
        b = BitArray.from_indices(16, [2])
        _ = a | b
        assert a.count() == 1 and b.count() == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitArray(8).union(BitArray(16))

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BitArray(8).union([1, 2])


class TestEqualityAndCopy:
    def test_copy_is_independent(self):
        a = BitArray.from_indices(16, [5])
        b = a.copy()
        b.set(6)
        assert not a.get(6)

    def test_equality(self):
        assert BitArray.from_indices(16, [5]) == BitArray.from_indices(16, [5])
        assert BitArray.from_indices(16, [5]) != BitArray.from_indices(16, [6])

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(BitArray(8))

    def test_size_bytes(self):
        assert BitArray(64).size_bytes() == 8
        assert BitArray(65).size_bytes() == 9

    def test_repr_mentions_count(self):
        bits = BitArray.from_indices(8, [0, 1])
        assert "set=2" in repr(bits)
