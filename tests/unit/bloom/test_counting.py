"""Unit tests for the counting Bloom filter."""

import pytest

from repro.bloom.counting import CountingBloomFilter


class TestAddRemove:
    def test_added_items_found(self):
        cbf = CountingBloomFilter(512, 4)
        cbf.add_many(range(30))
        assert all(cbf.contains(v) for v in range(30))

    def test_remove_added_item(self):
        cbf = CountingBloomFilter(512, 4)
        cbf.add("x")
        assert cbf.remove("x") is True
        assert not cbf.contains("x")

    def test_remove_absent_item_returns_false(self):
        cbf = CountingBloomFilter(512, 4)
        cbf.add("present")
        assert cbf.remove("definitely-absent") is False

    def test_remove_keeps_other_items(self):
        cbf = CountingBloomFilter(1024, 4)
        cbf.add_many([f"k{i}" for i in range(50)])
        cbf.remove("k0")
        assert all(cbf.contains(f"k{i}") for i in range(1, 50))

    def test_item_count_tracks_add_and_remove(self):
        cbf = CountingBloomFilter(256, 3)
        cbf.add("a")
        cbf.add("b")
        cbf.remove("a")
        assert cbf.item_count == 1

    def test_count_estimate_never_underestimates(self):
        cbf = CountingBloomFilter(512, 4)
        for _ in range(3):
            cbf.add("dup")
        assert cbf.count_estimate("dup") >= 3


class TestSaturation:
    def test_counters_saturate_without_overflow(self):
        cbf = CountingBloomFilter(64, 2, counter_width_bits=2)
        for _ in range(20):
            cbf.add("same")
        assert cbf.count_estimate("same") <= 3
        assert cbf.contains("same")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(0, 2)
        with pytest.raises(ValueError):
            CountingBloomFilter(8, 0)


class TestIntrospection:
    def test_fill_ratio(self):
        cbf = CountingBloomFilter(128, 2)
        assert cbf.fill_ratio() == 0.0
        cbf.add("x")
        assert cbf.fill_ratio() > 0.0

    def test_estimated_false_positive_rate(self):
        cbf = CountingBloomFilter(128, 2)
        cbf.add_many(range(20))
        assert 0.0 < cbf.estimated_false_positive_rate() < 1.0

    def test_size_bytes_uses_counter_width(self):
        assert CountingBloomFilter(16, 2, counter_width_bits=4).size_bytes() == 8

    def test_repr(self):
        assert "CountingBloomFilter" in repr(CountingBloomFilter(16, 2))
