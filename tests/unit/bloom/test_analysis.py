"""Unit tests for Bloom-filter sizing and false-positive analysis."""

import math

import pytest

from repro.bloom.analysis import (
    expected_false_positive_rate,
    fill_ratio,
    optimal_bit_count,
    optimal_hash_count,
    optimal_parameters,
    probability_bit_zero,
)
from repro.bloom.standard import BloomFilter


class TestClosedForms:
    def test_probability_bit_zero_empty_filter(self):
        assert probability_bit_zero(100, 3, 0) == 1.0

    def test_probability_bit_zero_decreases_with_items(self):
        assert probability_bit_zero(100, 3, 10) > probability_bit_zero(100, 3, 50)

    def test_fill_ratio_complements_zero_probability(self):
        assert fill_ratio(128, 4, 20) == pytest.approx(1 - probability_bit_zero(128, 4, 20))

    def test_fp_rate_zero_for_empty_filter(self):
        assert expected_false_positive_rate(100, 3, 0) == 0.0

    def test_fp_rate_monotone_in_items(self):
        rates = [expected_false_positive_rate(1024, 4, n) for n in (10, 100, 500)]
        assert rates == sorted(rates)

    def test_fp_rate_matches_exponential_approximation(self):
        m, k, n = 10_000, 5, 1_000
        exact = expected_false_positive_rate(m, k, n)
        approx = (1 - math.exp(-k * n / m)) ** k
        assert exact == pytest.approx(approx, rel=0.05)


class TestSizing:
    def test_optimal_hash_count_formula(self):
        assert optimal_hash_count(1000, 100) == round(10 * math.log(2))

    def test_optimal_hash_count_at_least_one(self):
        assert optimal_hash_count(10, 1000) == 1

    def test_optimal_bit_count_one_percent(self):
        bits = optimal_bit_count(1000, 0.01)
        assert 9000 < bits < 10_000

    def test_optimal_bit_count_rejects_degenerate_rates(self):
        with pytest.raises(ValueError):
            optimal_bit_count(10, 0.0)
        with pytest.raises(ValueError):
            optimal_bit_count(10, 1.0)

    def test_optimal_parameters_achieve_target_empirically(self):
        item_count, target = 500, 0.02
        bit_count, hash_count = optimal_parameters(item_count, target)
        bloom = BloomFilter(bit_count, hash_count)
        bloom.add_many(range(item_count))
        probes = range(100_000, 105_000)
        measured = sum(1 for v in probes if v in bloom) / len(probes)
        assert measured < 3 * target

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            probability_bit_zero(0, 1, 1)
        with pytest.raises(ValueError):
            optimal_hash_count(0, 10)
