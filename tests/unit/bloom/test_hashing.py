"""Unit tests for the hash family."""

import pytest

from repro.bloom.hashing import HashFamily, canonical_item_bytes


class TestCanonicalItemBytes:
    def test_int_and_string_differ(self):
        assert canonical_item_bytes(1) != canonical_item_bytes("1")

    def test_bool_and_int_differ(self):
        assert canonical_item_bytes(True) != canonical_item_bytes(1)

    def test_tuple_encoding_is_structural(self):
        assert canonical_item_bytes((1, 2)) != canonical_item_bytes((2, 1))
        assert canonical_item_bytes((1, 2)) == canonical_item_bytes((1, 2))

    def test_nested_tuples(self):
        assert canonical_item_bytes(((1,), 2)) != canonical_item_bytes((1, (2,)))

    def test_float_encoding(self):
        assert canonical_item_bytes(1.5) == canonical_item_bytes(1.5)

    def test_bytes_passthrough(self):
        assert canonical_item_bytes(b"xy").endswith(b"xy")

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_item_bytes({"a": 1})


class TestHashFamily:
    def test_positions_in_range(self):
        family = HashFamily(hash_count=5, value_range=97)
        for item in [0, 1, "abc", (3, 4)]:
            positions = family.positions(item)
            assert len(positions) == 5
            assert all(0 <= p < 97 for p in positions)

    def test_deterministic(self):
        family = HashFamily(4, 1024, seed=3)
        assert family.positions("x") == family.positions("x")

    def test_seed_changes_positions(self):
        a = HashFamily(4, 1024, seed=0)
        b = HashFamily(4, 1024, seed=1)
        assert a.positions("x") != b.positions("x")

    def test_different_items_mostly_differ(self):
        family = HashFamily(4, 1 << 20)
        assert family.positions("a") != family.positions("b")

    def test_positions_many(self):
        family = HashFamily(2, 64)
        results = family.positions_many(["a", "b"])
        assert len(results) == 2
        assert results[0] == family.positions("a")

    def test_with_range_preserves_k_and_seed(self):
        family = HashFamily(3, 64, seed=7)
        resized = family.with_range(128)
        assert resized.hash_count == 3
        assert resized.seed == 7
        assert resized.value_range == 128

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HashFamily(0, 10)
        with pytest.raises(ValueError):
            HashFamily(1, 0)

    def test_properties(self):
        family = HashFamily(3, 50, seed=2)
        assert family.hash_count == 3
        assert family.value_range == 50
        assert family.seed == 2

    def test_repr(self):
        assert "hash_count=3" in repr(HashFamily(3, 50))
