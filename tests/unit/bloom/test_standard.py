"""Unit tests for the classic Bloom filter."""

import pytest

from repro.bloom.standard import BloomFilter


class TestBasicOperations:
    def test_added_items_are_found(self):
        bloom = BloomFilter(bit_count=1024, hash_count=4)
        for value in range(50):
            bloom.add(value)
        assert all(value in bloom for value in range(50))

    def test_no_false_negatives_for_strings(self):
        bloom = BloomFilter(2048, 5)
        words = [f"user-{i}" for i in range(100)]
        bloom.add_many(words)
        assert all(bloom.contains(word) for word in words)

    def test_unadded_items_mostly_absent(self):
        bloom = BloomFilter(4096, 4)
        bloom.add_many(range(100))
        false_positives = sum(1 for value in range(1000, 2000) if value in bloom)
        assert false_positives < 50

    def test_item_count_tracks_insertions(self):
        bloom = BloomFilter(128, 2)
        bloom.add_many(["a", "b", "a"])
        assert bloom.item_count == 3

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(128, 2)
        assert "missing" not in bloom

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 3)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)


class TestIntrospection:
    def test_fill_ratio_grows(self):
        bloom = BloomFilter(256, 3)
        before = bloom.fill_ratio()
        bloom.add_many(range(20))
        assert bloom.fill_ratio() > before

    def test_estimated_false_positive_rate_grows(self):
        bloom = BloomFilter(256, 3)
        empty_rate = bloom.estimated_false_positive_rate()
        bloom.add_many(range(50))
        assert bloom.estimated_false_positive_rate() > empty_rate

    def test_size_bytes(self):
        assert BloomFilter(1024, 4).size_bytes() == 128

    def test_repr_mentions_parameters(self):
        assert "m=64" in repr(BloomFilter(64, 2))


class TestUnion:
    def test_union_contains_both_sets(self):
        a = BloomFilter(512, 3, seed=9)
        b = BloomFilter(512, 3, seed=9)
        a.add_many(range(10))
        b.add_many(range(10, 20))
        merged = a.union(b)
        assert all(value in merged for value in range(20))
        assert merged.item_count == 20

    def test_union_requires_same_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(512, 3).union(BloomFilter(256, 3))
        with pytest.raises(ValueError):
            BloomFilter(512, 3, seed=1).union(BloomFilter(512, 3, seed=2))

    def test_union_rejects_other_types(self):
        with pytest.raises(TypeError):
            BloomFilter(64, 2).union(object())
