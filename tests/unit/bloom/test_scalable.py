"""Unit tests for the scalable Bloom filter."""

import pytest

from repro.bloom.scalable import ScalableBloomFilter


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        sbf = ScalableBloomFilter(initial_capacity=32, target_false_positive_rate=0.01)
        sbf.add_many(range(200))
        assert sbf.slice_count > 1
        assert sbf.item_count == 200

    def test_no_false_negatives_across_slices(self):
        sbf = ScalableBloomFilter(initial_capacity=16)
        items = [f"item-{i}" for i in range(300)]
        sbf.add_many(items)
        assert all(item in sbf for item in items)

    def test_single_slice_before_capacity(self):
        sbf = ScalableBloomFilter(initial_capacity=64)
        sbf.add_many(range(10))
        assert sbf.slice_count == 1

    def test_false_positive_rate_bounded(self):
        sbf = ScalableBloomFilter(initial_capacity=64, target_false_positive_rate=0.01)
        sbf.add_many(range(500))
        probes = range(10_000, 12_000)
        false_positives = sum(1 for value in probes if value in sbf)
        assert false_positives / len(probes) < 5 * sbf.target_false_positive_rate

    def test_size_bytes_grows_with_slices(self):
        sbf = ScalableBloomFilter(initial_capacity=16)
        initial = sbf.size_bytes()
        sbf.add_many(range(200))
        assert sbf.size_bytes() > initial


class TestValidation:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ScalableBloomFilter(initial_capacity=0)

    @pytest.mark.parametrize("rate", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_fp_rate(self, rate):
        with pytest.raises(ValueError):
            ScalableBloomFilter(target_false_positive_rate=rate)

    @pytest.mark.parametrize("ratio", [0.0, 1.0])
    def test_invalid_tightening_ratio(self, ratio):
        with pytest.raises(ValueError):
            ScalableBloomFilter(tightening_ratio=ratio)

    def test_target_rate_property(self):
        sbf = ScalableBloomFilter(target_false_positive_rate=0.01, tightening_ratio=0.5)
        assert sbf.target_false_positive_rate == pytest.approx(0.02)

    def test_repr(self):
        assert "ScalableBloomFilter" in repr(ScalableBloomFilter())
