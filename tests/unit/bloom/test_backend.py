"""Backend-equivalence suite for the pluggable bit substrate.

Property-style tests over randomized inserts asserting that every available
backend produces identical bits, counts, unions, serializations and query
verdicts.  The suite is the contract that makes ``bit_backend`` a pure
throughput knob: center and stations may disagree on it and still interoperate.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.bloom.backend import (
    BACKEND_CHOICES,
    HAS_NUMPY,
    BackendUnavailableError,
    BytearrayBackend,
    available_backends,
    make_backend,
    resolve_backend_class,
)
from repro.bloom.bitset import BitArray
from repro.bloom.standard import BloomFilter
from repro.core.wbf import WeightedBloomFilter

BACKENDS = available_backends()
LENGTHS = (1, 7, 64, 65, 1000)


def random_items(rng: random.Random, count: int) -> list[object]:
    items: list[object] = []
    for _ in range(count):
        kind = rng.randrange(4)
        if kind == 0:
            items.append(rng.randrange(10**6))
        elif kind == 1:
            items.append(f"user-{rng.randrange(1000)}")
        elif kind == 2:
            items.append((rng.randrange(48), rng.randrange(500)))
        else:
            items.append(bytes([rng.randrange(256)]))
    return items


class TestBackendSelection:
    def test_available_backends_always_include_python(self):
        assert "python" in BACKENDS

    def test_auto_resolves_to_an_available_backend(self):
        cls = resolve_backend_class("auto")
        assert cls(8).name in BACKENDS

    def test_explicit_python_backend(self):
        assert resolve_backend_class("python") is BytearrayBackend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown bit backend"):
            resolve_backend_class("bitarray")

    @pytest.mark.skipif(HAS_NUMPY, reason="only meaningful without NumPy")
    def test_numpy_backend_unavailable_raises(self):
        with pytest.raises(BackendUnavailableError):
            resolve_backend_class("numpy")

    def test_backend_choices_cover_config_values(self):
        assert set(BACKEND_CHOICES) == {"auto", "python", "numpy"}

    def test_make_backend_passthrough_checks_length(self):
        backend = make_backend(64, "python")
        assert make_backend(64, backend) is backend
        with pytest.raises(ValueError, match="64 bits"):
            make_backend(128, backend)


@pytest.mark.parametrize("backend", BACKENDS)
class TestSingleBackendBehaviour:
    def test_set_get_clear_roundtrip(self, backend):
        rng = random.Random(101)
        bits = BitArray(257, backend=backend)
        chosen = sorted(rng.sample(range(257), 40))
        for index in chosen:
            assert bits.set(index) is True
            assert bits.set(index) is False
        assert [i for i in range(257) if bits.get(i)] == chosen
        assert bits.count() == len(chosen)
        for index in chosen[::2]:
            bits.clear(index)
        assert bits.count() == len(chosen) - len(chosen[::2])

    def test_out_of_range_indices_rejected(self, backend):
        bits = BitArray(32, backend=backend)
        with pytest.raises(IndexError):
            bits.get(32)
        with pytest.raises(IndexError):
            bits.set(-1)
        with pytest.raises(IndexError):
            bits.set_many([0, 5, 32])

    def test_set_many_matches_scalar_sets(self, backend):
        rng = random.Random(7)
        indices = [rng.randrange(500) for _ in range(200)]
        batched = BitArray(500, backend=backend)
        batched.set_many(indices)
        scalar = BitArray(500, backend=backend)
        for index in indices:
            scalar.set(index)
        assert batched == scalar
        assert batched.get_many(indices) == [True] * len(indices)

    def test_all_set_rows(self, backend):
        bits = BitArray(100, backend=backend)
        bits.set_many([1, 2, 3, 10, 11])
        assert bits.all_set_rows([[1, 2, 3], [1, 10, 11], [1, 2, 4]]) == [
            True,
            True,
            False,
        ]
        assert bits.all_set_rows([]) == []

    def test_all_set_rows_ragged_rows(self, backend):
        bits = BitArray(100, backend=backend)
        bits.set_many([1, 2, 3])
        # Ragged rows can't be vectorized as a matrix; every backend must still
        # answer them (generic fallback) with identical verdicts.
        assert bits.all_set_rows([[1, 2], [3], [1, 4, 2]]) == [True, True, False]

    def test_iter_set_bits_and_size(self, backend):
        bits = BitArray(77, backend=backend)
        bits.set_many([0, 8, 63, 64, 76])
        assert list(bits.iter_set_bits()) == [0, 8, 63, 64, 76]
        assert bits.size_bytes() == 10  # ceil(77 / 8), identical on every backend


@pytest.mark.parametrize("length", LENGTHS)
def test_backends_produce_identical_bits(length):
    rng = random.Random(length)
    indices = [rng.randrange(length) for _ in range(max(1, length // 2))]
    arrays = {name: BitArray(length, backend=name) for name in BACKENDS}
    for bits in arrays.values():
        bits.set_many(indices)
    reference = arrays["python"]
    for name, bits in arrays.items():
        assert bits.to_bytes() == reference.to_bytes(), name
        assert bits.count() == reference.count(), name
        assert bits == reference, name


@pytest.mark.parametrize("length", LENGTHS)
def test_union_and_intersection_agree_across_backends(length):
    rng = random.Random(1000 + length)
    left = [rng.randrange(length) for _ in range(max(1, length // 3))]
    right = [rng.randrange(length) for _ in range(max(1, length // 3))]
    results = {}
    for name in BACKENDS:
        a = BitArray.from_indices(length, left, backend=name)
        b = BitArray.from_indices(length, right, backend=name)
        results[name] = ((a | b).to_bytes(), (a & b).to_bytes(), (a | b).count())
    reference = results["python"]
    for name, result in results.items():
        assert result == reference, name


@pytest.mark.skipif(len(BACKENDS) < 2, reason="needs both backends")
def test_cross_backend_union_and_equality():
    numpy_bits = BitArray.from_indices(200, [1, 50, 199], backend="numpy")
    python_bits = BitArray.from_indices(200, [1, 64, 128], backend="python")
    assert numpy_bits != python_bits
    union = numpy_bits | python_bits
    assert sorted(union.iter_set_bits()) == [1, 50, 64, 128, 199]
    assert BitArray.from_indices(200, [1, 50, 199], backend="python") == numpy_bits


@pytest.mark.parametrize("trial", range(5))
def test_bloom_filters_equivalent_across_backends(trial):
    rng = random.Random(40 + trial)
    inserted = random_items(rng, 150)
    probes = inserted + random_items(rng, 150)
    filters = {
        name: BloomFilter(bit_count=2048, hash_count=4, seed=trial, backend=name)
        for name in BACKENDS
    }
    for bloom in filters.values():
        bloom.add_many(inserted)
    reference = filters["python"]
    for name, bloom in filters.items():
        assert bloom.bits.to_bytes() == reference.bits.to_bytes(), name
        assert bloom.fill_ratio() == reference.fill_ratio(), name
        assert bloom.contains_many(probes) == reference.contains_many(probes), name
        # scalar and batched probes agree on every backend
        assert bloom.contains_many(probes) == [item in bloom for item in probes], name


@pytest.mark.parametrize("trial", range(5))
def test_weighted_bloom_filters_equivalent_across_backends(trial):
    rng = random.Random(70 + trial)
    groups = {
        ("q1", Fraction(1, 3)): random_items(rng, 60),
        ("q1", Fraction(2, 3)): random_items(rng, 60),
        ("q2", Fraction(1, 2)): random_items(rng, 60),
    }
    probes = [item for items in groups.values() for item in items] + random_items(rng, 100)
    filters = {
        name: WeightedBloomFilter(bit_count=4096, hash_count=4, seed=trial, backend=name)
        for name in BACKENDS
    }
    for wbf in filters.values():
        for weight, items in groups.items():
            wbf.insert_many(items, weight)
    reference = filters["python"]
    for name, wbf in filters.items():
        assert wbf.item_count == reference.item_count, name
        assert wbf.fill_ratio() == reference.fill_ratio(), name
        assert wbf.distinct_weights() == reference.distinct_weights(), name
        assert wbf.size_bytes() == reference.size_bytes(), name
        assert wbf.query_many(probes) == reference.query_many(probes), name
        # batched and scalar weighted queries agree on every backend
        assert wbf.query_many(probes) == [wbf.query_weights(item) for item in probes], name


def test_insert_many_matches_scalar_add():
    rng = random.Random(5)
    items = random_items(rng, 120)
    weight = ("q", Fraction(1, 4))
    for name in BACKENDS:
        batched = WeightedBloomFilter(bit_count=2048, hash_count=4, backend=name)
        batched.insert_many(items, weight)
        scalar = WeightedBloomFilter(bit_count=2048, hash_count=4, backend=name)
        for item in items:
            scalar.add(item, weight)
        assert batched.item_count == scalar.item_count
        assert batched.query_many(items) == scalar.query_many(items)
        assert batched.size_bytes() == scalar.size_bytes()
