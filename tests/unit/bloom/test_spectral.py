"""Unit tests for the spectral Bloom filter."""

import pytest

from repro.bloom.spectral import SpectralBloomFilter


class TestFrequencies:
    def test_frequency_never_underestimates(self):
        sbf = SpectralBloomFilter(1024, 4)
        for value in range(30):
            for _ in range(value % 5 + 1):
                sbf.add(value)
        for value in range(30):
            assert sbf.frequency(value) >= value % 5 + 1

    def test_absent_item_frequency_usually_zero(self):
        sbf = SpectralBloomFilter(4096, 4)
        sbf.add_many(range(100))
        overestimates = sum(1 for value in range(5000, 6000) if sbf.frequency(value) > 0)
        assert overestimates < 50

    def test_bulk_add_with_count(self):
        sbf = SpectralBloomFilter(256, 3)
        sbf.add("x", count=7)
        assert sbf.frequency("x") >= 7
        assert sbf.item_count == 7

    def test_contains_matches_frequency(self):
        sbf = SpectralBloomFilter(256, 3)
        sbf.add("present")
        assert "present" in sbf

    def test_minimal_increase_keeps_estimates_tight(self):
        sbf = SpectralBloomFilter(512, 4)
        for _ in range(10):
            sbf.add("hot")
        sbf.add("cold")
        assert sbf.frequency("cold") < 10


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpectralBloomFilter(0, 2)
        with pytest.raises(ValueError):
            SpectralBloomFilter(16, 0)

    def test_invalid_count(self):
        sbf = SpectralBloomFilter(16, 2)
        with pytest.raises(ValueError):
            sbf.add("x", count=0)

    def test_size_bytes(self):
        assert SpectralBloomFilter(100, 2).size_bytes() == 400

    def test_repr(self):
        assert "SpectralBloomFilter" in repr(SpectralBloomFilter(16, 2))
