"""Shared fixtures of the cross-transport suites.

One small synthetic city and two query batches are built once per session;
every test stands its deployments up from :func:`make_spec`, so a sim/tcp
pair differs in exactly one field — ``TransportSpec.transport`` — and any
result divergence is attributable to the backend alone.  TCP deployments get
their worker-connect deadline stretched through :func:`tests.transport.util.generous`.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterSpec, ProtocolSpec
from repro.cluster.spec import ExecutorSpec, FaultSpec, TransportSpec
from repro.datagen.workload import DatasetSpec, build_dataset, build_query_workload

from .util import generous

#: Small enough that a TCP round completes in well under a second, large
#: enough that every station stores patterns and ships a non-empty report.
DATASET_SPEC = DatasetSpec(
    users_per_category=3,
    station_count=3,
    days=1,
    intervals_per_day=24,
    noise_level=0,
    cliques_per_place=2,
    replicated_decoys_per_category=1,
    seed=404,
)


@pytest.fixture(scope="session")
def dataset():
    return build_dataset(DATASET_SPEC)


@pytest.fixture(scope="session")
def batch_a(dataset):
    return list(build_query_workload(dataset, query_count=3, epsilon=0, seed=1).queries)


@pytest.fixture(scope="session")
def batch_b(dataset):
    return list(build_query_workload(dataset, query_count=2, epsilon=0, seed=2).queries)


def make_spec(
    transport: str,
    *,
    profile: str | None = None,
    net_seed: int | None = None,
    allow_partial: bool = False,
    max_attempts: int = 8,
) -> ClusterSpec:
    """A deployment spec that differs between backends only in ``transport``."""
    return ClusterSpec(
        name=f"conformance-{transport}",
        protocol=ProtocolSpec(method="wbf"),
        transport=TransportSpec(
            transport=transport,
            max_attempts=max_attempts,
            tcp_connect_timeout_s=generous(30.0),
        ),
        executor=ExecutorSpec(),
        faults=FaultSpec(
            profile=profile, net_seed=net_seed, allow_partial=allow_partial
        ),
    )


def open_cluster(dataset, transport: str, **kwargs) -> Cluster:
    return Cluster(make_spec(transport, **kwargs), dataset=dataset)
