"""The chaos proxy over real sockets mirrors the simulator's fault model.

The TCP backend's byte-level fault proxy draws from the *same* seeded
:class:`~repro.distributed.faults.FaultInjector` as the simulator — a pure
function of ``(net_seed, frame_id, attempt)`` — so for profiles whose effects
are count-observable (loss, corruption, duplication) the two backends must
agree exactly: same retransmit/drop/duplicate/corrupt tallies, same surviving
results, same byte ledgers.  Timing-dominated profiles (``reordering``,
``straggler``) are deliberately outside this grid: the simulator's
retransmission timer runs on virtual time and can fire before a reorder-held
frame lands, while TCP's generous real timers cannot — a sanctioned
divergence documented in ``docs/transport.md``.

The second half pins *failure-path* parity: with the retransmission budget
cut to one attempt, a seed that kills a round on the simulator kills it on
TCP with the same typed :class:`RoundTimeoutError` (same failed transfers,
same delivered frames), and ``allow_partial`` salvages the same partial round
on both.
"""

from __future__ import annotations

import pytest

from repro.cluster import RoundOptions
from repro.distributed.events import RoundTimeoutError

from .conftest import open_cluster
from .util import wait_until

pytestmark = pytest.mark.transport

#: Count-observable named profiles — the grid the parity claim covers.
PARITY_PROFILES = ("lossy", "corrupting", "duplicating")
NET_SEEDS = (0, 7)


def _round_pair(cluster, batch, net_seed):
    """Two consecutive rounds (the second exercises per-round frame-id reset)."""
    cluster.subscribe(batch)
    return [
        cluster.round(RoundOptions(net_seed=net_seed)),
        cluster.round(RoundOptions(net_seed=net_seed)),
    ]


def _fault_ledger(report):
    costs = report.costs
    return {
        "results": report.results,
        "downlink_bytes": report.downlink_bytes,
        "uplink_bytes": report.uplink_bytes,
        "retransmits": costs.retransmit_count,
        "dropped": costs.dropped_frame_count,
        "duplicate": costs.duplicate_frame_count,
        "corrupt": costs.corrupt_frame_count,
        "lost": costs.lost_station_count,
        "goodput": costs.goodput_fraction,
    }


@pytest.mark.parametrize(
    "profile,net_seed",
    [(p, s) for p in PARITY_PROFILES for s in NET_SEEDS],
    ids=[f"{p}-net{s}" for p in PARITY_PROFILES for s in NET_SEEDS],
)
def test_seeded_faults_hit_identically_on_both_backends(
    dataset, batch_a, profile, net_seed
):
    ledgers = {}
    for transport in ("sim", "tcp"):
        with open_cluster(
            dataset, transport, profile=profile, net_seed=net_seed
        ) as cluster:
            ledgers[transport] = [
                _fault_ledger(report)
                for report in _round_pair(cluster, batch_a, net_seed)
            ]
    assert ledgers["tcp"] == ledgers["sim"]
    # The grid is only meaningful if the seeds actually exercise the profile.
    exercised = sum(
        ledger["retransmits"] + ledger["dropped"] + ledger["duplicate"] + ledger["corrupt"]
        for ledger in ledgers["sim"]
    )
    assert exercised > 0


class TestFailurePathParity:
    """max_attempts=1 + lossy: the budget-exhaustion paths agree exactly."""

    @staticmethod
    def _probe_seeds(dataset, batch, *, want_failure: bool, limit: int = 40) -> int:
        """First net seed whose (cheap, simulated) round fails — or survives."""
        for net_seed in range(limit):
            with open_cluster(
                dataset, "sim", profile="lossy", net_seed=net_seed, max_attempts=1
            ) as cluster:
                cluster.subscribe(batch)
                try:
                    cluster.round(RoundOptions(net_seed=net_seed))
                except RoundTimeoutError:
                    if want_failure:
                        return net_seed
                else:
                    if not want_failure:
                        return net_seed
        raise AssertionError(
            f"no seed under {limit} produced want_failure={want_failure} on the "
            "simulator; the lossy profile no longer exercises this path"
        )

    def test_round_timeout_error_is_transport_invariant(self, dataset, batch_a):
        net_seed = self._probe_seeds(dataset, batch_a, want_failure=True)
        errors = {}
        for transport in ("sim", "tcp"):
            with open_cluster(
                dataset, transport, profile="lossy", net_seed=net_seed, max_attempts=1
            ) as cluster:
                cluster.subscribe(batch_a)
                with pytest.raises(RoundTimeoutError) as excinfo:
                    cluster.round(RoundOptions(net_seed=net_seed))
                errors[transport] = excinfo.value
        assert str(errors["tcp"]) == str(errors["sim"])
        assert errors["tcp"].failed_transfers == errors["sim"].failed_transfers
        assert sorted(errors["tcp"].delivered_ids) == sorted(errors["sim"].delivered_ids)

    def test_surviving_single_attempt_round_is_transport_invariant(
        self, dataset, batch_a
    ):
        net_seed = self._probe_seeds(dataset, batch_a, want_failure=False)
        ledgers = {}
        for transport in ("sim", "tcp"):
            with open_cluster(
                dataset, transport, profile="lossy", net_seed=net_seed, max_attempts=1
            ) as cluster:
                cluster.subscribe(batch_a)
                ledgers[transport] = _fault_ledger(
                    cluster.round(RoundOptions(net_seed=net_seed))
                )
        assert ledgers["tcp"] == ledgers["sim"]

    def test_allow_partial_salvages_the_same_round_on_both_backends(
        self, dataset, batch_a
    ):
        net_seed = self._probe_seeds(dataset, batch_a, want_failure=True)
        ledgers = {}
        for transport in ("sim", "tcp"):
            with open_cluster(
                dataset,
                transport,
                profile="lossy",
                net_seed=net_seed,
                max_attempts=1,
                allow_partial=True,
            ) as cluster:
                cluster.subscribe(batch_a)
                report = cluster.round(RoundOptions(net_seed=net_seed))
                ledgers[transport] = _fault_ledger(report)
        assert ledgers["tcp"] == ledgers["sim"]
        assert ledgers["tcp"]["lost"] > 0


class TestWorkerLifecycle:
    """The manager's worker pool is observable and torn down cleanly."""

    def test_workers_exit_after_close(self, dataset, batch_a):
        from repro.distributed.transport.tcp import TcpTransportManager

        cluster = open_cluster(dataset, "tcp")
        try:
            cluster.subscribe(batch_a)
            cluster.round(RoundOptions(net_seed=12))
            manager = cluster._tcp_manager
            assert isinstance(manager, TcpTransportManager)
            procs = list(manager._procs.values())
            assert procs, "a TCP round must have spawned station workers"
            assert all(proc.poll() is None for proc in procs)
        finally:
            cluster.close()
        wait_until(
            lambda: all(proc.poll() is not None for proc in procs),
            timeout_s=10.0,
            what="station worker processes to exit after Cluster.close()",
            describe=lambda: [proc.poll() for proc in procs],
        )
