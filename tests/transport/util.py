"""Flake-prevention helpers shared by the transport test suites.

Real-socket tests live or die by their deadlines: a CI box under load can
stretch a localhost round by an order of magnitude, so every timeout in this
package goes through :func:`generous`, which multiplies a base deadline that
is already far beyond the expected duration by the ``REPRO_TCP_DEADLINE_MULT``
environment knob (the dedicated CI job sets it higher than local runs).
Polling waits go through :func:`wait_until`, which fails with an explicit
diagnostic — what was being waited for, how long, and the last observed state
— instead of the bare ``assert False`` a sleep-and-hope loop produces.
"""

from __future__ import annotations

import os
import time
from typing import Callable


def deadline_multiplier() -> float:
    """The suite-wide deadline stretch factor (never below 1)."""
    raw = os.environ.get("REPRO_TCP_DEADLINE_MULT", "")
    try:
        value = float(raw) if raw else 1.0
    except ValueError:
        value = 1.0
    return max(1.0, value)


def generous(seconds: float) -> float:
    """A base deadline stretched by the environment's multiplier."""
    return float(seconds) * deadline_multiplier()


def wait_until(
    predicate: Callable[[], bool],
    *,
    timeout_s: float,
    what: str,
    poll_s: float = 0.05,
    describe: Callable[[], object] | None = None,
) -> None:
    """Poll ``predicate`` until true or fail loudly with diagnostics.

    ``timeout_s`` is taken as a *base* deadline and stretched by
    :func:`generous`; ``describe`` (when given) contributes the last observed
    state to the failure message so a timeout is debuggable from the CI log
    alone.
    """
    budget = generous(timeout_s)
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll_s)
    observed = f"; last observed: {describe()!r}" if describe is not None else ""
    raise AssertionError(
        f"timed out after {budget:.1f}s waiting for {what}"
        f" (base {float(timeout_s):.1f}s x multiplier {deadline_multiplier():.1f})"
        f"{observed}"
    )
