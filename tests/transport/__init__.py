"""Cross-transport conformance and chaos-proxy suites (``-m transport``)."""
