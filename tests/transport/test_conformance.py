"""Cross-transport conformance: every facade verb, sim vs tcp.

The contract under test is the :class:`~repro.distributed.transport.base.Transport`
interface's strongest promise: for a fault-free plan, the deterministic
simulator and the real-socket TCP backend are *observationally identical* —
same match results, same per-station delivered wire bytes (byte-for-byte),
same frame and byte ledgers.  Wall-clock quantities (``latency_s``,
per-entry transcript timestamps) are the one sanctioned divergence: the
simulator reports virtual link time, TCP reports measured time.

Every pair of runs in this module differs in exactly one field of the
deployment spec (``TransportSpec.transport``), so any assertion failure here
is a transport bug by construction.
"""

from __future__ import annotations

import pytest

from repro.cluster import RoundOptions
from repro.core.dimatching import DIMatchingProtocol
from repro.core.config import DIMatchingConfig
from repro.distributed.basestation import BaseStationNode
from repro.distributed.datacenter import DataCenterNode
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import NetworkConfig, SimulatedNetwork
from repro.workloads import get_scenario, run_workload

from .conftest import open_cluster
from .util import generous

pytestmark = pytest.mark.transport


def _ledger(report):
    """The transport-invariant slice of a round report.

    Delta-session reports carry no :class:`CostReport`; for full rounds the
    frame-level and storage fields join the comparison.
    """
    ledger = {
        "results": report.results,
        "downlink_bytes": report.downlink_bytes,
        "uplink_bytes": report.uplink_bytes,
        "goodput": report.goodput_fraction,
        "retransmits": report.retransmit_count,
        "lost": report.lost_station_count,
    }
    costs = report.costs
    if costs is not None:
        ledger.update(
            dropped=costs.dropped_frame_count,
            duplicate=costs.duplicate_frame_count,
            corrupt=costs.corrupt_frame_count,
            messages=costs.message_count,
            reports=costs.report_count,
            storage_center=costs.storage_center_bytes,
            storage_station=costs.storage_station_bytes,
        )
    return ledger


class TestFacadeRounds:
    def test_rounds_and_rotation_are_transport_invariant(self, dataset, batch_a, batch_b):
        """subscribe → round → rotate → round: identical reports on both backends."""
        ledgers = {}
        for transport in ("sim", "tcp"):
            with open_cluster(dataset, transport) as cluster:
                cluster.subscribe(batch_a)
                first = cluster.round(RoundOptions(net_seed=3))
                cluster.subscribe(batch_b)
                second = cluster.round(RoundOptions(net_seed=4))
                ledgers[transport] = [_ledger(first), _ledger(second)]
        assert ledgers["tcp"] == ledgers["sim"]

    def test_station_subset_round_is_transport_invariant(self, dataset, batch_a):
        """Per-round station subsets (the churn verb) behave identically."""
        ledgers = {}
        for transport in ("sim", "tcp"):
            with open_cluster(dataset, transport) as cluster:
                subset = cluster.station_ids[:2]
                cluster.subscribe(batch_a)
                report = cluster.round(
                    RoundOptions(station_ids=subset, net_seed=5)
                )
                ledgers[transport] = _ledger(report)
                assert report.active_station_count == len(subset)
        assert ledgers["tcp"] == ledgers["sim"]


class TestFacadeSessions:
    def test_delta_session_verbs_are_transport_invariant(self, dataset, batch_a, batch_b):
        """publish / retire / subscribe / step through a deltas session."""
        ledgers = {}
        for transport in ("sim", "tcp"):
            with open_cluster(dataset, transport) as cluster:
                station_ids = cluster.station_ids
                with cluster.open_session(mode="deltas") as session:
                    session.subscribe(batch_a)
                    for station_id in station_ids:
                        session.publish(station_id, dataset.local_patterns_at(station_id))
                    first = session.step(RoundOptions(net_seed=6))
                    session.retire(station_ids[-1])
                    session.subscribe(batch_b)
                    second = session.step(RoundOptions(net_seed=7))
                    ledgers[transport] = [_ledger(first), _ledger(second)]
        assert ledgers["tcp"] == ledgers["sim"]

    def test_rounds_session_is_transport_invariant(self, dataset, batch_a):
        ledgers = {}
        for transport in ("sim", "tcp"):
            with open_cluster(dataset, transport) as cluster:
                with cluster.open_session(mode="rounds") as session:
                    session.subscribe(batch_a)
                    report = session.step(RoundOptions(net_seed=8))
                    ledgers[transport] = _ledger(report)
        assert ledgers["tcp"] == ledgers["sim"]

    def test_snapshot_restore_replays_identically_on_tcp(self, dataset, batch_a, batch_b):
        """restore() erases the mutation on the real-socket backend too.

        TCP transcript timestamps are wall-clock and the interleaving of
        *concurrent* per-station transfers is real-scheduler order (the
        sanctioned divergences), so the replay comparison covers the
        order-free, time-free projection of the transcript — which events hit
        which frames with which routing and sizes — plus the full ledger.
        """
        def shape(report):
            return sorted(
                (e.frame_id, e.attempt, e.event, e.sender, e.recipient, e.kind, e.size_bytes)
                for e in report.transcript
            )

        with open_cluster(dataset, "tcp") as cluster:
            cluster.subscribe(batch_a)
            baseline = cluster.round(RoundOptions(net_seed=9))
            frozen = cluster.snapshot()
            cluster.subscribe(batch_b)
            cluster.round(RoundOptions(net_seed=10))
            cluster.restore(frozen)
            replay = cluster.round(RoundOptions(net_seed=9))
        assert _ledger(replay) == _ledger(baseline)
        assert shape(replay) == shape(baseline)


class TestDeliveredWireBytes:
    """Byte-for-byte parity of what each node actually decoded off the wire."""

    @staticmethod
    def _run_phases(transport_factory, dataset, batch):
        """One full downlink + matching + uplink pass over a raw transport."""
        protocol = DIMatchingProtocol(DIMatchingConfig(epsilon=0))
        center = DataCenterNode()
        stations = [
            BaseStationNode(station_id, dataset.local_patterns_at(station_id))
            for station_id in dataset.station_ids
        ]
        network = transport_factory()
        try:
            artifact = center.encode(protocol, batch)
            network.broadcast(
                [
                    (
                        Message(
                            sender=center.node_id,
                            recipient=station.node_id,
                            kind=MessageKind.FILTER_DISSEMINATION,
                            payload=artifact,
                        ),
                        station,
                    )
                    for station in stations
                ]
            )
            network.gather(
                [
                    (
                        Message(
                            sender=station.node_id,
                            recipient=center.node_id,
                            kind=MessageKind.MATCH_REPORT,
                            payload=station.run_matching(
                                protocol, station.latest_artifact()
                            ),
                        ),
                        center,
                    )
                    for station in stations
                ]
            )
            return {
                "downlink": network.delivered_payloads("downlink"),
                "uplink": network.delivered_payloads("uplink"),
                "stats": network.frame_stats(),
                "downlink_bytes": network.downlink_bytes,
                "uplink_bytes": network.uplink_bytes,
            }
        finally:
            network.close()

    def test_per_station_wire_bytes_are_byte_identical(self, dataset, batch_a):
        from repro.distributed.transport.tcp import TcpTransportManager

        config = NetworkConfig()
        sim = self._run_phases(
            lambda: SimulatedNetwork(config, fault_plan="none", seed=11),
            dataset,
            batch_a,
        )
        manager = TcpTransportManager(config, connect_timeout_s=generous(30.0))
        try:
            tcp = self._run_phases(
                lambda: manager.create_transport(fault_plan="none", seed=11),
                dataset,
                batch_a,
            )
        finally:
            manager.shutdown()

        # The downlink artifact and every station's report payload crossed
        # the real sockets byte-for-byte as the simulator modeled them.
        assert tcp["downlink"] == sim["downlink"]
        assert tcp["uplink"] == sim["uplink"]
        assert set(sim["uplink"]) == set(dataset.station_ids)
        assert all(payloads for payloads in sim["uplink"].values())
        # Fault-free plans deliver every frame exactly once on both backends.
        assert tcp["stats"] == sim["stats"]
        assert tcp["stats"].frames_sent == tcp["stats"].frames_delivered
        assert tcp["downlink_bytes"] == sim["downlink_bytes"]
        assert tcp["uplink_bytes"] == sim["uplink_bytes"]


class TestScenarioDrives:
    def test_steady_state_scenario_is_transport_invariant(self):
        spec = get_scenario("steady-state").with_updates(
            rounds=2, station_count=3, users_per_category=2
        )
        runs = {
            transport: run_workload(spec, transport=transport)
            for transport in ("sim", "tcp")
        }
        for sim_round, tcp_round in zip(runs["sim"].rounds, runs["tcp"].rounds):
            assert tcp_round.downlink_bytes == sim_round.downlink_bytes
            assert tcp_round.uplink_bytes == sim_round.uplink_bytes
            assert tcp_round.precision == sim_round.precision
            assert tcp_round.recall == sim_round.recall
            assert tcp_round.retransmit_count == sim_round.retransmit_count
            assert tcp_round.goodput_fraction == sim_round.goodput_fraction

    def test_degraded_network_scenario_completes_on_tcp(self):
        """The chaos profile over real sockets: partial rounds survive loudly."""
        spec = get_scenario("degraded-network").with_updates(
            rounds=2, station_count=3, users_per_category=2
        )
        result = run_workload(spec, transport="tcp")
        assert len(result.rounds) == 2
        for round_metrics in result.rounds:
            assert 0.0 < round_metrics.goodput_fraction <= 1.0
            assert round_metrics.recall <= 1.0
