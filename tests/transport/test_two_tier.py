"""Two-tier rounds over real sockets: the regional tier is transport-invariant.

The hierarchical router drives each region's hop over an ordinary
:class:`~repro.distributed.transport.base.Transport`, so the conformance
contract extends unchanged: a fault-free two-tier round over TCP must be
observationally identical to the simulator — same rankings, same per-tier
byte and frame ledgers.  The trunk hop rides the simulator under both
backends (aggregators are co-resident with the center; the sanctioned
divergence documented in docs/topology.md), which these tests observe as
byte-identical trunk rows.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.topology import TopologySpec

from .conftest import make_spec

pytestmark = pytest.mark.transport

TWO_TIER = TopologySpec(kind="two-tier", regions=2)


def _open_two_tier(dataset, transport: str) -> Cluster:
    spec = make_spec(transport).with_updates(topology=TWO_TIER)
    return Cluster(spec, dataset=dataset)


def _tier_ledger(costs):
    return [
        (
            tier.tier,
            tier.downlink_bytes,
            tier.uplink_bytes,
            tier.message_count,
            tier.retransmit_count,
            tier.wire_version,
        )
        for tier in costs.tiers
    ]


class TestTwoTierConformance:
    def test_two_tier_round_is_transport_invariant(self, dataset, batch_a):
        outcomes = {}
        for transport in ("sim", "tcp"):
            with _open_two_tier(dataset, transport) as cluster:
                cluster.subscribe(batch_a)
                report = cluster.round(net_seed=5)
                outcomes[transport] = {
                    "results": report.results,
                    "downlink": report.downlink_bytes,
                    "uplink": report.uplink_bytes,
                    "ingress": report.costs.center_ingress_bytes,
                    "tiers": _tier_ledger(report.costs),
                    "reports": report.costs.report_count,
                    "goodput": report.goodput_fraction,
                }
        assert outcomes["tcp"] == outcomes["sim"]

    def test_two_tier_matches_flat_star_rankings_over_tcp(self, dataset, batch_a):
        reports = {}
        for topology in (None, TWO_TIER):
            spec = make_spec("tcp").with_updates(topology=topology)
            with Cluster(spec, dataset=dataset) as cluster:
                cluster.subscribe(batch_a)
                reports[topology is None] = cluster.round(net_seed=5)
        flat, tiered = reports[True], reports[False]
        assert [
            (entry.user_id, entry.score) for entry in tiered.results
        ] == [(entry.user_id, entry.score) for entry in flat.results]
        assert tiered.costs.center_ingress_bytes < flat.costs.center_ingress_bytes

    def test_two_tier_delta_session_is_transport_invariant(self, dataset, batch_a):
        outcomes = {}
        for transport in ("sim", "tcp"):
            with _open_two_tier(dataset, transport) as cluster:
                cluster.subscribe(batch_a)
                with cluster.open_session(mode="deltas") as session:
                    for station_id in dataset.station_ids:
                        session.publish(
                            station_id, dataset.local_patterns_at(station_id)
                        )
                    report = session.step(net_seed=5)
                    outcomes[transport] = {
                        "results": report.results,
                        "delivered": report.delivered_station_ids,
                        "uplink": report.uplink_bytes,
                        "lost": report.lost_station_count,
                    }
        assert outcomes["tcp"] == outcomes["sim"]
