"""The acceptance criterion: every scenario replays byte-identically.

``(scenario, seed)`` must fully determine the workload-level event
transcript — across repeated runs, across station executors and across bit
backends — and changing the seed must actually change the schedule.  This
extends the single-round seed-replay contract of ``tests/simulation/`` to
whole multi-round workloads.

``golden_transcripts.json`` pins the transcripts *across the facade
refactor*: its digests were captured from the pre-``repro.cluster`` engine,
so every scenario driven through ``Cluster``/``open_session()`` must still
produce the exact bytes the four-entry-point era produced.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.workloads import scenario_names

from .conftest import run_tiny, tiny_spec

ALL_SCENARIOS = scenario_names()

#: sha256 of each (scenario, drive) tiny-scale transcript, captured from the
#: pre-facade engine.  Update deliberately (never to paper over drift): rerun
#: the suite, inspect the diff, and re-dump the digests.
GOLDEN_DIGESTS = json.loads(
    (Path(__file__).parent / "golden_transcripts.json").read_text(encoding="utf-8")
)


@pytest.mark.parametrize("scenario", ALL_SCENARIOS)
@pytest.mark.parametrize("drive", ["simulation", "session"])
def test_facade_drive_matches_the_pre_refactor_engine(scenario, drive):
    """Byte-identity with the engine as it existed before ``repro.cluster``."""
    digest = hashlib.sha256(run_tiny(scenario, drive=drive).transcript_bytes()).hexdigest()
    assert digest == GOLDEN_DIGESTS[scenario][drive], (
        f"{scenario}/{drive}: the facade-driven transcript no longer matches "
        "the pre-refactor engine's golden digest"
    )


@pytest.mark.parametrize("scenario", ALL_SCENARIOS)
class TestScenarioReplay:
    def test_two_runs_are_byte_identical(self, scenario):
        first = run_tiny(scenario)
        second = run_tiny(scenario)
        assert first.transcript_bytes() == second.transcript_bytes()
        # The persisted payload (everything except measured wall-clock) is
        # value-identical, not merely statistically close.
        assert first.to_payload() == second.to_payload()
        assert first.cumulative == second.cumulative

    def test_serial_and_thread_executors_share_one_transcript(self, scenario):
        serial = run_tiny(scenario, executor="serial")
        threaded = run_tiny(scenario, executor="thread")
        assert serial.transcript_bytes() == threaded.transcript_bytes()
        # Everything except measured wall-clock is executor-invariant.
        for left, right in zip(serial.rounds, threaded.rounds):
            assert left.total_bytes == right.total_bytes
            assert left.latency_s == right.latency_s
            assert left.precision == right.precision

    def test_bit_backends_share_one_transcript(self, scenario):
        python_run = run_tiny(scenario, bit_backend="python")
        numpy_run = run_tiny(scenario, bit_backend="numpy")
        assert python_run.transcript_bytes() == numpy_run.transcript_bytes()

    def test_session_drive_replays(self, scenario):
        first = run_tiny(scenario, drive="session")
        second = run_tiny(scenario, drive="session")
        assert first.transcript_bytes() == second.transcript_bytes()
        assert first.to_payload() == second.to_payload()


def test_different_seeds_explore_different_schedules():
    transcripts = {
        run_tiny("degraded-network").transcript_bytes(),
    }
    from repro.workloads import run_workload

    for seed in (1, 2, 3):
        spec = tiny_spec("degraded-network").with_updates(seed=seed)
        transcripts.add(run_workload(spec).transcript_bytes())
    assert len(transcripts) > 1


def test_transcript_concatenates_one_header_per_round(steady_result):
    replay = steady_result.transcript_bytes()
    for index in range(steady_result.round_count):
        assert (b"== round %d ==" % index) in replay
