"""The open-system drive: arrival model, queueing semantics, determinism.

The tentpole contracts under test:

* every arrival draw is a pure function of ``(scenario.name, seed, phase
  label)``, so the same spec replays byte-identical transcripts and identical
  per-phase percentiles across executors and bit backends;
* saturation is *graceful*: when service time exceeds the inter-arrival gap,
  queueing delay accrues into ``latency_s`` instead of erroring, and latency
  grows monotonically with offered load.
"""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads import OfferedLoad, RampPhase, WorkloadSpec, run_workload

from .conftest import tiny_spec

#: Tiny cluster service time is ~0.08 virtual seconds → capacity ~12 qps.
TINY_CAPACITY_QPS = 12.0


def _open_spec(name: str = "open-ramp", **offered_overrides: object) -> WorkloadSpec:
    spec = tiny_spec(name)
    if offered_overrides:
        from dataclasses import replace

        spec = spec.with_updates(offered=replace(spec.offered, **offered_overrides))
    return spec


def _run(spec: WorkloadSpec, **kwargs: object):
    return run_workload(spec, drive="open", **kwargs)


class TestOfferedLoadValidation:
    def test_ramp_phase_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError, match="label"):
            RampPhase("", 1.0)
        with pytest.raises(ConfigurationError, match="duration_s"):
            RampPhase("p", 0.0)
        with pytest.raises(ConfigurationError, match="duration_s"):
            RampPhase("p", float("inf"))
        with pytest.raises(ConfigurationError, match="rate_multiplier"):
            RampPhase("p", 1.0, -0.5)
        assert RampPhase("p", 1.0, 0.0).rate_multiplier == 0.0  # silence is legal

    def test_offered_load_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError, match="rate_qps"):
            OfferedLoad(rate_qps=0.0)
        with pytest.raises(ConfigurationError, match="process"):
            OfferedLoad(rate_qps=1.0, process="uniform")
        with pytest.raises(ConfigurationError, match="ramp"):
            OfferedLoad(rate_qps=1.0, ramp=())
        with pytest.raises(ConfigurationError, match="unique"):
            OfferedLoad(rate_qps=1.0, ramp=(RampPhase("p", 1.0), RampPhase("p", 2.0)))
        with pytest.raises(ConfigurationError, match="max_arrivals"):
            OfferedLoad(rate_qps=1.0, max_arrivals=0)

    def test_rate_during_and_total_duration(self):
        load = OfferedLoad(
            rate_qps=4.0,
            ramp=(RampPhase("a", 2.0, 0.5), RampPhase("b", 3.0, 2.0)),
        )
        assert load.rate_during(load.ramp[0]) == 2.0
        assert load.rate_during(load.ramp[1]) == 8.0
        assert load.total_duration_s == 5.0

    def test_spec_rejects_non_offered_values(self):
        with pytest.raises(ConfigurationError, match="offered"):
            WorkloadSpec(name="x", offered="fast")  # type: ignore[arg-type]


class TestOpenDriveSemantics:
    def test_open_drive_requires_an_offered_load(self):
        with pytest.raises(ValueError, match="offered"):
            run_workload(tiny_spec("steady-state"), drive="open")

    def test_round_count_follows_the_schedule_not_spec_rounds(self):
        result = _run(_open_spec("open-steady"))
        assert result.drive == "open"
        # rounds=3 at tiny scale; the 12s plateau at 4 qps admits far more.
        assert result.round_count > tiny_spec("open-steady").rounds
        assert result.round_count <= _open_spec("open-steady").offered.max_arrivals

    def test_max_arrivals_caps_the_whole_run(self):
        result = _run(_open_spec("open-steady", max_arrivals=5))
        assert result.round_count == 5

    def test_phase_windows_cover_the_ramp_in_order(self):
        result = _run(_open_spec("open-ramp"))
        labels = [window.label for window in result.phases]
        assert labels == ["warm-up", "plateau", "spike", "drain"]
        drain = result.phases[-1]
        assert drain.arrival_count == 0  # multiplier 0: a silence window
        assert drain.latency is None
        assert {metrics.phase for metrics in result.rounds} == {
            "warm-up", "plateau", "spike",
        }
        # Arrival times are strictly increasing across phase boundaries.
        arrivals = [metrics.arrival_s for metrics in result.rounds]
        assert arrivals == sorted(arrivals)
        assert all(later > earlier for earlier, later in zip(arrivals, arrivals[1:]))

    def test_latency_is_queue_delay_plus_service(self):
        result = _run(_open_spec())
        for metrics in result.rounds:
            assert metrics.queue_delay_s >= 0.0
            service = metrics.latency_s - metrics.queue_delay_s
            assert service > 0.0

    def test_scheduled_process_spaces_arrivals_exactly(self):
        spec = _open_spec(
            "open-steady",
            process="scheduled",
            ramp=(RampPhase("plateau", 3.0, 1.0),),
        )
        result = _run(spec)
        gap = 1.0 / spec.offered.rate_qps
        arrivals = [metrics.arrival_s for metrics in result.rounds]
        for index, arrival in enumerate(arrivals):
            assert arrival == pytest.approx((index + 1) * gap)

    def test_saturation_degrades_gracefully_and_monotonically(self):
        # Sweep scheduled rates across the tiny cluster's capacity: below it
        # queueing stays ~0 and p99 is flat; past it latency grows with the
        # rate — and nothing raises.
        p99s, queue_maxima = [], []
        for multiplier in (0.5, 1.5, 3.0):
            spec = _open_spec(
                "open-saturation",
                rate_qps=multiplier * TINY_CAPACITY_QPS,
                ramp=(RampPhase("plateau", 2.5, 1.0),),
                max_arrivals=30,
            )
            result = _run(spec)
            p99s.append(result.cumulative["latency_s"].p99)
            queue_maxima.append(max(m.queue_delay_s for m in result.rounds))
        assert queue_maxima[0] == 0.0  # below capacity: no queueing at all
        assert queue_maxima[1] > 0.0
        assert p99s[0] < p99s[1] < p99s[2]
        # Well past saturation the queue dominates service entirely.
        assert p99s[2] > 3.0 * p99s[0]

    def test_overload_caps_achieved_qps_at_capacity(self):
        spec = _open_spec(
            "open-saturation",
            rate_qps=2.0 * TINY_CAPACITY_QPS,
            ramp=(RampPhase("plateau", 2.0, 1.0),),
            max_arrivals=40,
        )
        (window,) = _run(spec).phases
        assert window.offered_qps == spec.offered.rate_qps
        assert window.achieved_qps < 0.75 * window.offered_qps
        # ... but the admitted arrivals all completed: graceful, not lossy.
        assert window.arrival_count == len(_run(spec).rounds)


def _determinism_spec(scenario: str, **extra: object) -> WorkloadSpec:
    # The determinism matrix replays every scenario many times; capping the
    # admitted arrivals keeps the whole class inside tier-1 budgets without
    # weakening the byte-identity claim (same cap on both sides).
    spec = tiny_spec(scenario, **extra)
    from dataclasses import replace

    return spec.with_updates(offered=replace(spec.offered, max_arrivals=12))


@pytest.mark.parametrize("scenario", ["open-steady", "open-ramp", "open-saturation"])
class TestOpenLoopDeterminism:
    def test_two_runs_are_byte_identical(self, scenario):
        first = _run(_determinism_spec(scenario))
        second = _run(_determinism_spec(scenario))
        assert first.transcript_bytes() == second.transcript_bytes()
        assert first.to_payload() == second.to_payload()
        assert first.phases == second.phases

    def test_executors_share_transcripts_and_phase_percentiles(self, scenario):
        serial = _run(_determinism_spec(scenario), executor="serial")
        for executor in ("thread", "process"):
            other = _run(_determinism_spec(scenario), executor=executor)
            assert other.transcript_bytes() == serial.transcript_bytes()
            assert other.phases == serial.phases
            for left, right in zip(serial.rounds, other.rounds):
                assert left.latency_s == right.latency_s
                assert left.queue_delay_s == right.queue_delay_s
                assert left.arrival_s == right.arrival_s

    def test_bit_backends_share_transcripts_and_phase_percentiles(self, scenario):
        python_run = _run(_determinism_spec(scenario), bit_backend="python")
        numpy_run = _run(_determinism_spec(scenario), bit_backend="numpy")
        assert python_run.transcript_bytes() == numpy_run.transcript_bytes()
        assert python_run.phases == numpy_run.phases

    def test_seed_changes_the_arrival_schedule(self, scenario):
        baseline = _run(_determinism_spec(scenario))
        reseeded = _run(_determinism_spec(scenario, seed=tiny_spec(scenario).seed + 1))
        assert baseline.transcript_bytes() != reseeded.transcript_bytes()
