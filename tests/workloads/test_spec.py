"""Validation and process semantics of the declarative spec layer."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.workloads import ArrivalProcess, ChurnProcess, QueryMix, WorkloadSpec


class TestArrivalProcess:
    def test_constant_is_flat(self):
        arrival = ArrivalProcess(kind="constant", base=5)
        assert [arrival.count_at(r) for r in range(4)] == [5, 5, 5, 5]

    def test_flash_bursts_on_schedule(self):
        arrival = ArrivalProcess(kind="flash", base=3, burst_multiplier=4.0, burst_every=4)
        counts = [arrival.count_at(r) for r in range(8)]
        assert counts == [3, 3, 3, 12, 3, 3, 3, 12]

    def test_diurnal_cycles_between_base_and_peak(self):
        arrival = ArrivalProcess(kind="diurnal", base=2, peak=8, period=8)
        counts = [arrival.count_at(r) for r in range(16)]
        assert counts[0] == 2
        assert max(counts) == 8
        assert min(counts) == 2
        assert counts[:8] == counts[8:]  # periodic

    def test_refresh_every_round_by_default(self):
        arrival = ArrivalProcess()
        assert all(arrival.refreshes_at(r) for r in range(4))

    def test_long_running_batch_refreshes_on_cadence_and_count_changes(self):
        arrival = ArrivalProcess(kind="flash", base=3, burst_every=4, refresh_every=100)
        assert arrival.refreshes_at(0)
        assert not arrival.refreshes_at(1)
        # The burst changes the count, which forces a refresh in and out.
        assert arrival.refreshes_at(3)
        assert arrival.refreshes_at(4)
        assert not arrival.refreshes_at(5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="square-wave"),
            dict(base=0),
            dict(burst_multiplier=0.5),
            dict(kind="diurnal", peak=1, base=4),
            dict(period=0),
            dict(refresh_every=0),
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            ArrivalProcess(**kwargs)

    def test_peak_only_constrains_the_diurnal_shape(self):
        # A large constant/flash base must not trip over the unused peak.
        assert ArrivalProcess(kind="constant", base=20).count_at(0) == 20
        assert ArrivalProcess(kind="flash", base=20).count_at(0) == 20


class TestChurnProcess:
    def test_defaults_are_static(self):
        assert ChurnProcess().is_static

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(leave_probability=-0.1),
            dict(leave_probability=1.5),
            dict(join_probability=2.0),
            dict(min_active=0),
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChurnProcess(**kwargs)


class TestQueryMix:
    def test_rejects_negative_skew(self):
        with pytest.raises(ConfigurationError):
            QueryMix(zipf_s=-1.0)

    def test_rejects_empty_categories(self):
        with pytest.raises(ConfigurationError):
            QueryMix(categories=())


class TestWorkloadSpec:
    def test_with_updates_revalidates(self):
        spec = WorkloadSpec(name="demo")
        with pytest.raises(ConfigurationError):
            spec.with_updates(rounds=0)

    def test_min_active_cannot_exceed_station_count(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(name="demo", station_count=2, churn=ChurnProcess(min_active=3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name=""),
            dict(name="x", method="quantum"),
            dict(name="x", fault_profile="catastrophic"),
            dict(name="x", seed="zero"),
            dict(name="x", users_per_category=0),
            dict(name="x", epsilon=-1),
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(**kwargs)

    def test_total_query_count_sums_the_arrival_process(self):
        spec = WorkloadSpec(
            name="demo",
            rounds=8,
            arrival=ArrivalProcess(kind="flash", base=3, burst_multiplier=4.0, burst_every=4),
        )
        assert spec.total_query_count() == 3 * 6 + 12 * 2


class TestSourceField:
    def _streaming(self, **overrides):
        from repro.datagen.source import SourceSpec

        fields = dict(kind="streaming", station_count=4, users_per_station=3)
        fields.update(overrides)
        return SourceSpec(**fields)

    def test_source_must_be_a_source_spec(self):
        with pytest.raises(ConfigurationError, match="SourceSpec"):
            WorkloadSpec(name="demo", source={"kind": "streaming"})

    def test_cohort_shape_cannot_be_spelled_twice(self):
        # Legacy field left at its default: fine.
        WorkloadSpec(name="demo", source=self._streaming())
        # Any non-default legacy spelling alongside source= is rejected.
        for legacy in (
            dict(users_per_category=3),
            dict(station_count=3),
            dict(days=2),
        ):
            with pytest.raises(ConfigurationError, match="spelled twice"):
                WorkloadSpec(name="demo", source=self._streaming(), **legacy)

    def test_streaming_source_requires_the_uniform_mix(self):
        from repro.workloads.spec import QueryMix

        with pytest.raises(ConfigurationError, match="uniform"):
            WorkloadSpec(
                name="demo", source=self._streaming(), mix=QueryMix(zipf_s=1.5)
            )

    def test_effective_source_mirrors_the_legacy_fields(self):
        spec = WorkloadSpec(name="demo", station_count=7, users_per_category=4)
        shape = spec.effective_source()
        assert shape.kind == "eager"
        assert shape.station_count == 7
        assert shape.users_per_category == 4
        assert spec.effective_station_count == 7

    def test_effective_station_count_prefers_the_source(self):
        spec = WorkloadSpec(name="demo", source=self._streaming(station_count=9))
        assert spec.effective_station_count == 9

    def test_churn_floor_checks_the_effective_city(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(
                name="demo",
                source=self._streaming(station_count=2),
                churn=ChurnProcess(min_active=3),
            )
