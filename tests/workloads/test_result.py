"""The streaming aggregation layer in isolation."""

import pytest
from fractions import Fraction

from repro.workloads.result import (
    RoundMetrics,
    StreamingStat,
    WorkloadAggregator,
)


def _metrics(index: int, **overrides: object) -> RoundMetrics:
    fields = dict(
        round_index=index,
        query_count=4,
        active_station_count=3,
        joined=(),
        left=(),
        downlink_bytes=100 * (index + 1),
        uplink_bytes=10,
        precision=1.0,
        recall=1.0,
        latency_s=0.1 * (index + 1),
        goodput_fraction=1.0,
        retransmit_count=0,
        lost_station_count=0,
        batch_refreshed=index == 0,
    )
    fields.update(overrides)
    return RoundMetrics(**fields)


class TestStreamingStat:
    def test_summary_tracks_running_aggregates(self):
        stat = StreamingStat()
        for value in (5.0, 1.0, 3.0):
            stat.push(value)
        summary = stat.summary()
        assert summary.count == 3
        assert summary.total == 9.0
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_nearest_rank_percentiles(self):
        stat = StreamingStat()
        for value in range(1, 101):  # 1..100
            stat.push(float(value))
        assert stat.percentile(50) == 50.0
        assert stat.percentile(90) == 90.0
        assert stat.percentile(99) == 99.0
        assert stat.percentile(100) == 100.0
        assert stat.percentile(1) == 1.0

    def test_percentile_of_a_single_value_is_that_value(self):
        stat = StreamingStat()
        stat.push(7.0)
        summary = stat.summary()
        assert summary.p50 == summary.p90 == summary.p99 == 7.0

    def test_empty_stream_rejects_queries(self):
        stat = StreamingStat()
        with pytest.raises(ValueError):
            stat.summary()
        with pytest.raises(ValueError):
            stat.percentile(50)

    def test_percentile_bounds_validated(self):
        stat = StreamingStat()
        stat.push(1.0)
        with pytest.raises(ValueError):
            stat.percentile(0)
        with pytest.raises(ValueError):
            stat.percentile(101)

    def test_interleaved_reads_stay_correct(self):
        # Reads force a lazy re-sort; pushes after a read must be folded into
        # the next read, repeatedly.
        stat = StreamingStat()
        for value in (9.0, 2.0):
            stat.push(value)
        assert stat.percentile(50) == 2.0
        stat.push(1.0)
        assert stat.summary().minimum == 1.0
        assert stat.percentile(100) == 9.0
        stat.push(11.0)
        assert stat.percentile(100) == 11.0
        assert stat.summary().count == 4

    def test_hundred_thousand_values_push_fast_and_rank_exactly(self):
        # Regression guard for the old O(n) insort push (quadratic overall)
        # and the float nearest-rank formula (can misrank at large counts).
        import random
        import time

        count = 100_000
        values = [float(v) for v in range(count)]
        random.Random(7).shuffle(values)
        stat = StreamingStat()
        start = time.perf_counter()
        for value in values:
            stat.push(value)
        summary = stat.summary()
        elapsed = time.perf_counter() - start
        # The insort implementation takes minutes here; the amortized one is
        # well under a second — 5s leaves room for slow CI machines.
        assert elapsed < 5.0
        assert summary.count == count
        assert summary.minimum == 0.0
        assert summary.maximum == float(count - 1)
        # Exact nearest-rank against the definition: rank = ceil(n*q/100).
        ordered = sorted(values)
        for q in (1, 50, 90, 99, 100):
            rank = -(-count * q // 100)
            assert stat.percentile(q) == ordered[rank - 1]
        # Fractional percentiles: the rank is computed in exact rational
        # arithmetic, so an exact-decimal q lands exactly on its boundary
        # (29.3% of 100k = rank 29300, no float rounding involved) ...
        assert stat.percentile(Fraction("29.3")) == ordered[29300 - 1]
        # ... and a float q means its *decimal* face value, not its binary
        # expansion: float 29.3 is slightly above decimal 29.3, and the old
        # Fraction(q) conversion let that push the ceiling one rank too far.
        assert stat.percentile(29.3) == ordered[29300 - 1]
        assert stat.percentile(99.9) == stat.percentile(Fraction("99.9"))
        assert stat.percentile(99.9) == ordered[99900 - 1]

    def test_float_percentiles_match_their_decimal_fractions_at_boundaries(self):
        # Boundary sweep at a large count: every one-decimal float percentile
        # agrees with its exact decimal Fraction — the satellite bugfix claim.
        count = 10_000
        stat = StreamingStat()
        for value in range(count):
            stat.push(float(value))
        for tenths in range(1, 1001):  # 0.1 .. 100.0
            q = tenths / 10.0
            assert stat.percentile(q) == stat.percentile(Fraction(tenths, 10))

    def test_percentile_rejects_non_numeric_and_non_finite_q(self):
        stat = StreamingStat()
        stat.push(1.0)
        with pytest.raises(TypeError):
            stat.percentile("50")
        with pytest.raises(TypeError):
            stat.percentile(True)
        with pytest.raises(ValueError):
            stat.percentile(float("nan"))
        with pytest.raises(ValueError):
            stat.percentile(float("inf"))

    def test_total_uses_compensated_summation(self):
        # A naive running float sum loses the small terms entirely under
        # catastrophic cancellation; Neumaier compensation keeps them.
        import math

        stat = StreamingStat()
        values = [1.0, 1e100, 1.0, -1e100] * 2_500
        for value in values:
            stat.push(value)
        assert stat.total == math.fsum(values) == 5_000.0
        summary = stat.summary()
        assert summary.total == 5_000.0
        assert summary.mean == 5_000.0 / len(values)

    def test_long_stream_total_does_not_drift(self):
        # 100k pushes of a non-representable value: the compensated total
        # matches fsum exactly (the naive running sum drifts measurably, which
        # moved the reported mean on long workloads).
        import math

        stat = StreamingStat()
        values = [0.1] * 100_000
        for value in values:
            stat.push(value)
        assert stat.total == math.fsum(values)
        naive = 0.0
        for value in values:
            naive += value
        assert naive != math.fsum(values)  # the bug this guards against


class TestWorkloadAggregator:
    def _aggregator(self) -> WorkloadAggregator:
        return WorkloadAggregator(
            scenario="demo",
            seed=7,
            drive="simulation",
            method="wbf",
            fault_profile="none",
            executor="serial",
        )

    def test_streams_fold_round_by_round(self):
        aggregator = self._aggregator()
        aggregator.add_round(_metrics(0), b"round-zero")
        first = aggregator.snapshot()
        aggregator.add_round(_metrics(1), b"round-one")
        second = aggregator.snapshot()
        assert first["bytes"].count == 1
        assert second["bytes"].count == 2
        assert second["bytes"].maximum > first["bytes"].maximum

    def test_rounds_must_arrive_in_order(self):
        aggregator = self._aggregator()
        aggregator.add_round(_metrics(0), b"")
        with pytest.raises(ValueError, match="in order"):
            aggregator.add_round(_metrics(2), b"")

    def test_finish_requires_at_least_one_round(self):
        with pytest.raises(ValueError, match="no rounds"):
            self._aggregator().finish()

    def test_result_totals_and_payload(self):
        aggregator = self._aggregator()
        aggregator.add_round(_metrics(0), b"alpha")
        aggregator.add_round(_metrics(1, retransmit_count=3), b"beta")
        result = aggregator.finish()
        assert result.total_bytes == 110 + 210
        assert result.total_queries == 8
        assert result.transcript_bytes() == (
            b"== round 0 ==\nalpha\n== round 1 ==\nbeta\n"
        )
        payload = result.to_payload()
        assert payload["totals"]["retransmits"] == 3
        assert payload["cumulative"]["latency_s"]["p50"] == 0.1

    def test_closed_loop_payload_has_no_open_loop_fields(self):
        # Closed-loop payload rows must stay byte-identical to the committed
        # benchmark baselines: the open-loop-only RoundMetrics fields are
        # stripped and no "phases" key appears.
        aggregator = self._aggregator()
        aggregator.add_round(_metrics(0), b"alpha")
        payload = aggregator.finish().to_payload()
        assert "phases" not in payload
        for row in payload["rounds"]:
            assert "phase" not in row
            assert "arrival_s" not in row
            assert "queue_delay_s" not in row
            assert "compute_time_s" not in row

    def test_phase_windows_fold_rounds_and_freeze(self):
        aggregator = self._aggregator()
        aggregator.begin_phase("plateau", offered_qps=2.0, duration_s=2.0, start_s=0.0)
        aggregator.add_round(
            _metrics(0, phase="plateau", arrival_s=0.5, queue_delay_s=0.0,
                     latency_s=0.1),
            b"a",
        )
        aggregator.add_round(
            _metrics(1, phase="plateau", arrival_s=1.0, queue_delay_s=0.2,
                     latency_s=0.3),
            b"b",
        )
        aggregator.begin_phase("drain", offered_qps=0.0, duration_s=1.0, start_s=2.0)
        result = aggregator.finish()
        plateau, drain = result.phases
        assert plateau.label == "plateau"
        assert plateau.arrival_count == 2
        assert plateau.offered_qps == 2.0
        # Completions (0.6, 1.3) fit inside the 2s wall: achieved = 2/2.
        assert plateau.achieved_qps == 1.0
        assert plateau.latency.maximum == 0.3
        assert plateau.queue_delay.maximum == 0.2
        assert drain.arrival_count == 0
        assert drain.latency is None and drain.queue_delay is None
        assert drain.achieved_qps == 0.0

    def test_achieved_qps_plateaus_when_completions_spill_past_the_wall(self):
        aggregator = self._aggregator()
        aggregator.begin_phase("spike", offered_qps=4.0, duration_s=1.0, start_s=0.0)
        # Four arrivals inside 1s whose last completion lands at t=2.0: the
        # window is judged over the 2s spill span, so achieved halves.
        for index in range(4):
            aggregator.add_round(
                _metrics(index, phase="spike", arrival_s=0.2 * (index + 1),
                         queue_delay_s=0.3 * index, latency_s=0.3 * index + 0.3),
                b"t",
            )
        (window,) = aggregator.finish().phases
        assert window.offered_qps == 4.0
        assert window.achieved_qps == pytest.approx(4.0 / 2.0)

    def test_open_loop_payload_carries_phases_and_round_fields(self):
        aggregator = self._aggregator()
        aggregator.begin_phase("plateau", offered_qps=1.0, duration_s=1.0)
        aggregator.add_round(
            _metrics(0, phase="plateau", arrival_s=0.5, queue_delay_s=0.1), b"a"
        )
        payload = aggregator.finish().to_payload()
        (phase_payload,) = payload["phases"]
        assert phase_payload["label"] == "plateau"
        assert phase_payload["arrival_count"] == 1
        assert phase_payload["latency"]["count"] == 1
        (row,) = payload["rounds"]
        assert row["phase"] == "plateau"
        assert row["arrival_s"] == 0.5
        assert row["queue_delay_s"] == 0.1
        assert "compute_time_s" not in row
