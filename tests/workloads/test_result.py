"""The streaming aggregation layer in isolation."""

import pytest
from fractions import Fraction

from repro.workloads.result import (
    RoundMetrics,
    StreamingStat,
    WorkloadAggregator,
)


def _metrics(index: int, **overrides: object) -> RoundMetrics:
    fields = dict(
        round_index=index,
        query_count=4,
        active_station_count=3,
        joined=(),
        left=(),
        downlink_bytes=100 * (index + 1),
        uplink_bytes=10,
        precision=1.0,
        recall=1.0,
        latency_s=0.1 * (index + 1),
        goodput_fraction=1.0,
        retransmit_count=0,
        lost_station_count=0,
        batch_refreshed=index == 0,
    )
    fields.update(overrides)
    return RoundMetrics(**fields)


class TestStreamingStat:
    def test_summary_tracks_running_aggregates(self):
        stat = StreamingStat()
        for value in (5.0, 1.0, 3.0):
            stat.push(value)
        summary = stat.summary()
        assert summary.count == 3
        assert summary.total == 9.0
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_nearest_rank_percentiles(self):
        stat = StreamingStat()
        for value in range(1, 101):  # 1..100
            stat.push(float(value))
        assert stat.percentile(50) == 50.0
        assert stat.percentile(90) == 90.0
        assert stat.percentile(99) == 99.0
        assert stat.percentile(100) == 100.0
        assert stat.percentile(1) == 1.0

    def test_percentile_of_a_single_value_is_that_value(self):
        stat = StreamingStat()
        stat.push(7.0)
        summary = stat.summary()
        assert summary.p50 == summary.p90 == summary.p99 == 7.0

    def test_empty_stream_rejects_queries(self):
        stat = StreamingStat()
        with pytest.raises(ValueError):
            stat.summary()
        with pytest.raises(ValueError):
            stat.percentile(50)

    def test_percentile_bounds_validated(self):
        stat = StreamingStat()
        stat.push(1.0)
        with pytest.raises(ValueError):
            stat.percentile(0)
        with pytest.raises(ValueError):
            stat.percentile(101)

    def test_interleaved_reads_stay_correct(self):
        # Reads force a lazy re-sort; pushes after a read must be folded into
        # the next read, repeatedly.
        stat = StreamingStat()
        for value in (9.0, 2.0):
            stat.push(value)
        assert stat.percentile(50) == 2.0
        stat.push(1.0)
        assert stat.summary().minimum == 1.0
        assert stat.percentile(100) == 9.0
        stat.push(11.0)
        assert stat.percentile(100) == 11.0
        assert stat.summary().count == 4

    def test_hundred_thousand_values_push_fast_and_rank_exactly(self):
        # Regression guard for the old O(n) insort push (quadratic overall)
        # and the float nearest-rank formula (can misrank at large counts).
        import random
        import time

        count = 100_000
        values = [float(v) for v in range(count)]
        random.Random(7).shuffle(values)
        stat = StreamingStat()
        start = time.perf_counter()
        for value in values:
            stat.push(value)
        summary = stat.summary()
        elapsed = time.perf_counter() - start
        # The insort implementation takes minutes here; the amortized one is
        # well under a second — 5s leaves room for slow CI machines.
        assert elapsed < 5.0
        assert summary.count == count
        assert summary.minimum == 0.0
        assert summary.maximum == float(count - 1)
        # Exact nearest-rank against the definition: rank = ceil(n*q/100).
        ordered = sorted(values)
        for q in (1, 50, 90, 99, 100):
            rank = -(-count * q // 100)
            assert stat.percentile(q) == ordered[rank - 1]
        # Fractional percentiles: the rank is computed in exact rational
        # arithmetic, so an exact-decimal q lands exactly on its boundary
        # (29.3% of 100k = rank 29300, no float rounding involved) ...
        assert stat.percentile(Fraction("29.3")) == ordered[29300 - 1]
        # ... while a float q is honored at the float's exact value: binary
        # 29.3 is slightly above decimal 29.3, which pushes the ceiling to the
        # next rank — deterministically, not at the whim of intermediate
        # float error like `len * q // 100` was.
        assert stat.percentile(29.3) == ordered[29301 - 1]


class TestWorkloadAggregator:
    def _aggregator(self) -> WorkloadAggregator:
        return WorkloadAggregator(
            scenario="demo",
            seed=7,
            drive="simulation",
            method="wbf",
            fault_profile="none",
            executor="serial",
        )

    def test_streams_fold_round_by_round(self):
        aggregator = self._aggregator()
        aggregator.add_round(_metrics(0), b"round-zero")
        first = aggregator.snapshot()
        aggregator.add_round(_metrics(1), b"round-one")
        second = aggregator.snapshot()
        assert first["bytes"].count == 1
        assert second["bytes"].count == 2
        assert second["bytes"].maximum > first["bytes"].maximum

    def test_rounds_must_arrive_in_order(self):
        aggregator = self._aggregator()
        aggregator.add_round(_metrics(0), b"")
        with pytest.raises(ValueError, match="in order"):
            aggregator.add_round(_metrics(2), b"")

    def test_finish_requires_at_least_one_round(self):
        with pytest.raises(ValueError, match="no rounds"):
            self._aggregator().finish()

    def test_result_totals_and_payload(self):
        aggregator = self._aggregator()
        aggregator.add_round(_metrics(0), b"alpha")
        aggregator.add_round(_metrics(1, retransmit_count=3), b"beta")
        result = aggregator.finish()
        assert result.total_bytes == 110 + 210
        assert result.total_queries == 8
        assert result.transcript_bytes() == (
            b"== round 0 ==\nalpha\n== round 1 ==\nbeta\n"
        )
        payload = result.to_payload()
        assert payload["totals"]["retransmits"] == 3
        assert payload["cumulative"]["latency_s"]["p50"] == 0.1
