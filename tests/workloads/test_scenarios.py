"""The scenario catalog: registry behavior and per-scenario shape claims."""

import pytest

from repro.workloads import (
    SCENARIOS,
    WorkloadSpec,
    get_scenario,
    register_scenario,
    scenario_names,
)

EXPECTED_SCENARIOS = {
    "steady-state",
    "flash-crowd",
    "diurnal",
    "churn-heavy",
    "skewed-hotset",
    "degraded-network",
    "long-session",
    "open-steady",
    "open-ramp",
    "open-saturation",
    "open-soak-1m",
    "hier-steady",
    "hier-degraded-region",
    "multi-tenant-skew",
}


def test_catalog_contains_the_documented_scenarios():
    assert set(scenario_names()) == EXPECTED_SCENARIOS


def test_every_scenario_is_a_valid_spec_named_after_its_key():
    for name, spec in SCENARIOS.items():
        assert isinstance(spec, WorkloadSpec)
        assert spec.name == name
        assert spec.description


def test_scenarios_have_distinct_seeds():
    seeds = [spec.seed for spec in SCENARIOS.values()]
    assert len(seeds) == len(set(seeds))


def test_get_scenario_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown scenario"):
        get_scenario("black-friday")


def test_register_scenario_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_scenario(SCENARIOS["steady-state"])


def test_scenario_shapes_match_their_stories():
    assert SCENARIOS["flash-crowd"].arrival.kind == "flash"
    assert SCENARIOS["diurnal"].arrival.kind == "diurnal"
    assert not SCENARIOS["churn-heavy"].churn.is_static
    assert SCENARIOS["skewed-hotset"].mix.zipf_s > 0
    assert SCENARIOS["degraded-network"].fault_profile != "none"
    assert SCENARIOS["degraded-network"].allow_partial
    assert SCENARIOS["long-session"].arrival.refresh_every > 1
    # The open-system trio brackets the catalog-scale saturation point.
    steady, ramp, saturation = (
        SCENARIOS["open-steady"],
        SCENARIOS["open-ramp"],
        SCENARIOS["open-saturation"],
    )
    for spec in (steady, ramp, saturation):
        assert spec.offered is not None
    assert steady.offered.rate_qps < saturation.offered.rate_qps
    assert saturation.offered.process == "scheduled"
    assert [phase.label for phase in ramp.offered.ramp] == [
        "warm-up", "plateau", "spike", "drain",
    ]
    assert ramp.offered.ramp[-1].rate_multiplier == 0.0  # the drain is silent
    # Every closed-loop scenario stays closed-loop: no stray offered loads.
    for name, spec in SCENARIOS.items():
        assert (spec.offered is not None) == name.startswith("open-")
    # The soak declares a million users through a bounded streaming source.
    soak = SCENARIOS["open-soak-1m"]
    assert soak.source is not None and soak.source.kind == "streaming"
    assert soak.source.declared_user_count == 1_000_000
    assert soak.source.max_resident < soak.source.station_count
    assert soak.source.stations_per_round is not None
    # The soak is the only source-backed catalog entry (for now); eager
    # scenarios keep spelling their shape through the legacy fields.
    for name, spec in SCENARIOS.items():
        assert (spec.source is not None) == (name == "open-soak-1m")
