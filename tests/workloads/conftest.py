"""Shared helpers for the workload replay suite.

Every test runs scenarios at *tiny* scale (the scenario's shape with a small
city and few rounds) so the whole suite stays inside tier-1 budgets; the
replay guarantees under test are scale-invariant, so a tiny replay pins the
same contract as a production-sized one.
"""

from __future__ import annotations

import pytest

from repro.workloads import WorkloadResult, get_scenario, run_workload
from repro.workloads.spec import WorkloadSpec

#: Tiny-scale overrides applied to every scenario under test.
TINY = dict(users_per_category=3, station_count=3, rounds=3)


def tiny_spec(name: str, **extra: object) -> WorkloadSpec:
    """The named scenario scaled down to test size.

    Source-backed scenarios keep their cohort shape inside the
    :class:`~repro.datagen.source.SourceSpec` (spelling it twice through the
    legacy fields is a :class:`ConfigurationError`), so the tiny overrides
    are mapped onto the source instead — with a residency cap small enough
    that even the tiny city exercises eviction.
    """
    spec = get_scenario(name)
    overrides = dict(TINY)
    if spec.churn.min_active > overrides["station_count"]:
        from dataclasses import replace

        overrides["churn"] = replace(spec.churn, min_active=1)
    overrides.update(extra)
    if spec.source is not None:
        station_count = int(overrides.pop("station_count"))
        overrides.pop("users_per_category", None)
        source_updates: dict[str, object] = {"station_count": station_count}
        if spec.source.kind == "streaming":
            source_updates["users_per_station"] = 4
            source_updates["max_resident"] = 2
            if spec.source.stations_per_round is not None:
                source_updates["stations_per_round"] = min(
                    spec.source.stations_per_round, station_count
                )
        overrides["source"] = spec.source.with_updates(**source_updates)
    return spec.with_updates(**overrides)


def run_tiny(name: str, drive: str = "simulation", **kwargs: object) -> WorkloadResult:
    """Run the named scenario at test scale."""
    return run_workload(tiny_spec(name), drive=drive, **kwargs)


@pytest.fixture(scope="session")
def steady_result() -> WorkloadResult:
    """One shared tiny steady-state run for the cheap structural assertions."""
    return run_tiny("steady-state")
