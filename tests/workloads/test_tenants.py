"""Multi-tenant multiplexing: spec validation, accounting invariants, isolation.

The tenant contract is an exact partition: every round a tenant drives is
tagged with its name, and the per-tenant windows in ``WorkloadResult.tenants``
must sum back to the run's totals — bytes, queries and round counts alike.
Tenant streams are isolated by construction (each gets its own seeded RNG
stream derived from a tenant-qualified spec name), which the determinism and
skew assertions below observe from the outside.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import ConfigurationError
from repro.topology import TopologySpec
from repro.workloads import QueryMix, TenantSpec, WorkloadSpec, run_workload
from repro.workloads.spec import OfferedLoad, RampPhase

from .conftest import run_tiny, tiny_spec

TENANTS = (
    TenantSpec("hot", QueryMix(zipf_s=1.5)),
    TenantSpec("broad", QueryMix()),
)


def _tenant_spec(**extra):
    return tiny_spec(
        "multi-tenant-skew",
        rounds=4,
        **extra,
    )


class TestSpecValidation:
    def test_tenant_names_must_be_non_empty(self):
        with pytest.raises(ConfigurationError, match="name"):
            TenantSpec("")

    def test_tenant_mix_must_be_a_query_mix(self):
        with pytest.raises(ConfigurationError, match="mix"):
            TenantSpec("hot", mix="zipf")

    def test_tenant_names_must_be_unique(self):
        with pytest.raises(ConfigurationError, match="unique"):
            WorkloadSpec(
                name="dup",
                tenants=(TenantSpec("a"), TenantSpec("a")),
                topology=TopologySpec(tenant_count=2),
            )

    def test_tenant_mix_mismatch_is_rejected(self):
        with pytest.raises(ConfigurationError, match="tenant/mix mismatch"):
            WorkloadSpec(
                name="mismatch",
                tenants=TENANTS,
                topology=TopologySpec(tenant_count=3),
            )

    def test_single_stream_workloads_need_no_tenant_declarations(self):
        spec = WorkloadSpec(name="plain")
        assert spec.tenants == ()

    def test_topology_regions_must_fit_the_deployment(self):
        with pytest.raises(ConfigurationError, match="must not exceed stations"):
            WorkloadSpec(
                name="overpartitioned",
                station_count=3,
                topology=TopologySpec(kind="two-tier", regions=5),
            )

    def test_tenants_require_the_materialized_dataset_path(self):
        from repro.datagen.source import SourceSpec

        with pytest.raises(ConfigurationError, match="materialized dataset"):
            WorkloadSpec(
                name="streamed-tenants",
                tenants=TENANTS,
                topology=TopologySpec(tenant_count=2),
                source=SourceSpec(kind="eager", station_count=3, users_per_station=4),
            )


class TestAccountingInvariants:
    @pytest.fixture(scope="class", params=["simulation", "session"])
    def result(self, request):
        return run_workload(_tenant_spec(), drive=request.param)

    def test_every_round_is_tagged_with_its_tenant(self, result):
        names = [metrics.tenant for metrics in result.rounds]
        assert set(names) == {"hot", "broad"}
        # Round-robin in declaration order: hot, broad, hot, broad, ...
        assert names == ["hot", "broad"] * (len(names) // 2)

    def test_tenant_windows_partition_the_totals_exactly(self, result):
        windows = {window.name: window for window in result.tenants}
        assert set(windows) == {"hot", "broad"}
        assert sum(w.round_count for w in windows.values()) == result.round_count
        assert sum(w.query_count for w in windows.values()) == result.total_queries
        assert sum(w.total_bytes for w in windows.values()) == result.total_bytes
        assert (
            sum(w.downlink_bytes + w.uplink_bytes for w in windows.values())
            == result.total_bytes
        )

    def test_tenant_windows_match_their_tagged_rounds(self, result):
        for window in result.tenants:
            rounds = [m for m in result.rounds if m.tenant == window.name]
            assert window.round_count == len(rounds)
            assert window.query_count == sum(m.query_count for m in rounds)
            assert window.downlink_bytes == sum(m.downlink_bytes for m in rounds)
            assert window.uplink_bytes == sum(m.uplink_bytes for m in rounds)

    def test_payload_carries_the_tenant_windows(self, result):
        payload = result.to_payload()
        assert [entry["name"] for entry in payload["tenants"]] == ["hot", "broad"]
        for entry in payload["tenants"]:
            assert entry["round_count"] > 0

    def test_single_stream_payloads_stay_tenant_free(self):
        result = run_tiny("steady-state")
        assert result.tenants == ()
        payload = result.to_payload()
        assert "tenants" not in payload
        assert all("tenant" not in entry for entry in payload["rounds"])


class TestIsolationAndDeterminism:
    def test_reruns_are_byte_identical(self):
        first = run_workload(_tenant_spec())
        second = run_workload(_tenant_spec())
        assert second.transcript_bytes() == first.transcript_bytes()
        assert second.to_payload() == first.to_payload()

    def test_tenant_streams_are_independent_of_each_other(self):
        """Swapping one tenant's mix must not disturb the other's queries."""
        base = run_workload(_tenant_spec())
        swapped = run_workload(
            _tenant_spec(
                tenants=(TenantSpec("hot", QueryMix(zipf_s=0.5)), TENANTS[1])
            )
        )
        broad_base = next(w for w in base.tenants if w.name == "broad")
        broad_swapped = next(w for w in swapped.tenants if w.name == "broad")
        assert broad_swapped.query_count == broad_base.query_count
        assert broad_swapped.downlink_bytes == broad_base.downlink_bytes

    def test_open_drive_rejects_tenants(self):
        spec = _tenant_spec(
            offered=OfferedLoad(
                rate_qps=2.0, ramp=(RampPhase("plateau", 4.0, 1.0),), max_arrivals=4
            )
        )
        with pytest.raises(ValueError, match="closed-loop"):
            run_workload(spec, drive="open")
