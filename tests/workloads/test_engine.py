"""Engine semantics: arrivals, churn, skew, faults and the two drive modes."""

import pytest

from repro.evaluation.benchjson import (
    read_bench_json,
    workload_payload,
    write_bench_json,
)
from repro.workloads import run_workload

from .conftest import run_tiny, tiny_spec


class TestSimulationDrive:
    def test_round_structure_follows_the_spec(self, steady_result):
        spec = tiny_spec("steady-state")
        assert steady_result.round_count == spec.rounds
        assert steady_result.scenario == spec.name
        for index, metrics in enumerate(steady_result.rounds):
            assert metrics.round_index == index
            assert metrics.query_count == spec.arrival.count_at(index)
            assert metrics.total_bytes > 0
            assert 0.0 <= metrics.precision <= 1.0
            assert 0.0 <= metrics.recall <= 1.0

    def test_flash_crowd_rounds_carry_more_queries_and_bytes(self):
        result = run_workload(tiny_spec("flash-crowd").with_updates(rounds=4))
        burst = result.rounds[3]
        quiet = result.rounds[2]
        assert burst.query_count > quiet.query_count
        assert burst.downlink_bytes > quiet.downlink_bytes

    def test_churn_heavy_actually_churns(self):
        result = run_workload(tiny_spec("churn-heavy").with_updates(rounds=6))
        churn_events = sum(len(m.joined) + len(m.left) for m in result.rounds)
        assert churn_events > 0
        # Round 0 anchors the scenario at full deployment.
        assert result.rounds[0].joined == ()
        assert result.rounds[0].left == ()
        for metrics in result.rounds:
            assert metrics.active_station_count >= 1

    def test_degraded_network_pays_reliability_costs(self):
        result = run_tiny("degraded-network")
        assert sum(m.retransmit_count for m in result.rounds) > 0
        assert min(m.goodput_fraction for m in result.rounds) < 1.0
        # Chaos changes costs, never what a surviving round computes.
        clean = run_workload(tiny_spec("degraded-network").with_updates(fault_profile="none"))
        assert [m.precision for m in clean.rounds] == [m.precision for m in result.rounds]

    def test_skewed_hotset_concentrates_the_query_mix(self):
        skewed = tiny_spec("skewed-hotset").with_updates(rounds=6)
        uniform = skewed.with_updates(mix=skewed.mix.__class__(zipf_s=0.0))
        from repro.cluster.spec import ClusterSpec
        from repro.datagen.workload import build_dataset
        from repro.workloads.engine import _QuerySampler

        dataset = build_dataset(ClusterSpec.from_workload(skewed).dataset)
        skewed_users = [
            q.query_id.rsplit("-", 1)[-1]
            for r in range(20)
            for q in _QuerySampler(skewed, dataset).sample(r, 5)
        ]
        uniform_users = [
            q.query_id.rsplit("-", 1)[-1]
            for r in range(20)
            for q in _QuerySampler(uniform, dataset).sample(r, 5)
        ]
        def top_share(draws):
            counts = sorted(
                (draws.count(user) for user in set(draws)), reverse=True
            )
            return counts[0] / len(draws)

        assert top_share(skewed_users) > top_share(uniform_users)

    def test_unknown_drive_rejected(self):
        with pytest.raises(ValueError, match="drive"):
            run_workload(tiny_spec("steady-state"), drive="teleport")

    def test_unknown_mix_category_rejected(self):
        spec = tiny_spec("steady-state")
        spec = spec.with_updates(mix=spec.mix.__class__(categories=("astronauts",)))
        with pytest.raises(ValueError, match="unknown categories"):
            run_workload(spec)


class TestSessionDrive:
    def test_long_session_ships_fewer_bytes_than_full_rounds(self):
        spec = tiny_spec("long-session").with_updates(rounds=4)
        session = run_workload(spec, drive="session")
        simulation = run_workload(spec, drive="simulation")
        assert session.total_bytes < simulation.total_bytes

    def test_batch_rotation_recharges_downlink(self):
        spec = tiny_spec("long-session").with_updates(rounds=4)
        result = run_workload(spec, drive="session")
        # Round 0 disseminates; a quiet round ships downlink only to joiners
        # (who must receive the current artifact before they can match).
        assert result.rounds[0].downlink_bytes > 0
        for metrics in result.rounds:
            if not metrics.batch_refreshed and not metrics.joined:
                assert metrics.downlink_bytes == 0
            if metrics.joined and not metrics.batch_refreshed:
                assert metrics.downlink_bytes > 0

    def test_session_results_come_from_delivered_reports(self):
        # With a single-attempt budget under loss, some deltas never deliver:
        # the station stays dirty and the center keeps serving its previous
        # state, which must show up in the round's retrieval quality, not
        # only in goodput.
        from repro.distributed.network import NetworkConfig

        spec = tiny_spec("steady-state").with_updates(
            fault_profile="lossy", allow_partial=True, seed=1
        )
        result = run_workload(
            spec, drive="session", network_config=NetworkConfig(max_attempts=1)
        )
        starved = [m for m in result.rounds if m.lost_station_count > 0]
        assert starved, "expected at least one undelivered delta under loss"
        assert min(m.recall for m in starved) < 1.0

    def test_session_drive_honors_the_spec_fault_pairing(self):
        # A strict spec (allow_partial=False) must fail loudly when a delta
        # cannot be delivered, exactly like the simulation drive.
        from repro.distributed.events import RoundTimeoutError
        from repro.distributed.network import NetworkConfig

        spec = tiny_spec("steady-state").with_updates(
            fault_profile="lossy", allow_partial=False, seed=1
        )
        with pytest.raises(RoundTimeoutError):
            run_workload(
                spec, drive="session", network_config=NetworkConfig(max_attempts=1)
            )

    def test_session_runs_record_the_serial_executor(self):
        result = run_tiny("steady-state", drive="session", executor="process")
        assert result.executor == "serial"

    def test_session_drive_survives_chaos(self):
        result = run_tiny("degraded-network", drive="session")
        assert result.round_count == tiny_spec("degraded-network").rounds


class TestBenchJsonEmission:
    def test_workload_payload_round_trips(self, steady_result, tmp_path):
        payload = workload_payload(steady_result)
        path = write_bench_json(tmp_path, "workload_steady_state", payload)
        document = read_bench_json(path)
        assert document["benchmark"] == "workload_steady_state"
        assert document["payload"]["round_count"] == steady_result.round_count
        assert document["payload"]["totals"]["bytes"] == steady_result.total_bytes
        # The wall-clock compute fields never reach the persisted payload.
        assert all("compute_time_s" not in row for row in document["payload"]["rounds"])

    def test_workload_payload_rejects_non_results(self):
        class Impostor:
            def to_payload(self):
                return {"scenario": "x"}

        with pytest.raises(ValueError, match="missing required key"):
            workload_payload(Impostor())
