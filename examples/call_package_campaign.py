"""The paper's motivating scenario: targeting a call-package campaign.

A mobile operator wants to promote a call package to customers whose communication
pattern resembles a small set of existing, satisfied customers.  The exemplar
customers' data is split across base stations; the operator deploys DI-matching
behind the ``repro.cluster.Cluster`` facade to find the top-K most similar
subscribers without hauling every station's raw data to the data center — and
compares the same deployment against the naive ship-everything method by
swapping only the spec's protocol sub-spec.

Run with:  python examples/call_package_campaign.py
(set REPRO_EXAMPLE_SCALE=tiny for the CI smoke scale)
"""

from __future__ import annotations

import os

from repro import (
    Cluster,
    ClusterSpec,
    DatasetSpec,
    DIMatchingConfig,
    ProtocolSpec,
    RoundOptions,
    TransportSpec,
    build_dataset,
)
from repro.datagen.workload import build_query_workload
from repro.evaluation import evaluate_retrieval, ground_truth_users

TINY = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"


def main() -> None:
    # A mid-sized district: ~200 subscribers spread over six cells, two days of data
    # at 30-minute granularity, with natural person-to-person timing jitter.
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=5 if TINY else 30,
            station_count=3 if TINY else 6,
            days=1 if TINY else 2,
            intervals_per_day=24 if TINY else 48,
            noise_level=1,
            seed=77,
        )
    )
    print(f"district dataset: {dataset}")

    # The campaign team picks exemplar customers from two profiles it wants to reach:
    # heavy daytime users (field sales) and evening-heavy users (students).
    workload = build_query_workload(
        dataset,
        query_count=4,
        epsilon=2,
        categories=["field_sales", "student"],
        seed=5,
    )
    queries = list(workload.queries)
    truth = ground_truth_users(dataset, queries, workload.epsilon)
    print(f"campaign exemplars: {len(queries)}; truly similar subscribers: {len(truth)}")

    # One deployment spec over a bandwidth-limited backhaul; the method is just
    # the protocol sub-spec, so WBF vs naive is a one-field change.
    spec = ClusterSpec(
        name="call-package",
        protocol=ProtocolSpec(
            method="wbf", epsilon=2, config=DIMatchingConfig(epsilon=2, sample_count=12)
        ),
        transport=TransportSpec(bandwidth_bytes_per_s=1_000_000, latency_s=0.02),
    )
    outcomes = {}
    for method in ("wbf", "naive"):
        method_spec = spec.with_updates(
            protocol=ProtocolSpec(method=method, epsilon=2, config=spec.protocol.config)
        )
        with Cluster(method_spec, dataset=dataset) as cluster:
            cluster.subscribe(queries)
            outcomes[method] = cluster.round(RoundOptions(k=len(truth)))

    for method, report in outcomes.items():
        metrics = evaluate_retrieval(report.retrieved_user_ids, truth)
        costs = report.costs
        print(
            f"\n[{method}] precision={metrics.precision:.3f} "
            f"recall={metrics.recall:.3f}"
        )
        print(
            f"  communication: {costs.communication_bytes / 1024:.1f} KiB "
            f"(downlink {costs.downlink_bytes / 1024:.1f}, uplink {costs.uplink_bytes / 1024:.1f})"
        )
        print(
            f"  time: {costs.total_time_s * 1000:.0f} ms "
            f"(computation {costs.computation_time_s * 1000:.0f} ms, "
            f"transmission {costs.transmission_time_s * 1000:.0f} ms)"
        )

    saving = 1 - (
        outcomes["wbf"].costs.communication_bytes
        / outcomes["naive"].costs.communication_bytes
    )
    print(f"\nDI-matching moved {saving:.0%} fewer bytes than shipping the raw data.")

    print("\ntop recommended subscribers for the campaign:")
    for entry in outcomes["wbf"].results.top(10):
        print(
            f"  {entry.user_id:<28} score={entry.score:.3f} "
            f"category={dataset.category_of(entry.user_id)}"
        )


if __name__ == "__main__":
    main()
