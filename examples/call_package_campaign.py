"""The paper's motivating scenario: targeting a call-package campaign.

A mobile operator wants to promote a call package to customers whose communication
pattern resembles a small set of existing, satisfied customers.  The exemplar
customers' data is split across base stations; the operator runs DI-matching to find
the top-K most similar subscribers without hauling every station's raw data to the
data center.

Run with:  python examples/call_package_campaign.py
"""

from __future__ import annotations

from repro import DatasetSpec, DIMatchingConfig, build_dataset
from repro.baselines import NaiveProtocol
from repro.core import DIMatchingProtocol
from repro.datagen.workload import build_query_workload
from repro.distributed import DistributedSimulation, NetworkConfig
from repro.evaluation import evaluate_retrieval, ground_truth_users


def main() -> None:
    # A mid-sized district: ~200 subscribers spread over six cells, two days of data
    # at 30-minute granularity, with natural person-to-person timing jitter.
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=30,
            station_count=6,
            days=2,
            intervals_per_day=48,
            noise_level=1,
            seed=77,
        )
    )
    print(f"district dataset: {dataset}")

    # The campaign team picks exemplar customers from two profiles it wants to reach:
    # heavy daytime users (field sales) and evening-heavy users (students).
    workload = build_query_workload(
        dataset,
        query_count=4,
        epsilon=2,
        categories=["field_sales", "student"],
        seed=5,
    )
    queries = list(workload.queries)
    truth = ground_truth_users(dataset, queries, workload.epsilon)
    print(f"campaign exemplars: {len(queries)}; truly similar subscribers: {len(truth)}")

    # Simulate the distributed round over a bandwidth-limited backhaul.
    simulation = DistributedSimulation(
        dataset, NetworkConfig(bandwidth_bytes_per_s=1_000_000, latency_s=0.02)
    )
    config = DIMatchingConfig(epsilon=2, sample_count=12)
    top_k = len(truth)

    wbf_outcome = simulation.run(DIMatchingProtocol(config), queries, k=top_k)
    naive_outcome = simulation.run(NaiveProtocol(epsilon=2), queries, k=top_k)

    for outcome in (wbf_outcome, naive_outcome):
        metrics = evaluate_retrieval(outcome.retrieved_user_ids, truth)
        costs = outcome.costs
        print(
            f"\n[{outcome.method}] precision={metrics.precision:.3f} "
            f"recall={metrics.recall:.3f}"
        )
        print(
            f"  communication: {costs.communication_bytes / 1024:.1f} KiB "
            f"(downlink {costs.downlink_bytes / 1024:.1f}, uplink {costs.uplink_bytes / 1024:.1f})"
        )
        print(
            f"  time: {costs.total_time_s * 1000:.0f} ms "
            f"(computation {costs.computation_time_s * 1000:.0f} ms, "
            f"transmission {costs.transmission_time_s * 1000:.0f} ms)"
        )

    saving = 1 - wbf_outcome.costs.communication_bytes / naive_outcome.costs.communication_bytes
    print(f"\nDI-matching moved {saving:.0%} fewer bytes than shipping the raw data.")

    print("\ntop recommended subscribers for the campaign:")
    for entry in wbf_outcome.results.top(10):
        print(
            f"  {entry.user_id:<28} score={entry.score:.3f} "
            f"category={dataset.category_of(entry.user_id)}"
        )


if __name__ == "__main__":
    main()
