"""Quickstart: stand up a cluster, subscribe a query batch, run one round.

The ``repro.cluster.Cluster`` facade is the one public entry point to the
distributed matching system: a validated :class:`ClusterSpec` describes the
deployment (synthetic city, protocol, transport, executor, faults), and the
facade's verbs drive it — ``subscribe()`` registers the query batch,
``round()`` executes one full wire round and returns a typed report.

Run with:  python examples/quickstart.py
(set REPRO_EXAMPLE_SCALE=tiny for the CI smoke scale)
"""

from __future__ import annotations

import os

from repro import (
    Cluster,
    ClusterSpec,
    DatasetSpec,
    DIMatchingConfig,
    ProtocolSpec,
    RoundOptions,
    build_query_workload,
)
from repro.evaluation import evaluate_retrieval, ground_truth_users

TINY = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"


def main() -> None:
    # 1. Describe the deployment: six occupation categories, four base
    #    stations, one day of hourly communication patterns per user — and the
    #    WBF protocol of the paper, all validated before anything runs.
    spec = ClusterSpec(
        name="quickstart",
        dataset=DatasetSpec(
            users_per_category=4 if TINY else 12,
            station_count=3 if TINY else 4,
            days=1,
            noise_level=0,
            seed=1,
        ),
        protocol=ProtocolSpec(
            method="wbf",
            epsilon=0,
            config=DIMatchingConfig(epsilon=0, sample_count=12, hash_count=4),
        ),
    )

    with Cluster(spec) as cluster:
        print(f"cluster: {cluster}")
        print(f"stations: {', '.join(cluster.station_ids)}")

        # 2. A service provider supplies three "preferred customer" patterns
        #    as queries (each query = that customer's per-station fragments).
        workload = build_query_workload(cluster.dataset, query_count=3, epsilon=0)
        for query in workload.queries:
            print(
                f"query {query.query_id}: {query.station_count} local fragments, "
                f"global total {query.global_pattern.total}"
            )

        # 3. Subscribe the batch and run one full wire round: encode the
        #    queries into one Weighted Bloom Filter, broadcast it, match at
        #    every base station, aggregate the (id, weight) reports.
        cluster.subscribe(list(workload.queries))
        report = cluster.round(RoundOptions(net_seed=0))

        print(f"\nretrieved {len(report.results)} candidate users (top 10 shown):")
        for entry in list(report.results)[:10]:
            category = cluster.dataset.category_of(entry.user_id)
            print(f"  {entry.user_id:<28} score={entry.score:.3f}  category={category}")
        print(
            f"round moved {report.total_bytes} wire bytes "
            f"(downlink {report.downlink_bytes}, uplink {report.uplink_bytes}) "
            f"in {report.latency_s * 1000:.1f} ms of simulated transmission"
        )

        # 4. Compare against the exact ground truth (users whose *global*
        #    pattern is ε-similar to some query).
        truth = ground_truth_users(cluster.dataset, list(workload.queries), 0)
        complete_matches = [
            entry.user_id for entry in report.results if entry.score == 1.0
        ]
        metrics = evaluate_retrieval(complete_matches, truth)
        print(
            f"\nground truth: {len(truth)} users; complete matches: {len(complete_matches)}; "
            f"precision={metrics.precision:.3f} recall={metrics.recall:.3f} f1={metrics.f1:.3f}"
        )


if __name__ == "__main__":
    main()
