"""Quickstart: build a small synthetic city, run DI-matching, inspect the results.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DatasetSpec,
    DIMatchingConfig,
    build_dataset,
    build_query_workload,
    run_dimatching,
)
from repro.evaluation import evaluate_retrieval, ground_truth_users


def main() -> None:
    # 1. Build a synthetic distributed dataset: six occupation categories, four base
    #    stations, one day of hourly communication patterns per user.
    dataset = build_dataset(
        DatasetSpec(users_per_category=12, station_count=4, days=1, noise_level=0, seed=1)
    )
    print(f"dataset: {dataset}")
    print(f"stations: {', '.join(dataset.station_ids)}")

    # 2. A service provider supplies three "preferred customer" patterns as queries
    #    (each query = that customer's per-station local patterns).
    workload = build_query_workload(dataset, query_count=3, epsilon=0)
    for query in workload.queries:
        print(
            f"query {query.query_id}: {query.station_count} local fragments, "
            f"global total {query.global_pattern.total}"
        )

    # 3. Run DI-matching: encode the queries into one Weighted Bloom Filter,
    #    match at every base station, aggregate the (id, weight) reports.
    config = DIMatchingConfig(epsilon=0, sample_count=12, hash_count=4)
    results = run_dimatching(dataset, list(workload.queries), config, k=None)

    print(f"\nretrieved {len(results)} candidate users (top 10 shown):")
    for entry in list(results)[:10]:
        category = dataset.category_of(entry.user_id)
        print(f"  {entry.user_id:<28} score={entry.score:.3f}  category={category}")

    # 4. Compare against the exact ground truth (users whose *global* pattern is
    #    ε-similar to some query).
    truth = ground_truth_users(dataset, list(workload.queries), workload.epsilon)
    complete_matches = [entry.user_id for entry in results if entry.score == 1.0]
    metrics = evaluate_retrieval(complete_matches, truth)
    print(
        f"\nground truth: {len(truth)} users; complete matches: {len(complete_matches)}; "
        f"precision={metrics.precision:.3f} recall={metrics.recall:.3f} f1={metrics.f1:.3f}"
    )


if __name__ == "__main__":
    main()
