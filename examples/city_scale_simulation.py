"""City-scale style simulation: all methods, all cost metrics, one report.

Builds a larger synthetic city (several hundred subscribers, two days of 30-minute
intervals), then runs the naive, local-only, plain-BF and WBF protocols over the
simulated distributed environment and prints an evaluation report in the style of
the paper's Section V (precision/recall plus communication, storage and time
relative to the naive method).  ``run_comparison`` drives every method through
the same ``repro.cluster.Cluster`` engine the facade exposes.

Run with:  python examples/city_scale_simulation.py
(set REPRO_EXAMPLE_SCALE=tiny for the CI smoke scale)
"""

from __future__ import annotations

import os

from repro import DatasetSpec, DIMatchingConfig, build_dataset
from repro.datagen.workload import build_query_workload
from repro.evaluation import run_comparison
from repro.utils.asciiplot import render_table

TINY = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"


def main() -> None:
    dataset = build_dataset(
        DatasetSpec(
            users_per_category=6 if TINY else 80,
            station_count=3 if TINY else 8,
            days=1 if TINY else 2,
            intervals_per_day=24 if TINY else 48,
            noise_level=0,
            cliques_per_place=3,
            replicated_decoys_per_category=3,
            seed=2024,
        )
    )
    print(f"synthetic city: {dataset}")
    print(f"raw data volume at stations: {dataset.total_raw_size_bytes() / 1024:.0f} KiB")

    workload = build_query_workload(
        dataset, query_count=4 if TINY else 18, epsilon=0, seed=3
    )
    config = DIMatchingConfig(epsilon=0, sample_count=12, hash_count=4)

    result = run_comparison(
        dataset, workload, config, methods=("naive", "local", "bf", "wbf")
    )
    print(
        f"\nquery batch: {result.query_count} patterns "
        f"({result.combined_pattern_count} combined patterns), "
        f"{len(result.ground_truth)} truly similar subscribers\n"
    )

    rows = []
    for method in ("naive", "local", "bf", "wbf"):
        outcome = result.outcome(method)
        relative = result.relative_costs(method)
        rows.append(
            [
                method,
                round(outcome.metrics.precision, 3),
                round(outcome.metrics.recall, 3),
                round(outcome.metrics.f1, 3),
                f"{outcome.costs.communication_bytes / 1024:.1f}",
                round(relative["communication"], 3),
                round(relative["storage"], 3),
                f"{outcome.costs.total_time_s * 1000:.0f}",
            ]
        )
    print(
        render_table(
            [
                "method",
                "precision",
                "recall",
                "F1",
                "comm KiB",
                "comm vs naive",
                "storage vs naive",
                "time ms",
            ],
            rows,
        )
    )
    print(
        "\nExpected shape: naive and WBF precision ≈ 1.0, local-only misses split "
        "users, plain BF admits structural false positives; WBF moves a small "
        "fraction of the naive method's bytes."
    )


if __name__ == "__main__":
    main()
