"""Online monitoring: keep a top-K answer fresh as station data evolves.

The paper's running example asks for near-real-time feedback: communication
data keep arriving at base stations and the service provider wants the current
top-K without recomputing everything.  A delta session of the
``repro.cluster.Cluster`` facade (``open_session(mode="deltas")``) encodes the
query batch once, re-matches only the stations whose data changed, and ships
only their report deltas through the simulated transport on every ``step()``.

Run with:  python examples/online_monitoring.py
(set REPRO_EXAMPLE_SCALE=tiny for the CI smoke scale)
"""

from __future__ import annotations

import os

from repro import (
    Cluster,
    ClusterSpec,
    DatasetSpec,
    DIMatchingConfig,
    ProtocolSpec,
    RoundOptions,
)
from repro.datagen.workload import build_query_workload

TINY = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"


def main() -> None:
    spec = ClusterSpec(
        name="online-monitoring",
        dataset=DatasetSpec(
            users_per_category=4 if TINY else 10,
            station_count=3 if TINY else 5,
            noise_level=0,
            seed=13,
        ),
        protocol=ProtocolSpec(
            method="wbf",
            epsilon=0,
            config=DIMatchingConfig(epsilon=0, sample_count=12),
        ),
    )
    with Cluster(spec) as cluster:
        workload = build_query_workload(cluster.dataset, query_count=3, epsilon=0)

        session = cluster.open_session(mode="deltas")
        session.subscribe(list(workload.queries))
        print(f"session: {session}")

        # Stations come online one after another (e.g. their monthly upload
        # window); each step ships only what changed since the last one.
        for round_index, station_id in enumerate(cluster.station_ids, start=1):
            report_count = session.publish(
                station_id, cluster.dataset.local_patterns_at(station_id)
            )
            report = session.step(RoundOptions(net_seed=round_index, k=5))
            complete = sum(1 for entry in report.results if entry.score == 1.0)
            print(
                f"round {round_index}: station {station_id} published "
                f"{report_count:3d} patterns, shipped "
                f"{len(report.delivered_station_ids)} delta(s) "
                f"({report.uplink_bytes} B up) -> {complete} complete matches "
                f"in the current top-5"
            )

        print("\nfinal top-5 after all stations reported:")
        final = session.step(RoundOptions(net_seed=0, k=5))
        for entry in final.results:
            print(f"  {entry.user_id:<28} score={entry.score:.3f}")

        # A data correction arrives at one station: only that station is
        # re-matched and only its delta crosses the wire.
        first_station = cluster.station_ids[0]
        session.publish(
            first_station, cluster.dataset.local_patterns_at(first_station)
        )
        correction = session.step(RoundOptions(net_seed=99, k=5))
        print(
            f"\nafter a correction at {first_station}: "
            f"re-shipped {len(correction.delivered_station_ids)} station "
            f"({correction.uplink_bytes} B) — the other "
            f"{len(cluster.station_ids) - 1} stations stayed untouched"
        )


if __name__ == "__main__":
    main()
