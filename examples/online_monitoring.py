"""Online monitoring: keep a top-K answer fresh as station data evolves.

The paper's running example asks for near-real-time feedback: communication data keep
arriving at base stations and the service provider wants the current top-K without
recomputing everything.  The :class:`ContinuousMatchingSession` encodes the query
batch once and re-runs matching only at stations whose data changed.

Run with:  python examples/online_monitoring.py
"""

from __future__ import annotations

from repro import DatasetSpec, DIMatchingConfig, build_dataset
from repro.core import ContinuousMatchingSession, DIMatchingProtocol
from repro.datagen.workload import build_query_workload


def main() -> None:
    dataset = build_dataset(
        DatasetSpec(users_per_category=10, station_count=5, noise_level=0, seed=13)
    )
    workload = build_query_workload(dataset, query_count=3, epsilon=0)
    queries = list(workload.queries)

    session = ContinuousMatchingSession(
        DIMatchingProtocol(DIMatchingConfig(epsilon=0, sample_count=12)), queries
    )
    print(f"session: {session}")

    # Stations come online one after another (e.g. their monthly upload window).
    for round_index, station_id in enumerate(dataset.station_ids, start=1):
        patterns = dataset.local_patterns_at(station_id)
        report_count = session.update_station(station_id, patterns)
        results = session.current_results(k=5)
        complete = sum(1 for entry in results if entry.score == 1.0)
        print(
            f"round {round_index}: station {station_id} reported {report_count:3d} "
            f"candidates -> {complete} complete matches in the current top-5"
        )

    print("\nfinal top-5 after all stations reported:")
    for entry in session.current_results(k=5):
        print(f"  {entry.user_id:<28} score={entry.score:.3f}")

    # A data correction arrives at one station: only that station is re-matched.
    runs_before = session.matching_runs
    first_station = dataset.station_ids[0]
    session.update_station(first_station, dataset.local_patterns_at(first_station))
    print(
        f"\nafter a correction at {first_station}: "
        f"{session.matching_runs - runs_before} station re-matched "
        f"(total matching runs {session.matching_runs}, updates {session.update_count})"
    )


if __name__ == "__main__":
    main()
