"""Why a *weighted* Bloom filter: the paper's two failure cases of plain filters.

This example reconstructs, with concrete numbers, the two situations from
Section III-C / IV-B in which a plain Bloom filter reports a wrong answer and the
Weighted Bloom Filter does not:

1. the *mixed-pattern* false positive — {1,4,5} "matches" a filter containing
   {1,2,3} and {2,4,5} because every value exists, just not in the same pattern;
2. the *over-matching* false positive — a subscriber whose fragment at each of three
   stations equals the query's whole pattern ({3,4,5} three times aggregates to
   {9,12,15}, which is not the query).

This example deliberately sits *below* the ``repro.cluster`` facade: it calls
the protocol phases directly on hand-built pattern fragments to isolate the
weight mechanism the facade's deployments run on.  Every end-to-end example
(quickstart, call-package, monitoring, city-scale) drives the facade instead.

Run with:  python examples/wbf_vs_bloom_filter.py
"""

from __future__ import annotations

from repro import DIMatchingConfig
from repro.baselines import BloomFilterProtocol
from repro.core import DIMatchingProtocol
from repro.timeseries import LocalPattern
from repro.timeseries.query import QueryPattern
from repro.timeseries.pattern import PatternSet


def report_names(reports):
    return sorted({report.user_id for report in reports})


def main() -> None:
    config = DIMatchingConfig(epsilon=0, sample_count=3, hash_count=4)

    # --- Case 1: mixed-pattern confusion -------------------------------------
    # The paper's §IV-B example hashes bare values: two patterns {1,2,3} and {2,4,5}
    # are in the filter; a subscriber with {1,4,5} shares every *value* with them but
    # matches neither.  A value-hashing Bloom filter accepts it; the WBF rejects it
    # because no single weight is attached to all three probed values.  (The library
    # default additionally applies the accumulation transform and index tagging,
    # which lets even the plain BF reject this toy case — this example reproduces the
    # paper's value-hashing setting to isolate the weight mechanism.)
    value_hashing = DIMatchingConfig(
        epsilon=0, sample_count=3, hash_count=4,
        include_sample_index=False, use_accumulation=False,
    )
    query = QueryPattern(
        "campaign-1",
        [
            LocalPattern("exemplar", [1, 2, 3], "cell-A"),
            LocalPattern("exemplar", [2, 4, 5], "cell-B"),
        ],
    )
    mixed_candidate = PatternSet([LocalPattern("mixed-values", [1, 4, 5], "cell-C")])

    wbf_plain = DIMatchingProtocol(value_hashing)
    bf_plain = BloomFilterProtocol(value_hashing)
    wbf_plain_artifact = wbf_plain.encode([query])
    bf_plain_artifact = bf_plain.encode([query])

    print("Case 1 — mixed-pattern candidate {1,4,5} (value-hashing encoding):")
    print(f"  plain BF station reports : {report_names(bf_plain.station_match('cell-C', mixed_candidate, bf_plain_artifact))}")
    print(f"  WBF station reports      : {report_names(wbf_plain.station_match('cell-C', mixed_candidate, wbf_plain_artifact))}")

    wbf = DIMatchingProtocol(config)
    bf = BloomFilterProtocol(config)

    # --- Case 2: over-matching ------------------------------------------------
    # The paper's example: the query global pattern is {3,4,5}; a subscriber holds
    # {3,4,5} at each of three stations, so every station-level check succeeds, yet
    # the aggregated pattern {9,12,15} is wrong.
    query2 = QueryPattern(
        "campaign-2", [LocalPattern("exemplar", [3, 4, 5], "cell-A")]
    )
    wbf_artifact2 = wbf.encode([query2])
    bf_artifact2 = bf.encode([query2])

    bf_reports, wbf_reports = [], []
    for station in ("cell-X", "cell-Y", "cell-Z"):
        candidate = PatternSet([LocalPattern("over-matcher", [3, 4, 5], station)])
        bf_reports.extend(bf.station_match(station, candidate, bf_artifact2))
        wbf_reports.extend(wbf.station_match(station, candidate, wbf_artifact2))

    print("\nCase 2 — over-matching candidate ({3,4,5} at three stations):")
    print(f"  plain BF final ranking : {bf.aggregate(bf_reports, k=None).user_ids()}")
    print(f"  WBF final ranking      : {wbf.aggregate(wbf_reports, k=None).user_ids()}")
    print(
        "\nThe WBF rejects both: in case 1 no single weight is consistent with every "
        "probed value, and in case 2 the per-user weight sum (3) exceeds 1 and the "
        "data center deletes the id (Algorithm 3)."
    )


if __name__ == "__main__":
    main()
