"""Machine-readable benchmark results (``BENCH_<name>.json`` files).

The plain-text reports under ``benchmarks/results/`` are for humans; this
module is the shared runner that also persists every benchmark's numbers in a
stable JSON schema so the bench trajectory can be tracked across commits by
tooling.  Two layers:

* :func:`comparison_sweep_payload` — flattens a Figure-4 style query-count
  sweep (:class:`~repro.evaluation.experiments.ComparisonResult` list) into
  per-method series of every plotted quantity plus the reliability counters
  the fault model adds;
* :func:`write_bench_json` — writes any payload as ``BENCH_<name>.json`` with
  a schema version and sorted keys, so files diff cleanly run-to-run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.evaluation.experiments import ComparisonResult
from repro.evaluation.reporting import comparison_series
from repro.utils.validation import require_non_empty

#: Bump on any incompatible change to the emitted JSON layout.
SCHEMA_VERSION = 1

#: The quantities a comparison sweep records, in emission order.
SWEEP_QUANTITIES = ("precision", "time", "communication", "storage")


def comparison_sweep_payload(
    results: Sequence[ComparisonResult],
    methods: Sequence[str] = ("naive", "bf", "wbf"),
) -> dict:
    """One JSON-ready payload for a whole Figure-4 query-count sweep.

    Emits the pattern counts, per-method series for every plotted quantity
    (communication/storage relative to the first method, as the figures plot
    them), the absolute communication bytes, and the reliability counters
    (retransmits, goodput, lost stations) so faulty sweeps are comparable to
    fault-free ones.
    """
    require_non_empty(results, "results")
    payload: dict = {
        "pattern_counts": [result.combined_pattern_count for result in results],
        "query_counts": [result.query_count for result in results],
        "methods": list(methods),
        "series": {},
        "communication_bytes": {},
        "reliability": {},
    }
    for quantity in SWEEP_QUANTITIES:
        payload["series"][quantity] = comparison_series(results, quantity, methods)
    for method in methods:
        outcomes = [result.outcome(method) for result in results]
        payload["communication_bytes"][method] = [
            outcome.costs.communication_bytes for outcome in outcomes
        ]
        payload["reliability"][method] = {
            "fault_profile": outcomes[0].costs.fault_profile,
            "net_seed": outcomes[0].costs.net_seed,
            "retransmits": [outcome.costs.retransmit_count for outcome in outcomes],
            "goodput": [outcome.costs.goodput_fraction for outcome in outcomes],
            "lost_stations": [outcome.costs.lost_station_count for outcome in outcomes],
        }
    return payload


def workload_payload(result) -> dict:
    """One JSON-ready payload for a multi-round workload run.

    ``result`` is a :class:`repro.workloads.result.WorkloadResult` (accepted
    duck-typed so this dependency-light module never imports the engine): the
    payload carries the per-round rows, the cumulative percentile summaries
    and the run identity, which is everything the perf-trajectory gate and
    the bench-trajectory tooling consume.
    """
    payload = result.to_payload()
    for key in ("scenario", "rounds", "cumulative", "totals"):
        if key not in payload:
            raise ValueError(
                f"workload payload is missing required key {key!r}; "
                "expected a WorkloadResult-shaped object"
            )
    return payload


def write_bench_json(directory: "Path | str", name: str, payload: dict) -> Path:
    """Persist ``payload`` as ``BENCH_<name>.json`` under ``directory``.

    The envelope adds the schema version and the benchmark name; keys are
    sorted so reruns with identical numbers produce byte-identical files.
    Returns the written path.
    """
    if not name or any(c in name for c in "/\\"):
        raise ValueError(f"benchmark name must be a plain identifier, got {name!r}")
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"
    document = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "payload": payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def read_bench_json(path: "Path | str") -> dict:
    """Load a ``BENCH_*.json`` file and return its payload envelope."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bench schema {document.get('schema_version')!r} in {path}"
        )
    return document
