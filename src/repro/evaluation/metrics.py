"""Retrieval quality metrics used by the evaluation (Section V-C / V-D).

The paper measures precision (fraction of retrieved patterns that are relevant),
recall (fraction of relevant patterns retrieved) and their harmonic mean F1, with
relevance defined by Eq. (2) against the ground-truth global patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ConfusionCounts:
    """True/false positive and false negative counts of one retrieval."""

    true_positive: int
    false_positive: int
    false_negative: int

    @property
    def retrieved(self) -> int:
        """Number of retrieved items."""
        return self.true_positive + self.false_positive

    @property
    def relevant(self) -> int:
        """Number of relevant (ground truth) items."""
        return self.true_positive + self.false_negative


@dataclass(frozen=True)
class RetrievalMetrics:
    """Precision / recall / F1 plus the underlying counts."""

    precision: float
    recall: float
    f1: float
    counts: ConfusionCounts


def precision(retrieved: Iterable[str], relevant: Iterable[str]) -> float:
    """True positive / (true positive + false positive); 1.0 for an empty retrieval."""
    retrieved_set, relevant_set = set(retrieved), set(relevant)
    if not retrieved_set:
        return 1.0 if not relevant_set else 0.0
    return len(retrieved_set & relevant_set) / len(retrieved_set)


def recall(retrieved: Iterable[str], relevant: Iterable[str]) -> float:
    """True positive / (true positive + false negative); 1.0 when nothing is relevant."""
    retrieved_set, relevant_set = set(retrieved), set(relevant)
    if not relevant_set:
        return 1.0
    return len(retrieved_set & relevant_set) / len(relevant_set)


def f1_score(precision_value: float, recall_value: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision_value + recall_value == 0:
        return 0.0
    return 2.0 * precision_value * recall_value / (precision_value + recall_value)


def evaluate_retrieval(retrieved: Iterable[str], relevant: Iterable[str]) -> RetrievalMetrics:
    """Compute precision, recall, F1 and the confusion counts for one retrieval."""
    retrieved_set, relevant_set = set(retrieved), set(relevant)
    true_positive = len(retrieved_set & relevant_set)
    counts = ConfusionCounts(
        true_positive=true_positive,
        false_positive=len(retrieved_set) - true_positive,
        false_negative=len(relevant_set) - true_positive,
    )
    precision_value = precision(retrieved_set, relevant_set)
    recall_value = recall(retrieved_set, relevant_set)
    return RetrievalMetrics(
        precision=precision_value,
        recall=recall_value,
        f1=f1_score(precision_value, recall_value),
        counts=counts,
    )
