"""Data series for the paper's descriptive figures (Figures 1a, 1b and 3).

These functions compute the plotted series; the benchmark scripts render them as
ASCII charts and record them in EXPERIMENTS.md.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.datagen.categories import CategoryProfile, default_categories
from repro.datagen.generator import generate_user_interval_values
from repro.datagen.workload import DistributedDataset
from repro.timeseries.similarity import pattern_epsilon_similar
from repro.timeseries.transform import accumulate
from repro.utils.rng import make_rng
from repro.utils.validation import require_non_negative, require_positive


def _rebin(values: Sequence[float], bin_size: int) -> list[float]:
    """Sum consecutive groups of ``bin_size`` values."""
    require_positive(bin_size, "bin_size")
    return [
        float(sum(values[start : start + bin_size]))
        for start in range(0, len(values), bin_size)
    ]


def category_mean_series(
    days: int = 2,
    bin_hours: int = 6,
    categories: Sequence[CategoryProfile] | None = None,
    seed: int = 5,
) -> dict[str, list[float]]:
    """Figure 1(a): normalised category communication patterns over ``days`` days.

    Values are aggregated into ``bin_hours``-hour bins and normalised by each
    category's mean, exactly as the paper plots them; the series exhibit the daily
    periodicity and cross-category divisibility of Observation 1.
    """
    require_positive(days, "days")
    require_positive(bin_hours, "bin_hours")
    categories = list(categories) if categories is not None else default_categories()
    series: dict[str, list[float]] = {}
    for category in categories:
        rng = make_rng(seed, "fig1a", category.name)
        values = generate_user_interval_values(
            category, days * 24, intervals_per_day=24, rng=rng, noise_level=0
        )
        binned = _rebin(values, bin_hours)
        total = sum(binned)
        mean = total / len(binned) if total else 1.0
        series[category.name] = [value / mean if mean else 0.0 for value in binned]
    return series


def accumulated_category_series(
    days: int = 7,
    bin_hours: int = 6,
    categories: Sequence[CategoryProfile] | None = None,
    seed: int = 5,
) -> dict[str, list[float]]:
    """Figure 3: accumulated (Eq. 3) category patterns over one week.

    The accumulated form is monotone and the categories separate progressively —
    the property the encoder exploits.
    """
    categories = list(categories) if categories is not None else default_categories()
    series: dict[str, list[float]] = {}
    for category in categories:
        rng = make_rng(seed, "fig3", category.name)
        values = generate_user_interval_values(
            category, days * 24, intervals_per_day=24, rng=rng, noise_level=0
        )
        binned = [int(v) for v in _rebin(values, bin_hours)]
        accumulated = accumulate(binned)
        grand_total = accumulated[-1] if accumulated[-1] else 1
        series[category.name] = [value / grand_total for value in accumulated]
    return series


def local_similarity_counts(
    dataset: DistributedDataset,
    epsilon: float,
    max_pairs: int = 2000,
) -> list[int]:
    """Figure 1(b): for every globally ε-similar user pair, the number of ε-similar local pairs.

    The paper observes that among similar global patterns, more than 90% of the pairs
    share at least one similar local pattern (Observation 2) — the property that
    makes station-level matching against local-fragment combinations effective.
    """
    require_non_negative(epsilon, "epsilon")
    require_positive(max_pairs, "max_pairs")
    counts: list[int] = []
    user_ids = [
        user_id for user_id in dataset.user_ids if not dataset.profile(user_id).is_decoy
    ]
    for first, second in combinations(user_ids, 2):
        if len(counts) >= max_pairs:
            break
        if not pattern_epsilon_similar(
            dataset.global_pattern(first), dataset.global_pattern(second), epsilon
        ):
            continue
        similar_local_pairs = 0
        for local_a in dataset.local_patterns_for(first):
            for local_b in dataset.local_patterns_for(second):
                if pattern_epsilon_similar(local_a, local_b, epsilon):
                    similar_local_pairs += 1
        counts.append(similar_local_pairs)
    return counts
