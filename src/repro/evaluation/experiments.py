"""Experiment runners reproducing the paper's evaluation (Section V).

Each public function corresponds to one experiment of the paper:

* :func:`run_comparison` / :func:`sweep_query_counts` — the accuracy and efficiency
  comparison of Naive vs BF vs WBF (Figure 4 a-d);
* :func:`convergence_study` — the sample-count (``b``) convergence study (Section V-B);
* :func:`effectiveness_study` — the ground-truth effectiveness evaluation (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.config import DIMatchingConfig
from repro.core.protocol import MatchingProtocol
from repro.datagen.ground_truth import PAPER_STUDY_DAYS, build_ground_truth_cohort
from repro.datagen.workload import (
    DatasetSpec,
    DistributedDataset,
    QueryWorkload,
    build_dataset,
    build_query_workload,
)
from repro.cluster.facade import Cluster
from repro.cluster.spec import PROTOCOL_METHODS, ProtocolSpec
from repro.distributed.faults import FaultPlan
from repro.distributed.metrics import CostReport
from repro.distributed.network import NetworkConfig
from repro.evaluation.metrics import RetrievalMetrics, evaluate_retrieval
from repro.timeseries.query import QueryPattern
from repro.utils.validation import require_non_empty, require_non_negative, require_positive

#: Methods compared in Figure 4, in plotting order.
DEFAULT_METHODS = ("naive", "bf", "wbf")


@dataclass(frozen=True)
class MethodOutcome:
    """Metrics and costs of one protocol on one query batch."""

    method: str
    metrics: RetrievalMetrics
    costs: CostReport
    retrieved: tuple[str, ...]


@dataclass(frozen=True)
class ComparisonResult:
    """All methods' outcomes for one query batch, plus the batch's ground truth."""

    query_count: int
    combined_pattern_count: int
    ground_truth: frozenset[str]
    outcomes: dict[str, MethodOutcome]

    def outcome(self, method: str) -> MethodOutcome:
        """The outcome of one method by name."""
        if method not in self.outcomes:
            raise KeyError(f"no outcome recorded for method {method!r}")
        return self.outcomes[method]

    def relative_costs(self, method: str, baseline: str = "naive") -> dict[str, float]:
        """Communication/storage/time of ``method`` relative to ``baseline``."""
        return self.outcome(method).costs.relative_to(self.outcome(baseline).costs)


@dataclass(frozen=True)
class EffectivenessRow:
    """One row of Table II."""

    day_label: str
    precision: float
    recall: float
    f1: float


def ground_truth_users(
    dataset: DistributedDataset, queries: Sequence[QueryPattern], epsilon: float
) -> frozenset[str]:
    """Users whose global pattern is ε-similar (Eq. 2) to at least one query."""
    require_non_empty(queries, "queries")
    relevant: set[str] = set()
    for query in queries:
        relevant |= dataset.similar_users(query.global_pattern, epsilon)
    return frozenset(relevant)


def make_protocols(
    config: DIMatchingConfig,
    epsilon: float,
    methods: Sequence[str] = DEFAULT_METHODS,
) -> list[MatchingProtocol]:
    """Instantiate the protocols named in ``methods`` with a shared configuration.

    The method-to-protocol mapping itself lives in
    :meth:`repro.cluster.spec.ProtocolSpec.build` — this helper only adds the
    shared-config, many-methods convenience the comparison harness wants.
    """
    require_non_empty(methods, "methods")
    protocols: list[MatchingProtocol] = []
    for method in methods:
        if method not in PROTOCOL_METHODS:
            raise ValueError(f"unknown method {method!r}; expected naive/local/bf/wbf")
        protocols.append(
            ProtocolSpec(method=method, epsilon=float(epsilon), config=config).build()
        )
    return protocols


def _combined_pattern_count(config: DIMatchingConfig, queries: Sequence[QueryPattern]) -> int:
    """Number of combined (represented) patterns in a batch — the paper's ``a``."""
    from repro.core.encoder import PatternEncoder

    encoder = PatternEncoder(config)
    return sum(len(encoder.combined_patterns(query)) for query in queries)


def run_comparison(
    dataset: DistributedDataset,
    workload: QueryWorkload,
    config: DIMatchingConfig | None = None,
    methods: Sequence[str] = DEFAULT_METHODS,
    k: int | None = None,
    network_config: NetworkConfig | None = None,
    executor: str | None = None,
    shard_count: int | None = None,
    fault_plan: FaultPlan | str | None = None,
    net_seed: int | None = None,
    allow_partial: bool = False,
) -> ComparisonResult:
    """Run every requested method on one query batch and score it against ground truth.

    When ``k`` is None the cutoff is set to the ground-truth size, i.e. every method
    is asked for exactly as many users as are truly relevant (precision@|truth|).
    ``executor`` / ``shard_count`` select the station-execution backend for *all*
    methods (results and byte counts are executor-invariant); ``fault_plan`` /
    ``net_seed`` select the seeded transport faults every method's round is
    exposed to (a surviving round's results are fault-invariant — faults change
    costs, never answers).  When None, each protocol's own configuration
    decides.
    """
    config = config or DIMatchingConfig(epsilon=int(workload.epsilon))
    queries = list(workload.queries)
    truth = ground_truth_users(dataset, queries, workload.epsilon)
    cutoff = k if k is not None else len(truth)
    outcomes: dict[str, MethodOutcome] = {}
    # Every method's round runs through the same cluster facade engine; the
    # adopted form keeps the legacy knob semantics (None = defer to each
    # protocol's own configuration).
    with Cluster.adopt(
        dataset,
        network_config,
        executor=executor,
        shard_count=shard_count,
        fault_plan=fault_plan,
        net_seed=net_seed,
        allow_partial=allow_partial,
    ) as cluster:
        for protocol in make_protocols(config, workload.epsilon, methods):
            outcome = cluster.drive(protocol, queries, cutoff)
            retrieved = tuple(outcome.retrieved_user_ids)
            outcomes[protocol.name] = MethodOutcome(
                method=protocol.name,
                metrics=evaluate_retrieval(retrieved, truth),
                costs=outcome.costs,
                retrieved=retrieved,
            )
    return ComparisonResult(
        query_count=len(queries),
        combined_pattern_count=_combined_pattern_count(config, queries),
        ground_truth=truth,
        outcomes=outcomes,
    )


def sweep_query_counts(
    dataset: DistributedDataset,
    query_counts: Sequence[int],
    epsilon: float,
    config: DIMatchingConfig | None = None,
    methods: Sequence[str] = DEFAULT_METHODS,
    seed: int = 11,
    network_config: NetworkConfig | None = None,
    executor: str | None = None,
    shard_count: int | None = None,
    fault_plan: FaultPlan | str | None = None,
    net_seed: int | None = None,
    allow_partial: bool = False,
) -> list[ComparisonResult]:
    """Figure 4: run the method comparison for increasing numbers of query patterns."""
    require_non_empty(query_counts, "query_counts")
    results: list[ComparisonResult] = []
    for query_count in query_counts:
        require_positive(query_count, "query_count")
        workload = build_query_workload(dataset, query_count, epsilon, seed=seed)
        results.append(
            run_comparison(
                dataset,
                workload,
                config=config,
                methods=methods,
                network_config=network_config,
                executor=executor,
                shard_count=shard_count,
                fault_plan=fault_plan,
                net_seed=net_seed,
                allow_partial=allow_partial,
            )
        )
    return results


def convergence_study(
    sample_counts: Sequence[int],
    group_count: int = 4,
    users_per_category: int = 12,
    station_count: int = 6,
    query_count: int = 12,
    epsilon: int = 2,
    noise_level: int = 1,
    seed: int = 97,
) -> dict[str, dict[int, float]]:
    """Section V-B: pattern-matching accuracy as a function of the sample count ``b``.

    Four independent data groups (the paper uses four days of Data set 1) are built;
    for each group and each ``b`` the WBF precision is measured.  The paper finds the
    accuracy converges around ``b = 5`` and is stable by ``b = 12``.
    """
    require_non_empty(sample_counts, "sample_counts")
    require_positive(group_count, "group_count")
    results: dict[str, dict[int, float]] = {}
    for group_index in range(group_count):
        spec = DatasetSpec(
            users_per_category=users_per_category,
            station_count=station_count,
            noise_level=noise_level,
            seed=seed + group_index,
        )
        dataset = build_dataset(spec)
        workload = build_query_workload(
            dataset, query_count, epsilon, seed=seed + group_index
        )
        group_label = f"group-{group_index + 1}"
        results[group_label] = {}
        for sample_count in sample_counts:
            require_positive(sample_count, "sample_count")
            config = DIMatchingConfig(sample_count=sample_count, epsilon=epsilon)
            comparison = run_comparison(
                dataset, workload, config=config, methods=("wbf",)
            )
            results[group_label][sample_count] = comparison.outcome("wbf").metrics.precision
    return results


def effectiveness_study(
    day_count: int = 4,
    cohort_size: int = 310,
    queries_per_category: int = 2,
    epsilon: int = 2,
    noise_level: int = 1,
    sample_count: int = 12,
    seed: int = 2009,
) -> list[EffectivenessRow]:
    """Table II: precision / recall / F1 of DI-matching on the ground-truth cohort.

    For each study day a labelled cohort is generated, a few exemplar users per
    category are used as query patterns, and DI-matching's retrieved set (at the
    natural weight-sum-1 cutoff) is compared against the ε-similarity ground truth.
    """
    require_positive(day_count, "day_count")
    require_positive(queries_per_category, "queries_per_category")
    require_non_negative(epsilon, "epsilon")
    rows: list[EffectivenessRow] = []
    for day_index in range(day_count):
        cohort = build_ground_truth_cohort(
            day_index, cohort_size=cohort_size, noise_level=noise_level, seed=seed
        )
        dataset = cohort.dataset
        category_names = sorted({dataset.category_of(u) for u in dataset.user_ids})
        query_count = queries_per_category * len(category_names)
        workload = build_query_workload(
            dataset, query_count, epsilon, seed=seed + day_index
        )
        config = DIMatchingConfig(sample_count=sample_count, epsilon=epsilon)
        comparison = run_comparison(dataset, workload, config=config, methods=("wbf",))
        metrics = comparison.outcome("wbf").metrics
        day_label = (
            PAPER_STUDY_DAYS[day_index]
            if day_index < len(PAPER_STUDY_DAYS)
            else f"synthetic day {day_index}"
        )
        rows.append(
            EffectivenessRow(
                day_label=day_label,
                precision=metrics.precision,
                recall=metrics.recall,
                f1=metrics.f1,
            )
        )
    return rows
