"""Plain-text rendering of the reproduced tables and figures.

The benchmark harness prints these reports so that every run regenerates the same
rows/series the paper reports, in a form that can be pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.evaluation.experiments import ComparisonResult, EffectivenessRow
from repro.utils.asciiplot import render_line_chart, render_table
from repro.utils.validation import require_non_empty


def comparison_series(
    results: Sequence[ComparisonResult],
    quantity: str,
    methods: Sequence[str] = ("naive", "bf", "wbf"),
) -> dict[str, list[float]]:
    """Extract one plotted quantity per method from a query-count sweep.

    ``quantity`` is one of ``precision``, ``time``, ``communication``, ``storage``;
    the latter two are expressed relative to the naive method, as in Figure 4(c)/(d).
    """
    require_non_empty(results, "results")
    series: dict[str, list[float]] = {method: [] for method in methods}
    for result in results:
        for method in methods:
            outcome = result.outcome(method)
            if quantity == "precision":
                value = outcome.metrics.precision
            elif quantity == "time":
                value = outcome.costs.total_time_s
            elif quantity == "communication":
                value = result.relative_costs(method)["communication"]
            elif quantity == "storage":
                value = result.relative_costs(method)["storage"]
            else:
                raise ValueError(
                    f"unknown quantity {quantity!r}; expected precision/time/communication/storage"
                )
            series[method].append(value)
    return series


def format_comparison_sweep(
    results: Sequence[ComparisonResult],
    quantity: str,
    title: str,
    methods: Sequence[str] = ("naive", "bf", "wbf"),
) -> str:
    """Render one Figure-4 panel: a data table plus an ASCII chart."""
    series = comparison_series(results, quantity, methods)
    pattern_counts = [result.combined_pattern_count for result in results]
    headers = ["patterns"] + list(methods)
    rows = []
    for index, count in enumerate(pattern_counts):
        rows.append([count] + [series[method][index] for method in methods])
    table = render_table(headers, rows)
    chart = render_line_chart(series, x_values=pattern_counts, title=title)
    return f"{title}\n{table}\n\n{chart}"


def format_effectiveness_table(rows: Sequence[EffectivenessRow]) -> str:
    """Render Table II: per-day precision / recall / F1."""
    require_non_empty(rows, "rows")
    table_rows = [[row.day_label, row.precision, row.recall, row.f1] for row in rows]
    return render_table(["Days", "Precision", "Recall", "F1"], table_rows)


def format_convergence_table(results: Mapping[str, Mapping[int, float]]) -> str:
    """Render the sample-count convergence study as a table plus chart."""
    require_non_empty(results, "results")
    sample_counts = sorted(next(iter(results.values())).keys())
    headers = ["b"] + list(results.keys())
    rows = []
    for sample_count in sample_counts:
        rows.append([sample_count] + [results[group][sample_count] for group in results])
    table = render_table(headers, rows)
    series = {
        group: [per_group[b] for b in sample_counts] for group, per_group in results.items()
    }
    chart = render_line_chart(
        series, x_values=sample_counts, title="Accuracy vs sample count b"
    )
    return f"{table}\n\n{chart}"
