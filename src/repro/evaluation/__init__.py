"""Evaluation harness: retrieval metrics, experiment runners and report formatting.

The experiment runners reproduce every table and figure of the paper's evaluation
section (see DESIGN.md §4 for the experiment index); the benchmark scripts under
``benchmarks/`` are thin wrappers around them.
"""

from repro.evaluation.experiments import (
    ComparisonResult,
    EffectivenessRow,
    MethodOutcome,
    convergence_study,
    effectiveness_study,
    ground_truth_users,
    make_protocols,
    run_comparison,
    sweep_query_counts,
)
from repro.evaluation.benchjson import (
    comparison_sweep_payload,
    read_bench_json,
    workload_payload,
    write_bench_json,
)
from repro.evaluation.figures import (
    accumulated_category_series,
    category_mean_series,
    local_similarity_counts,
)
from repro.evaluation.metrics import (
    ConfusionCounts,
    RetrievalMetrics,
    evaluate_retrieval,
    f1_score,
    precision,
    recall,
)
from repro.evaluation.reporting import (
    format_comparison_sweep,
    format_convergence_table,
    format_effectiveness_table,
)

__all__ = [
    "ComparisonResult",
    "EffectivenessRow",
    "MethodOutcome",
    "convergence_study",
    "effectiveness_study",
    "ground_truth_users",
    "make_protocols",
    "run_comparison",
    "sweep_query_counts",
    "accumulated_category_series",
    "category_mean_series",
    "local_similarity_counts",
    "ConfusionCounts",
    "RetrievalMetrics",
    "evaluate_retrieval",
    "f1_score",
    "precision",
    "recall",
    "format_comparison_sweep",
    "format_convergence_table",
    "format_effectiveness_table",
    "comparison_sweep_payload",
    "read_bench_json",
    "workload_payload",
    "write_bench_json",
]
