"""Perf-trajectory gate: compare fresh ``BENCH_*.json`` files to baselines.

The bench harness persists every benchmark's numbers as machine-readable
``BENCH_<name>.json`` (:mod:`repro.evaluation.benchjson`); committed baseline
copies live under ``benchmarks/baselines/``.  This module extracts each
payload's *headline metrics* — deliberately only the deterministic
quantities (byte counts, precision, goodput, virtual latency), never
wall-clock timings, so the gate is immune to CI machine noise — and fails
when a fresh value regresses by more than the tolerance (default 25%)
against its baseline.

Run as a CLI (CI's perf-trajectory job)::

    python -m repro.evaluation.trajectory \
        --baseline-dir benchmarks/baselines --fresh-dir benchmarks/results

Exit status 1 means at least one regression (or a baselined benchmark that
no longer emits JSON); new benchmarks without a baseline pass with a notice —
commit their JSON to ``benchmarks/baselines/`` to start tracking them.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.evaluation.benchjson import read_bench_json

#: Default regression tolerance: fail beyond +/-25% of the baseline value.
DEFAULT_TOLERANCE = 0.25

#: Directions a headline metric can prefer.
_HIGHER, _LOWER = "higher", "lower"


@dataclass(frozen=True)
class HeadlineMetric:
    """One tracked quantity of one benchmark."""

    name: str
    value: float
    #: "higher" = regressions are drops (precision), "lower" = growth (bytes).
    direction: str


@dataclass(frozen=True)
class MetricComparison:
    """A baseline/fresh pair for one headline metric."""

    benchmark: str
    metric: str
    direction: str
    baseline: float
    fresh: float | None
    regressed: bool
    note: str = ""

    def render(self) -> str:
        """One human-readable report line."""
        status = "REGRESSED" if self.regressed else "ok"
        fresh = "missing" if self.fresh is None else f"{self.fresh:g}"
        line = (
            f"{status:>9}  {self.benchmark}:{self.metric} "
            f"({self.direction} is better)  baseline={self.baseline:g}  fresh={fresh}"
        )
        return line + (f"  [{self.note}]" if self.note else "")


def headline_metrics(document: dict) -> list[HeadlineMetric]:
    """Extract the deterministic headline metrics of one bench document.

    Payload shapes are detected structurally so new benchmarks of a known
    shape are tracked without touching this module; unknown shapes yield no
    metrics (the gate then only checks the file still exists).
    """
    payload = document.get("payload", {})
    metrics: list[HeadlineMetric] = []
    if "series" in payload and "methods" in payload:  # Figure-4 comparison sweep
        for method in payload["methods"]:
            precision_series = payload["series"].get("precision", {}).get(method)
            if precision_series:
                metrics.append(
                    HeadlineMetric(
                        f"{method}.precision.final", float(precision_series[-1]), _HIGHER
                    )
                )
            byte_series = payload.get("communication_bytes", {}).get(method)
            if byte_series:
                metrics.append(
                    HeadlineMetric(
                        f"{method}.communication_bytes.final",
                        float(byte_series[-1]),
                        _LOWER,
                    )
                )
    if "cumulative" in payload and "totals" in payload:  # workload run
        totals = payload["totals"]
        metrics.append(HeadlineMetric("total_bytes", float(totals["bytes"]), _LOWER))
        cumulative = payload["cumulative"]
        metrics.append(
            HeadlineMetric("precision.mean", float(cumulative["precision"]["mean"]), _HIGHER)
        )
        metrics.append(
            HeadlineMetric("goodput.min", float(cumulative["goodput"]["minimum"]), _HIGHER)
        )
        # Virtual transmission time: deterministic under the seed contract,
        # unlike the wall-clock compute fields (which are never tracked).
        metrics.append(
            HeadlineMetric("latency.p90", float(cumulative["latency_s"]["p90"]), _LOWER)
        )
    if "max_sustainable_qps" in payload:  # open-loop saturation sweep
        sustainable = payload["max_sustainable_qps"]
        if isinstance(sustainable, dict):
            # Per-executor entries; the sweep itself asserts they are equal
            # (virtual capacity is executor-invariant), the gate tracks each.
            for executor in sorted(sustainable):
                metrics.append(
                    HeadlineMetric(
                        f"max_sustainable_qps.{executor}",
                        float(sustainable[executor]),
                        _HIGHER,
                    )
                )
        else:
            metrics.append(
                HeadlineMetric("max_sustainable_qps", float(sustainable), _HIGHER)
            )
        if "below_saturation_p99_s" in payload:
            # The flat part of the latency curve: p99 while offered load is
            # under capacity.  Growth here means service itself got slower.
            metrics.append(
                HeadlineMetric(
                    "below_saturation_p99_s",
                    float(payload["below_saturation_p99_s"]),
                    _LOWER,
                )
            )
    if "round" in payload and "station_count" in payload:  # 100x-scale round
        round_metrics = payload["round"]
        for key, direction in (
            ("downlink_bytes", _LOWER),
            ("uplink_bytes", _LOWER),
            # Deterministic counts: a drop means reports/matches went missing.
            ("report_count", _HIGHER),
            ("ranked_count", _HIGHER),
        ):
            if key in round_metrics:
                metrics.append(
                    HeadlineMetric(f"round.{key}", float(round_metrics[key]), direction)
                )
        # The digests are strings, so they cannot ride the numeric gate; the
        # benchmark itself (and the parity suites) assert byte-identity.
    if isinstance(payload.get("source"), dict) and "peak_resident" in payload["source"]:
        # Streaming-source soak: residency is the memory bound under test —
        # growth means the LRU cap stopped holding; shrinking declared scale
        # means the soak quietly stopped exercising the census it claims.
        source = payload["source"]
        metrics.append(
            HeadlineMetric("source.peak_resident", float(source["peak_resident"]), _LOWER)
        )
        if "evictions" in source:
            metrics.append(
                HeadlineMetric("source.evictions", float(source["evictions"]), _LOWER)
            )
        if "declared_users" in source:
            metrics.append(
                HeadlineMetric(
                    "source.declared_users", float(source["declared_users"]), _HIGHER
                )
            )
    if isinstance(payload.get("ingress"), dict) and "ratio" in payload["ingress"]:
        # Hierarchy benchmark: the ingress ratio (flat bytes over two-tier
        # bytes at the center's uplink) is the quantity the regional tier
        # exists to improve; both absolute byte counts ride along so a
        # codec-wide bloat cannot hide inside a stable ratio.
        ingress = payload["ingress"]
        metrics.append(HeadlineMetric("ingress.ratio", float(ingress["ratio"]), _HIGHER))
        for key in ("flat_bytes", "two_tier_bytes"):
            if key in ingress:
                metrics.append(
                    HeadlineMetric(f"ingress.{key}", float(ingress[key]), _LOWER)
                )
    if "batch_bytes" in payload:  # wire-codec size benchmark
        for key in ("batch_bytes", "batch_bytes_zlib", "report_upload_bytes"):
            if key in payload:
                metrics.append(HeadlineMetric(key, float(payload[key]), _LOWER))
    return metrics


def _is_regression(
    baseline: float, fresh: float, direction: str, tolerance: float
) -> bool:
    """Whether ``fresh`` regressed past ``tolerance`` relative to ``baseline``."""
    if direction == _LOWER:
        if baseline == 0.0:
            return fresh > 0.0
        return fresh > baseline * (1.0 + tolerance)
    if baseline == 0.0:
        return False  # a zero higher-is-better baseline cannot be undercut
    return fresh < baseline * (1.0 - tolerance)


def compare_documents(
    baseline_doc: dict, fresh_doc: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[MetricComparison]:
    """Compare two bench documents metric by metric."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance!r}")
    benchmark = baseline_doc.get("benchmark", "?")
    fresh_metrics = {m.name: m for m in headline_metrics(fresh_doc)}
    comparisons = []
    for metric in headline_metrics(baseline_doc):
        fresh = fresh_metrics.get(metric.name)
        if fresh is None:
            comparisons.append(
                MetricComparison(
                    benchmark=benchmark,
                    metric=metric.name,
                    direction=metric.direction,
                    baseline=metric.value,
                    fresh=None,
                    regressed=True,
                    note="metric disappeared from the fresh payload",
                )
            )
            continue
        comparisons.append(
            MetricComparison(
                benchmark=benchmark,
                metric=metric.name,
                direction=metric.direction,
                baseline=metric.value,
                fresh=fresh.value,
                regressed=_is_regression(
                    metric.value, fresh.value, metric.direction, tolerance
                ),
            )
        )
    return comparisons


def compare_directories(
    baseline_dir: "Path | str",
    fresh_dir: "Path | str",
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[list[MetricComparison], list[str]]:
    """Compare every baselined benchmark against its fresh rerun.

    Returns ``(comparisons, notices)``: notices name fresh benchmarks that
    have no baseline yet (informational, never failing).  A baselined file
    with no fresh counterpart is reported as a regression — a benchmark that
    silently stops emitting JSON must not pass the gate.
    """
    baseline_dir, fresh_dir = Path(baseline_dir), Path(fresh_dir)
    baseline_paths = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baseline_paths:
        raise FileNotFoundError(f"no BENCH_*.json baselines under {baseline_dir}")
    comparisons: list[MetricComparison] = []
    for baseline_path in baseline_paths:
        baseline_doc = read_bench_json(baseline_path)
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            comparisons.append(
                MetricComparison(
                    benchmark=baseline_doc.get("benchmark", baseline_path.name),
                    metric="(file)",
                    direction=_LOWER,
                    baseline=0.0,
                    fresh=None,
                    regressed=True,
                    note=f"{baseline_path.name} was not produced by the fresh run",
                )
            )
            continue
        comparisons.extend(
            compare_documents(baseline_doc, read_bench_json(fresh_path), tolerance)
        )
    baseline_names = {path.name for path in baseline_paths}
    notices = [
        f"no baseline for {path.name} — commit it to start tracking"
        for path in sorted(fresh_dir.glob("BENCH_*.json"))
        if path.name not in baseline_names
    ]
    return comparisons, notices


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; exit 1 when any headline metric regressed."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation.trajectory",
        description="Fail when fresh BENCH_*.json results regress vs committed baselines.",
    )
    parser.add_argument("--baseline-dir", default="benchmarks/baselines")
    parser.add_argument("--fresh-dir", default="benchmarks/results")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative drift of each headline metric (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    comparisons, notices = compare_directories(
        args.baseline_dir, args.fresh_dir, args.tolerance
    )
    for comparison in comparisons:
        print(comparison.render())
    for notice in notices:
        print(f"   notice  {notice}")
    regressions = [c for c in comparisons if c.regressed]
    print(
        f"{len(comparisons)} headline metric(s) checked, "
        f"{len(regressions)} regression(s), tolerance {args.tolerance:.0%}"
    )
    return 1 if regressions else 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
