"""repro — reproduction of "Distributed Incomplete Pattern Matching via a Novel
Weighted Bloom Filter" (Liu, Kang, Chen, Ni; ICDCS 2012).

The package implements the paper's DI-matching framework end to end: the Weighted
Bloom Filter, the data-center encoder / base-station matcher / similarity ranker
(Algorithms 1-3), the baseline methods it is compared against, a synthetic
city-scale mobile-network data substrate, a simulated distributed environment with
communication/storage/time accounting, and the evaluation harness that regenerates
every table and figure of the paper.

Quickstart
----------

The typed ``repro.cluster`` facade is the one public entry point (see
``docs/api.md`` for the full verb table):

>>> from repro import Cluster, ClusterSpec, DatasetSpec, ProtocolSpec, build_query_workload
>>> spec = ClusterSpec(
...     name="quickstart",
...     dataset=DatasetSpec(users_per_category=5, station_count=4),
...     protocol=ProtocolSpec(method="wbf", epsilon=0),
... )
>>> with Cluster(spec) as cluster:
...     workload = build_query_workload(cluster.dataset, query_count=3, epsilon=0)
...     cluster.subscribe(list(workload.queries))
...     report = cluster.round()
>>> len(report.results) > 0
True
"""

from repro.core import (
    BaseStationMatcher,
    DIMatchingConfig,
    DIMatchingProtocol,
    EncodedQueryBatch,
    MatchingProtocol,
    MatchReport,
    PatternEncoder,
    QueryPattern,
    RankedResults,
    RankedUser,
    SimilarityRanker,
    WeightedBloomFilter,
    run_dimatching,
)
from repro.baselines import BloomFilterProtocol, LocalOnlyProtocol, NaiveProtocol
from repro.bloom import BloomFilter
from repro.timeseries import GlobalPattern, LocalPattern, Pattern

try:
    # The synthetic-data, simulation and evaluation layers require NumPy; the
    # matching core and Bloom substrate above do not (the bit backend falls back
    # to its pure-Python implementation, see repro.bloom.backend).
    from repro.datagen import (
        DatasetSpec,
        DatasetStationSource,
        DistributedDataset,
        QueryWorkload,
        SourceSpec,
        StationSource,
        StationSourceBase,
        StreamingStationSource,
        build_dataset,
        build_ground_truth_cohort,
        build_query_workload,
    )
    from repro.cluster import (
        Cluster,
        ClusterSession,
        ClusterSnapshot,
        ClusterSpec,
        ClusterStateError,
        ExecutorSpec,
        FaultSpec,
        ProtocolSpec,
        RoundOptions,
        RoundReport,
        TransportSpec,
    )
    from repro.distributed import DistributedSimulation, NetworkConfig, SimulationOutcome
    from repro.evaluation import (
        effectiveness_study,
        evaluate_retrieval,
        run_comparison,
        sweep_query_counts,
    )
    from repro.workloads import (
        SCENARIOS,
        WorkloadResult,
        WorkloadSpec,
        get_scenario,
        run_workload,
        scenario_names,
    )

    HAS_DATAGEN = True
except ImportError as _error:  # pragma: no cover - covered by the no-NumPy CI leg
    if (_error.name or "").partition(".")[0] != "numpy":
        # A genuine import failure inside the optional layers — surface it
        # rather than masking it as "NumPy is not installed".
        raise
    HAS_DATAGEN = False

__version__ = "1.0.0"

__all__ = [
    "BaseStationMatcher",
    "DIMatchingConfig",
    "DIMatchingProtocol",
    "EncodedQueryBatch",
    "MatchingProtocol",
    "MatchReport",
    "PatternEncoder",
    "QueryPattern",
    "RankedResults",
    "RankedUser",
    "SimilarityRanker",
    "WeightedBloomFilter",
    "run_dimatching",
    "BloomFilterProtocol",
    "LocalOnlyProtocol",
    "NaiveProtocol",
    "BloomFilter",
    "GlobalPattern",
    "LocalPattern",
    "Pattern",
    "HAS_DATAGEN",
    "__version__",
]

if HAS_DATAGEN:
    __all__ += [
        "Cluster",
        "ClusterSession",
        "ClusterSnapshot",
        "ClusterSpec",
        "ClusterStateError",
        "ExecutorSpec",
        "FaultSpec",
        "ProtocolSpec",
        "RoundOptions",
        "RoundReport",
        "TransportSpec",
        "DatasetSpec",
        "DatasetStationSource",
        "DistributedDataset",
        "QueryWorkload",
        "SourceSpec",
        "StationSource",
        "StationSourceBase",
        "StreamingStationSource",
        "build_dataset",
        "build_ground_truth_cohort",
        "build_query_workload",
        "DistributedSimulation",
        "NetworkConfig",
        "SimulationOutcome",
        "effectiveness_study",
        "evaluate_retrieval",
        "run_comparison",
        "sweep_query_counts",
        "SCENARIOS",
        "WorkloadResult",
        "WorkloadSpec",
        "get_scenario",
        "run_workload",
        "scenario_names",
    ]
