"""Argument validation helpers.

Every public constructor in the library validates its inputs eagerly and raises
``ValueError``/``TypeError`` with a message naming the offending parameter, so that
misconfiguration fails at construction time rather than deep inside a simulation.
"""

from __future__ import annotations

from typing import Any, Iterable, Sized


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if it is strictly positive, else raise ``ValueError``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is >= 0, else raise ``ValueError``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def require_in_range(value: float, name: str, low: float, high: float) -> float:
    """Return ``value`` if ``low <= value <= high``, else raise ``ValueError``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_non_empty(value: Sized, name: str) -> Any:
    """Return ``value`` if it has at least one element."""
    if len(value) == 0:
        raise ValueError(f"{name} must not be empty")
    return value


def require_type(value: Any, name: str, expected: type | tuple[type, ...]) -> Any:
    """Return ``value`` if it is an instance of ``expected``, else raise ``TypeError``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {expected_names}, got {type(value).__name__}")
    return value


def require_all_integers(values: Iterable[Any], name: str) -> list[int]:
    """Validate that every element of ``values`` is an integer and return them as a list.

    The paper restricts pattern values to natural numbers (call counts, durations in
    whole seconds, partner counts), so the time-series layer enforces integer inputs.
    """
    out = list(values)
    # Fast path first: the per-element loop below only runs to build the error
    # message, so valid inputs (the overwhelmingly common case on the encoder
    # and matcher hot paths) pay a single C-level all() scan.
    if all(type(value) is int for value in out):
        return out
    for index, value in enumerate(out):
        if isinstance(value, bool) or not isinstance(value, (int,)):
            raise TypeError(
                f"{name}[{index}] must be an integer, got {type(value).__name__}: {value!r}"
            )
    return [int(value) for value in out]
