"""Deterministic random number generation helpers.

All stochastic components of the library (synthetic data generation, sampling,
simulation) accept an integer seed and derive their generators through these
helpers so that experiments are exactly reproducible.
"""

from __future__ import annotations

import hashlib

try:
    # The generators are NumPy ones; seed derivation below stays pure-Python so
    # the matching core can import this module without NumPy installed.
    import numpy as np
except ImportError:  # pragma: no cover - covered by the no-NumPy CI leg
    np = None


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is stable across processes and Python versions (it uses SHA-256
    rather than ``hash()``), so two runs with the same base seed and labels produce
    identical streams.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def make_rng(seed: int, *labels: object) -> "np.random.Generator":
    """Create a :class:`numpy.random.Generator` seeded from ``seed`` and ``labels``."""
    if np is None:
        raise ImportError(
            "repro's synthetic-data layer requires NumPy (pip install 'repro-dimatching[fast]'); "
            "only the matching core and Bloom substrate work without it"
        )
    return np.random.default_rng(derive_seed(seed, *labels))


def spawn_rngs(seed: int, count: int, *labels: object) -> "list[np.random.Generator]":
    """Create ``count`` independent generators derived from ``seed`` and ``labels``."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [make_rng(seed, *labels, index) for index in range(count)]
