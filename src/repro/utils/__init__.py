"""Shared utilities: validation, deterministic RNG, serialization sizing, ASCII plotting.

These helpers are deliberately dependency-light so every other subpackage can use
them without import cycles.
"""

# make_rng/spawn_rngs construct NumPy generators lazily, so this import works
# without NumPy; only calling them then raises.
from repro.utils.rng import derive_seed, make_rng, spawn_rngs
from repro.utils.serialization import (
    estimate_size_bytes,
    sizeof_float,
    sizeof_id,
    sizeof_int,
)
from repro.utils.validation import (
    require_in_range,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)

__all__ = [
    "derive_seed",
    "make_rng",
    "spawn_rngs",
    "estimate_size_bytes",
    "sizeof_float",
    "sizeof_id",
    "sizeof_int",
    "require_in_range",
    "require_non_empty",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "require_type",
]
