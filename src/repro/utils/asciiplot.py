"""Minimal ASCII rendering of figures and tables.

The benchmark harness reproduces every figure of the paper as a data series plus an
ASCII chart so results are inspectable in a terminal / CI log without matplotlib.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.utils.validation import require_non_empty, require_positive


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a plain-text table with aligned columns.

    ``headers`` gives the column names; each row must have the same number of cells.
    """
    require_non_empty(headers, "headers")
    cells = [[str(h) for h in headers]] + [[_format_cell(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    header_line = " | ".join(cell.ljust(width) for cell, width in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells[1:]:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_line_chart(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float] | None = None,
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    Each series is plotted with a distinct marker character.  The chart is meant for
    qualitative shape comparison (who wins, where curves cross), matching how the
    benchmark harness uses it.
    """
    require_non_empty(series, "series")
    require_positive(width, "width")
    require_positive(height, "height")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"all series must have equal length, got lengths {sorted(lengths)}")
    (length,) = lengths
    if length == 0:
        raise ValueError("series must contain at least one point")
    if x_values is None:
        x_values = list(range(length))
    if len(x_values) != length:
        raise ValueError("x_values length must match series length")

    all_values = [v for values in series.values() for v in values]
    vmin, vmax = min(all_values), max(all_values)
    if vmax == vmin:
        vmax = vmin + 1.0

    markers = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]
    for series_index, (_, values) in enumerate(series.items()):
        marker = markers[series_index % len(markers)]
        for point_index, value in enumerate(values):
            col = (
                0
                if length == 1
                else int(round(point_index * (width - 1) / (length - 1)))
            )
            row = int(round((value - vmin) / (vmax - vmin) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"max={vmax:.4g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"min={vmin:.4g}   x: {x_values[0]} .. {x_values[-1]}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series.keys())
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def render_cdf(values: Sequence[float], width: int = 60, height: int = 12, title: str = "") -> str:
    """Render the empirical CDF of ``values`` as an ASCII chart."""
    require_non_empty(values, "values")
    ordered = sorted(values)
    n = len(ordered)
    cdf = [(i + 1) / n for i in range(n)]
    return render_line_chart({"CDF": cdf}, x_values=ordered, width=width, height=height, title=title)
