"""Byte-size accounting used by the simulated distributed environment.

The paper reports communication and storage cost as message/data volume relative to
the naive approach.  We model message sizes with a simple, explicit cost model: a
fixed number of bytes per integer, per float and per identifier.  The model is
deliberately simple — the experiments only depend on *relative* sizes (a WBF plus a
handful of (id, weight) pairs versus full raw time series), which any reasonable
constant-per-field model preserves.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Iterable, Mapping

#: Bytes charged for one integer field (e.g. a pattern value or a timestamp).
INT_BYTES = 4
#: Bytes charged for one floating point field (e.g. a weight).
FLOAT_BYTES = 8
#: Bytes charged for one identifier (user id, station id).
ID_BYTES = 8
#: Fixed per-message envelope overhead (headers, routing).
MESSAGE_OVERHEAD_BYTES = 32

#: Documented accuracy bound of the estimate model against the real codec: for
#: protocol payloads (WBF dissemination batches, report lists), the estimate
#: stays within this multiplicative factor of ``len(repro.wire.encode(x))`` in
#: both directions.  Enforced by ``tests/unit/utils/test_serialization.py``.
ESTIMATE_ACCURACY_FACTOR = 4.0


def sizeof_int(count: int = 1) -> int:
    """Size in bytes of ``count`` integer fields."""
    return INT_BYTES * count


def sizeof_float(count: int = 1) -> int:
    """Size in bytes of ``count`` float fields."""
    return FLOAT_BYTES * count


def sizeof_id(count: int = 1) -> int:
    """Size in bytes of ``count`` identifier fields."""
    return ID_BYTES * count


def estimate_size_bytes(payload: Any) -> int:
    """Recursively estimate the serialized size of a plain-data payload.

    Supports the payload shapes used by the message layer: ``None``, bools, ints,
    floats, strings, bytes and nested lists/tuples/dicts of those.  Objects exposing
    a ``size_bytes()`` method (e.g. Bloom filters, patterns) are charged that size.
    """
    if payload is None:
        return 0
    if hasattr(payload, "size_bytes") and callable(payload.size_bytes):
        return int(payload.size_bytes())
    # Enum members subclass their value type (str-enums are str, int-enums are
    # int), so they must be unwrapped *before* the bool/int/str chain below —
    # otherwise a kind field would be charged as the length of its string value
    # on one code path and as a plain int on another.  Like bool-before-int,
    # order matters here.
    if isinstance(payload, Enum):
        return estimate_size_bytes(payload.value)
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return INT_BYTES
    if isinstance(payload, float):
        return FLOAT_BYTES
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, Mapping):
        return sum(
            estimate_size_bytes(key) + estimate_size_bytes(value)
            for key, value in payload.items()
        )
    if isinstance(payload, Iterable):
        return sum(estimate_size_bytes(item) for item in payload)
    raise TypeError(f"cannot estimate size of {type(payload).__name__}")
