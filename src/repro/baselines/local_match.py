"""Local-only matching (Approach 2, Section III-C).

The data center sends the raw query patterns to every station; each station applies
Eq. (2) between its local fragments and the query's *global* pattern and reports the
users that matched locally.  The approach is communication-light but lossy: a user
whose data are split across stations never matches locally even when the aggregated
global pattern matches, and a station-level match does not imply a global match (the
paper's {3,4,5}×3 example).  Included as the second naive strawman for completeness
and for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.exceptions import MatchingError
from repro.core.protocol import MatchingProtocol, MatchReport, RankedResults, RankedUser
from repro.timeseries.pattern import PatternSet
from repro.timeseries.query import QueryPattern
from repro.timeseries.similarity import pattern_epsilon_similar
from repro.utils.validation import require_non_negative


class LocalOnlyProtocol(MatchingProtocol):
    """Each station matches locally; the center unions the reported ids."""

    def __init__(self, epsilon: float = 0) -> None:
        require_non_negative(epsilon, "epsilon")
        self._epsilon = epsilon

    @property
    def name(self) -> str:
        """Protocol name used in evaluation reports."""
        return "local"

    @property
    def epsilon(self) -> float:
        """The ε of Eq. (2) applied at each station."""
        return self._epsilon

    # -- MatchingProtocol interface ---------------------------------------------

    def encode(self, queries: Sequence[QueryPattern]) -> tuple[QueryPattern, ...]:
        """Distribute the raw query patterns themselves."""
        return tuple(queries)

    def station_match(
        self, station_id: str, patterns: PatternSet, artifact: object | None
    ) -> list[MatchReport]:
        """Report users whose local fragment matches some query's global pattern."""
        if not isinstance(artifact, tuple) or not all(
            isinstance(query, QueryPattern) for query in artifact
        ):
            raise MatchingError(
                f"station {station_id!r} expected a tuple of QueryPattern, "
                f"got {type(artifact).__name__}"
            )
        reports: list[MatchReport] = []
        for pattern in patterns:
            if any(
                pattern_epsilon_similar(pattern, query.global_pattern, self._epsilon)
                for query in artifact
            ):
                reports.append(
                    MatchReport(user_id=pattern.user_id, station_id=station_id, weight=None)
                )
        return reports

    def aggregate(self, reports: Sequence[object], k: int | None) -> RankedResults:
        """Union the station-level matches, ranked by report count."""
        counts: dict[str, int] = {}
        for report in reports:
            if not isinstance(report, MatchReport):
                raise MatchingError("local-only aggregation received non-MatchReport entries")
            counts[report.user_id] = counts.get(report.user_id, 0) + 1
        ranked = [
            RankedUser(user_id=user_id, score=float(count))
            for user_id, count in counts.items()
        ]
        ranked.sort(key=lambda entry: (-entry.score, entry.user_id))
        results = RankedResults(tuple(ranked))
        return results if k is None else results.top(k)
