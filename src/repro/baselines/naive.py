"""Naive centralised matching (Approach 1, Section III-C).

Every base station ships all of its raw local patterns to the data center; the
center reconstructs each user's global pattern by summation and applies Eq. (2)
directly against every query's global pattern.  The result is exact (it is the
oracle the evaluation measures precision against), but the uplink carries the entire
distributed dataset, which is precisely the communication bottleneck the paper sets
out to avoid.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.exceptions import MatchingError
from repro.core.protocol import MatchingProtocol, RankedResults, RankedUser
from repro.timeseries.pattern import GlobalPattern, LocalPattern, Pattern, PatternSet
from repro.timeseries.query import QueryPattern
from repro.timeseries.similarity import chebyshev_distance, pattern_epsilon_similar
from repro.utils.validation import require_non_negative


class NaiveProtocol(MatchingProtocol):
    """Ship-everything baseline: exact results, maximal communication."""

    def __init__(self, epsilon: float = 0) -> None:
        require_non_negative(epsilon, "epsilon")
        self._epsilon = epsilon
        self._queries: tuple[QueryPattern, ...] = ()

    @property
    def name(self) -> str:
        """Protocol name used in evaluation reports."""
        return "naive"

    @property
    def epsilon(self) -> float:
        """The ε of Eq. (2) applied at the data center."""
        return self._epsilon

    # -- MatchingProtocol interface ---------------------------------------------

    def encode(self, queries: Sequence[QueryPattern]) -> object | None:
        """The naive method distributes nothing; queries stay at the data center."""
        self._queries = tuple(queries)
        return None

    def station_match(
        self, station_id: str, patterns: PatternSet, artifact: object | None
    ) -> list[object]:
        """Each station uploads every raw local pattern it stores."""
        _ = station_id, artifact
        return list(patterns)

    def aggregate(self, reports: Sequence[object], k: int | None) -> RankedResults:
        """Reconstruct global patterns, apply Eq. (2) against every query, rank."""
        if not self._queries:
            raise MatchingError("NaiveProtocol.aggregate called before encode")
        fragments: dict[str, list[LocalPattern]] = {}
        for report in reports:
            if not isinstance(report, Pattern):
                raise MatchingError(
                    f"naive aggregation expected raw patterns, got {type(report).__name__}"
                )
            local = (
                report
                if isinstance(report, LocalPattern)
                else LocalPattern(report.user_id, report.values, station_id="unknown")
            )
            fragments.setdefault(report.user_id, []).append(local)

        ranked: list[RankedUser] = []
        for user_id, locals_ in fragments.items():
            global_pattern = GlobalPattern.from_locals(locals_)
            best_distance: float | None = None
            for query in self._queries:
                if pattern_epsilon_similar(global_pattern, query.global_pattern, self._epsilon):
                    distance = chebyshev_distance(
                        global_pattern.values, query.global_pattern.values
                    )
                    if best_distance is None or distance < best_distance:
                        best_distance = distance
            if best_distance is not None:
                ranked.append(
                    RankedUser(user_id=user_id, score=1.0 / (1.0 + best_distance))
                )
        ranked.sort(key=lambda entry: (-entry.score, entry.user_id))
        results = RankedResults(tuple(ranked))
        return results if k is None else results.top(k)
