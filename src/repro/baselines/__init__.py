"""Baseline protocols the paper compares DI-matching against.

* :class:`NaiveProtocol` — Approach 1 (Section III-C): ship every local pattern to
  the data center and match centrally.  Exact but communication-heavy.
* :class:`LocalOnlyProtocol` — Approach 2: each station matches locally against the
  query's global pattern and reports matched ids; cheap but lossy.
* :class:`BloomFilterProtocol` — DI-matching with a plain (unweighted) Bloom filter,
  the "BF" curve of Figure 4.
"""

from repro.baselines.bf_matching import BloomFilterProtocol
from repro.baselines.local_match import LocalOnlyProtocol
from repro.baselines.naive import NaiveProtocol

__all__ = ["BloomFilterProtocol", "LocalOnlyProtocol", "NaiveProtocol"]
