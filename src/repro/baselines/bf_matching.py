"""Plain-Bloom-filter matching (the "BF" curve of Figure 4).

Identical pipeline to DI-matching — pattern representation, combination enumeration,
sampling and hashing — except that the distributed filter is a plain Bloom filter
with no weights.  Base stations report any user whose sampled values are all present;
the data center can neither distinguish global- from local-matches nor apply the
weight-sum rule, so cross-pattern confusions and over-matching users survive into the
result, which is what degrades precision as the number of patterns grows.
"""

from __future__ import annotations

from typing import Sequence

from repro.bloom.standard import BloomFilter
from repro.core.config import DIMatchingConfig
from repro.core.encoder import PatternEncoder
from repro.core.exceptions import MatchingError
from repro.core.matcher import StationMatcherCache
from repro.core.protocol import MatchingProtocol, MatchReport, RankedResults, RankedUser
from repro.timeseries.pattern import PatternSet
from repro.timeseries.query import QueryPattern


class BloomFilterProtocol(MatchingProtocol):
    """DI-matching with an unweighted Bloom filter instead of the WBF."""

    def __init__(self, config: DIMatchingConfig | None = None) -> None:
        self._config = config or DIMatchingConfig()
        self._encoder = PatternEncoder(self._config)
        self._matchers = StationMatcherCache(self._config)

    @property
    def name(self) -> str:
        """Protocol name used in evaluation reports."""
        return "bf"

    @property
    def config(self) -> DIMatchingConfig:
        """The shared center/station configuration."""
        return self._config

    # -- MatchingProtocol interface ---------------------------------------------

    def encode(self, queries: Sequence[QueryPattern]) -> BloomFilter:
        """Hash the same combined, sampled patterns into a plain Bloom filter."""
        return self._encoder.encode_batch_plain(queries)

    def station_match(
        self, station_id: str, patterns: PatternSet, artifact: object | None
    ) -> list[MatchReport]:
        """Report every user whose sampled values are all present in the filter."""
        if not isinstance(artifact, BloomFilter):
            raise MatchingError(
                f"station {station_id!r} received {type(artifact).__name__}, "
                "expected a BloomFilter"
            )
        return self._matchers.matcher_for(station_id, patterns).match_against_plain(artifact)

    def aggregate(self, reports: Sequence[object], k: int | None) -> RankedResults:
        """Rank users by how many stations reported them (no weights available)."""
        counts: dict[str, int] = {}
        for report in reports:
            if not isinstance(report, MatchReport):
                raise MatchingError("BF aggregation received non-MatchReport entries")
            counts[report.user_id] = counts.get(report.user_id, 0) + 1
        ranked = [
            RankedUser(user_id=user_id, score=float(count))
            for user_id, count in counts.items()
        ]
        ranked.sort(key=lambda entry: (-entry.score, entry.user_id))
        results = RankedResults(tuple(ranked))
        return results if k is None else results.top(k)
