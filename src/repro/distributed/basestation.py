"""Base-station node: stores local patterns and runs the per-station matching phase."""

from __future__ import annotations

from repro.core.protocol import MatchingProtocol
from repro.distributed.node import Node
from repro.timeseries.pattern import PatternSet


class BaseStationNode(Node):
    """A base station holding the local patterns of the users it served."""

    def __init__(self, station_id: str, patterns: PatternSet) -> None:
        super().__init__(station_id)
        if not isinstance(patterns, PatternSet):
            raise TypeError(f"patterns must be a PatternSet, got {type(patterns).__name__}")
        self._patterns = patterns

    @property
    def patterns(self) -> PatternSet:
        """The locally stored patterns."""
        return self._patterns

    @property
    def stored_pattern_count(self) -> int:
        """Number of local patterns stored at this station."""
        return len(self._patterns)

    def raw_storage_bytes(self) -> int:
        """Serialized size of the raw local patterns (baseline station storage)."""
        return self._patterns.size_bytes()

    def latest_artifact(self) -> object | None:
        """The payload of the most recent dissemination/control message.

        This is what the station actually decoded off the wire — the artifact
        the matching phase should run against.  Raises :class:`LookupError`
        when no dissemination reached this station (e.g. its downlink timed
        out in a partial round).
        """
        from repro.distributed.messages import MessageKind

        for message in reversed(self._inbox):
            if message.kind in (MessageKind.FILTER_DISSEMINATION, MessageKind.CONTROL):
                return message.payload
        raise LookupError(f"station {self.node_id!r} never received a dissemination")

    def run_matching(self, protocol: MatchingProtocol, artifact: object | None) -> list[object]:
        """Execute the protocol's per-station phase against the local patterns.

        The WBF/BF protocols probe all local candidates through the batched
        vectorized path (one bit row-test per station, see
        :meth:`repro.core.matcher.BaseStationMatcher.match_against`) and cache
        the station's matcher across rounds, so repeated broadcasts to the same
        node reuse the precomputed candidate items and bit positions.
        """
        return protocol.station_match(self.node_id, self._patterns, artifact)
