"""Data-center node: encodes query batches and aggregates station reports."""

from __future__ import annotations

from typing import Sequence

from repro.core.protocol import MatchingProtocol, RankedResults
from repro.distributed.node import Node
from repro.timeseries.query import QueryPattern

#: The paper denotes the data center as node ``N0``.
DATA_CENTER_NODE_ID = "data-center"


class DataCenterNode(Node):
    """The central node that owns queries, distributes filters and ranks results."""

    def __init__(self, node_id: str = DATA_CENTER_NODE_ID) -> None:
        super().__init__(node_id)

    def encode(self, protocol: MatchingProtocol, queries: Sequence[QueryPattern]) -> object | None:
        """Run the protocol's encoding phase."""
        return protocol.encode(queries)

    def aggregate(
        self, protocol: MatchingProtocol, reports: Sequence[object], k: int | None
    ) -> RankedResults:
        """Run the protocol's aggregation phase over all collected reports."""
        return protocol.aggregate(reports, k)

    def reports_by_sender(self) -> dict[str, list[object]]:
        """Decoded match-report payloads in the inbox, grouped by station.

        These are the reports that actually crossed the uplink — decoded from
        wire bytes by the transport, deduplicated at the frame layer.  The
        simulator aggregates them in canonical station order so delivery
        reordering can never change the ranking.
        """
        from repro.distributed.messages import MessageKind

        grouped: dict[str, list[object]] = {}
        for message in self._inbox:
            if message.kind is not MessageKind.MATCH_REPORT:
                continue
            reports = message.payload if isinstance(message.payload, list) else []
            grouped.setdefault(message.sender, []).extend(reports)
        return grouped
