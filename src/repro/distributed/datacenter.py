"""Data-center node: encodes query batches and aggregates station reports."""

from __future__ import annotations

from typing import Sequence

from repro.core.protocol import MatchingProtocol, RankedResults
from repro.distributed.node import Node
from repro.timeseries.query import QueryPattern

#: The paper denotes the data center as node ``N0``.
DATA_CENTER_NODE_ID = "data-center"


class DataCenterNode(Node):
    """The central node that owns queries, distributes filters and ranks results."""

    def __init__(self, node_id: str = DATA_CENTER_NODE_ID) -> None:
        super().__init__(node_id)

    def encode(self, protocol: MatchingProtocol, queries: Sequence[QueryPattern]) -> object | None:
        """Run the protocol's encoding phase."""
        return protocol.encode(queries)

    def aggregate(
        self, protocol: MatchingProtocol, reports: Sequence[object], k: int | None
    ) -> RankedResults:
        """Run the protocol's aggregation phase over all collected reports."""
        return protocol.aggregate(reports, k)

    def reports_by_sender(self) -> dict[str, list[object]]:
        """Decoded match-report payloads in the inbox, grouped by station.

        These are the reports that actually crossed the uplink — decoded from
        wire bytes by the transport, deduplicated at the frame layer.  The
        simulator aggregates them in canonical station order so delivery
        reordering can never change the ranking.

        Every protocol's ``MATCH_REPORT`` payload is a list (possibly empty);
        anything else in the inbox is a protocol violation and raises
        :class:`~repro.wire.errors.WireFormatError` — a malformed report must
        surface like transport corruption does, never silently shrink the
        aggregation input.
        """
        from repro.distributed.messages import MessageKind
        from repro.wire.errors import WireFormatError

        grouped: dict[str, list[object]] = {}
        for message in self._inbox:
            if message.kind is not MessageKind.MATCH_REPORT:
                continue
            payload = message.payload
            if not isinstance(payload, list):
                raise WireFormatError(
                    f"MATCH_REPORT from {message.sender!r} carries a "
                    f"{type(payload).__name__} payload; every protocol encodes "
                    "match reports as a list"
                )
            grouped.setdefault(message.sender, []).extend(payload)
        return grouped
