"""Seeded fault plans for the deterministic event-driven network.

A :class:`FaultPlan` declares *what* can go wrong on the simulated backhaul —
frame loss, duplication, payload corruption, reordering delays, per-station
latency jitter, straggler links and station blackout windows — while a
:class:`FaultInjector` decides *when*, deterministically: every decision is a
pure function of ``(net seed, frame id, attempt)`` or ``(net seed, station
id)``, never of global RNG state or event interleaving.  Two runs with the
same seeds therefore inject byte-identical faults, which is what lets the
simulation-test harness replay a failing schedule from nothing but its seed
triple (FoundationDB-style deterministic simulation testing).

Named profiles (:data:`FAULT_PROFILES`) give the CLI, the experiments and the
test grid a shared vocabulary; the profile *names* live in
:data:`repro.core.config.FAULT_PROFILE_CHOICES` so the dependency-light core
package can validate configurations without importing this module.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

from repro.core.config import FAULT_PROFILE_CHOICES

#: Fixed odd multipliers mixing the seed components into one RNG seed.  The
#: values are arbitrary large primes; what matters is that the mix is a pure
#: integer function (``hash()`` of strings is process-salted and must never be
#: used here).
_SEED_MIX_A = 0x9E3779B97F4A7C15
_SEED_MIX_B = 0xC2B2AE3D27D4EB4F
_SEED_MIX_C = 0x165667B19E3779F9


def _station_key(station_id: str) -> int:
    """Stable integer identity of a station (crc32 — never builtin ``hash``)."""
    return zlib.crc32(station_id.encode("utf-8"))


def _mixed_rng(*parts: int) -> random.Random:
    """A ``random.Random`` seeded from integer parts, stable across processes."""
    seed = _SEED_MIX_C
    for mix, part in zip((_SEED_MIX_A, _SEED_MIX_B, _SEED_MIX_C) * len(parts), parts):
        seed = (seed ^ (int(part) + mix)) * _SEED_MIX_A % (1 << 64)
    return random.Random(seed)


def _require_probability(value: float, name: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if not 0.0 <= float(value) <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")


def _require_non_negative(value: float, name: str) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if float(value) < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults a simulated round is exposed to.

    All probabilities are per transmitted frame (retransmissions re-roll with a
    fresh attempt number); jitter, stragglers and blackouts are per *station*,
    drawn once per round from the network seed so a straggler link stays slow
    for the whole round.
    """

    #: Probability a data frame is silently lost in transit.
    drop_probability: float = 0.0
    #: Probability the network delivers a second copy of a frame.
    duplicate_probability: float = 0.0
    #: Probability the frame's payload bytes are corrupted in transit.
    corrupt_probability: float = 0.0
    #: Probability a frame is held back and delivered late (reordering).
    reorder_probability: float = 0.0
    #: Extra in-flight delay applied to reordered frames, in seconds.
    reorder_delay_s: float = 0.05
    #: Upper bound of the uniform per-frame latency jitter, in seconds.
    jitter_s: float = 0.0
    #: Probability a station's link is a straggler for the round.
    straggler_probability: float = 0.0
    #: Transfer-time multiplier applied on straggler links (>= 1).
    straggler_multiplier: float = 1.0
    #: Probability a station is blacked out during the blackout window.
    blackout_probability: float = 0.0
    #: Virtual-time window (per phase) during which blacked-out stations
    #: neither send nor receive; frames emitted in the window are lost.
    blackout_start_s: float = 0.0
    blackout_end_s: float = 0.0
    #: Profile name, for reports and transcripts ("custom" for ad-hoc plans).
    name: str = "custom"

    def __post_init__(self) -> None:
        _require_probability(self.drop_probability, "drop_probability")
        _require_probability(self.duplicate_probability, "duplicate_probability")
        _require_probability(self.corrupt_probability, "corrupt_probability")
        _require_probability(self.reorder_probability, "reorder_probability")
        _require_probability(self.straggler_probability, "straggler_probability")
        _require_probability(self.blackout_probability, "blackout_probability")
        _require_non_negative(self.reorder_delay_s, "reorder_delay_s")
        _require_non_negative(self.jitter_s, "jitter_s")
        _require_non_negative(self.blackout_start_s, "blackout_start_s")
        _require_non_negative(self.blackout_end_s, "blackout_end_s")
        if self.straggler_multiplier < 1.0:
            raise ValueError(
                f"straggler_multiplier must be >= 1, got {self.straggler_multiplier!r}"
            )
        if self.blackout_end_s < self.blackout_start_s:
            raise ValueError("blackout_end_s must be >= blackout_start_s")
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"name must be a non-empty string, got {self.name!r}")

    @property
    def is_fault_free(self) -> bool:
        """True when the plan can never perturb a transmission.

        The fault-free plan is the parity anchor: under it the event-driven
        network reproduces the legacy accounting model's bytes and latencies
        exactly, which the simulation harness asserts.
        """
        return (
            self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and self.corrupt_probability == 0.0
            and self.reorder_probability == 0.0
            and self.jitter_s == 0.0
            and self.straggler_probability == 0.0
            and self.blackout_probability == 0.0
        )

    def with_updates(self, **changes: object) -> "FaultPlan":
        """A copy of this plan with the given fields replaced."""
        return replace(self, **changes)


#: Named fault profiles shared by the CLI, the experiments and the test grid.
#: Keys must match :data:`repro.core.config.FAULT_PROFILE_CHOICES` exactly.
FAULT_PROFILES: dict[str, FaultPlan] = {
    "none": FaultPlan(name="none"),
    "lossy": FaultPlan(name="lossy", drop_probability=0.15, jitter_s=0.01),
    "duplicating": FaultPlan(name="duplicating", duplicate_probability=0.25, jitter_s=0.005),
    "corrupting": FaultPlan(name="corrupting", corrupt_probability=0.2),
    "reordering": FaultPlan(
        name="reordering", reorder_probability=0.35, reorder_delay_s=0.08, jitter_s=0.01
    ),
    "straggler": FaultPlan(
        name="straggler", straggler_probability=0.4, straggler_multiplier=8.0
    ),
    "blackout": FaultPlan(
        name="blackout",
        blackout_probability=0.35,
        blackout_start_s=0.0,
        blackout_end_s=0.3,
        drop_probability=0.05,
    ),
    "chaos": FaultPlan(
        name="chaos",
        drop_probability=0.1,
        duplicate_probability=0.1,
        corrupt_probability=0.1,
        reorder_probability=0.2,
        reorder_delay_s=0.05,
        jitter_s=0.02,
        straggler_probability=0.25,
        straggler_multiplier=4.0,
    ),
}

if set(FAULT_PROFILES) != set(FAULT_PROFILE_CHOICES):  # pragma: no cover - import guard
    raise RuntimeError(
        "FAULT_PROFILES keys must match repro.core.config.FAULT_PROFILE_CHOICES"
    )


def resolve_fault_plan(profile: "FaultPlan | str | None") -> FaultPlan:
    """Resolve a profile name (or pass through a plan) into a :class:`FaultPlan`."""
    if profile is None:
        return FAULT_PROFILES["none"]
    if isinstance(profile, FaultPlan):
        return profile
    if isinstance(profile, str):
        try:
            return FAULT_PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown fault profile {profile!r}; expected one of {sorted(FAULT_PROFILES)}"
            ) from None
    raise TypeError(f"profile must be a FaultPlan, a profile name or None, got {profile!r}")


@dataclass(frozen=True)
class FrameFaults:
    """The fault decisions for one physical frame transmission."""

    drop: bool
    duplicate: bool
    corrupt: bool
    reorder_delay_s: float
    jitter_s: float


class FaultInjector:
    """Deterministic per-frame and per-station fault decisions.

    Every decision is drawn from an RNG seeded purely by ``(seed, frame id,
    attempt)`` (frames) or ``(seed, crc32(station id))`` (stations), so the
    outcome is independent of call order, event interleaving and the executor
    running the station phase — the replay guarantee the transcript tests pin.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(f"seed must be an integer, got {seed!r}")
        self._plan = plan
        self._seed = seed

    @property
    def plan(self) -> FaultPlan:
        """The fault plan decisions are drawn from."""
        return self._plan

    @property
    def seed(self) -> int:
        """The network seed all decisions derive from."""
        return self._seed

    def frame_faults(self, frame_id: int, attempt: int) -> FrameFaults:
        """Fault decisions for attempt ``attempt`` of frame ``frame_id``.

        The draw order within the RNG is fixed (drop, duplicate, corrupt,
        reorder, jitter) so adding a new fault type to the *end* preserves all
        existing decisions for a given seed.
        """
        plan = self._plan
        if plan.is_fault_free:
            return FrameFaults(False, False, False, 0.0, 0.0)
        rng = _mixed_rng(self._seed, frame_id, attempt)
        drop = rng.random() < plan.drop_probability
        duplicate = rng.random() < plan.duplicate_probability
        corrupt = rng.random() < plan.corrupt_probability
        reorder = rng.random() < plan.reorder_probability
        jitter = rng.random() * plan.jitter_s if plan.jitter_s else 0.0
        return FrameFaults(
            drop=drop,
            duplicate=duplicate,
            corrupt=corrupt,
            reorder_delay_s=plan.reorder_delay_s if reorder else 0.0,
            jitter_s=jitter,
        )

    def straggler_multiplier(self, station_id: str) -> float:
        """Transfer-time multiplier of ``station_id``'s link for this round."""
        plan = self._plan
        if plan.straggler_probability == 0.0 or plan.straggler_multiplier == 1.0:
            return 1.0
        rng = _mixed_rng(self._seed, _station_key(station_id), 1)
        if rng.random() < plan.straggler_probability:
            return plan.straggler_multiplier
        return 1.0

    def blackout_window(self, station_id: str) -> tuple[float, float] | None:
        """The per-phase virtual-time window ``station_id`` is dark, if any."""
        plan = self._plan
        if plan.blackout_probability == 0.0 or plan.blackout_end_s == plan.blackout_start_s:
            return None
        rng = _mixed_rng(self._seed, _station_key(station_id), 2)
        if rng.random() < plan.blackout_probability:
            return (plan.blackout_start_s, plan.blackout_end_s)
        return None

    def corrupt_bytes(self, data: bytes, frame_id: int, attempt: int) -> bytes:
        """A deterministically corrupted copy of ``data`` (always differs)."""
        if not data:
            return b"\x00"
        rng = _mixed_rng(self._seed, frame_id, attempt, 3)
        corrupted = bytearray(data)
        index = rng.randrange(len(corrupted))
        corrupted[index] ^= 1 + rng.randrange(255)
        return bytes(corrupted)
