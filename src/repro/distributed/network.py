"""Simulated network between the data center and base stations.

The model captures the two properties the paper's communication argument depends on:
the wireless backhaul has limited bandwidth, and every station shares the data
center's ingress link when uploading.  Downlink broadcasts to different stations
proceed in parallel (each station has its own link), so downlink latency is the
maximum over stations; uplink transfers serialize at the center, so uplink latency is
the sum over stations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.messages import Message
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class NetworkConfig:
    """Link parameters of the simulated backhaul."""

    #: Sustained throughput of each link, in bytes per second.
    bandwidth_bytes_per_s: float = 2_000_000.0
    #: Fixed per-message latency in seconds.
    latency_s: float = 0.02

    def __post_init__(self) -> None:
        require_positive(self.bandwidth_bytes_per_s, "bandwidth_bytes_per_s")
        require_non_negative(self.latency_s, "latency_s")

    def transfer_time_s(self, size_bytes: int) -> float:
        """Simulated time to move ``size_bytes`` over one link."""
        require_non_negative(size_bytes, "size_bytes")
        return self.latency_s + size_bytes / self.bandwidth_bytes_per_s


class SimulatedNetwork:
    """Delivers messages between nodes while recording byte and timing costs."""

    def __init__(self, config: NetworkConfig | None = None) -> None:
        self._config = config or NetworkConfig()
        self._downlink_bytes = 0
        self._uplink_bytes = 0
        self._message_count = 0
        self._downlink_times: list[float] = []
        self._uplink_times: list[float] = []
        self._log: list[Message] = []

    @property
    def config(self) -> NetworkConfig:
        """The link parameters in use."""
        return self._config

    @property
    def downlink_bytes(self) -> int:
        """Bytes sent from the data center to stations."""
        return self._downlink_bytes

    @property
    def uplink_bytes(self) -> int:
        """Bytes sent from stations to the data center."""
        return self._uplink_bytes

    @property
    def message_count(self) -> int:
        """Total messages delivered."""
        return self._message_count

    @property
    def message_log(self) -> list[Message]:
        """All delivered messages, in delivery order."""
        return list(self._log)

    def send_downlink(self, message: Message) -> float:
        """Record a center→station message; return its simulated transfer time."""
        size = message.size_bytes()
        self._downlink_bytes += size
        self._message_count += 1
        self._log.append(message)
        transfer = self._config.transfer_time_s(size)
        self._downlink_times.append(transfer)
        return transfer

    def send_uplink(self, message: Message) -> float:
        """Record a station→center message; return its simulated transfer time."""
        size = message.size_bytes()
        self._uplink_bytes += size
        self._message_count += 1
        self._log.append(message)
        transfer = self._config.transfer_time_s(size)
        self._uplink_times.append(transfer)
        return transfer

    def transmission_time_s(self) -> float:
        """Aggregate simulated transmission time.

        Downlink broadcasts run in parallel (max over stations); uplink transfers
        serialize at the data center's ingress (sum over stations).
        """
        downlink = max(self._downlink_times) if self._downlink_times else 0.0
        uplink = sum(self._uplink_times)
        return downlink + uplink

    def reset(self) -> None:
        """Clear all recorded traffic."""
        self._downlink_bytes = 0
        self._uplink_bytes = 0
        self._message_count = 0
        self._downlink_times.clear()
        self._uplink_times.clear()
        self._log.clear()
