"""Deterministic event-driven network between the data center and base stations.

The model keeps the two properties the paper's communication argument depends
on — the wireless backhaul has limited bandwidth, and every station shares the
data center's ingress link when uploading (downlink broadcasts run on parallel
per-station links; uplink transfers serialize at the center) — but executes
them as a discrete-event simulation on a virtual clock instead of closed-form
accounting:

* every logical :class:`~repro.distributed.messages.Message` is encoded to its
  real wire bytes and transmitted as a *frame* over a link with queueing,
  latency and transfer time;
* a seeded :class:`~repro.distributed.faults.FaultPlan` may drop, duplicate,
  corrupt, delay (reorder) or black out frames at send time — every decision a
  pure function of ``(net seed, frame id, attempt)``, so runs replay exactly;
* the data center's reliability policy is stop-and-wait ack/retransmit per
  logical message: deliveries are acknowledged instantly and at zero cost
  (acks and frame headers are link-layer fictions that never enter the byte
  accounting), lost or corrupted frames retransmit after a timeout, and a
  transfer that exhausts :attr:`NetworkConfig.max_attempts` either fails the
  round with a typed :class:`~repro.distributed.events.RoundTimeoutError` or —
  under ``allow_partial`` — drops out of the round, which the caller observes
  through :class:`PhaseOutcome.failed_ids`;
* receivers accept a frame only if its link-layer checksum matches *and* the
  wire codec decodes it; corrupted frames therefore exercise the real
  :class:`~repro.wire.errors.WireFormatError` path and can never surface as
  wrong matches (the checksum is the backstop for corruptions the codec alone
  would miss — both cases are counted separately in :class:`FrameStats`).

Under the all-zero fault plan the event-driven execution reproduces the legacy
accounting model *exactly*: identical byte counts and bit-identical
transmission times (downlink = max over stations, uplink = sum at the ingress),
which the simulation-test harness pins.

Every frame event is recorded as a
:class:`~repro.distributed.events.TranscriptEntry`; the canonical transcript
bytes are the replay token the seed-replay tests compare across runs and
executors.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.distributed.events import EventLoop, RoundTimeoutError, TranscriptEntry
from repro.distributed.faults import FaultInjector, FaultPlan, resolve_fault_plan
from repro.distributed.messages import Message
from repro.distributed.node import Node
from repro.distributed.transport.base import FrameStats, PhaseOutcome, Transport
from repro.utils.validation import require_non_negative, require_positive
from repro.wire.errors import UnsupportedWireTypeError, WireFormatError

__all__ = [
    "FrameStats",
    "NetworkConfig",
    "PhaseOutcome",
    "SimulatedNetwork",
]

#: All uplink transfers serialize on this shared link (the center's ingress).
_UPLINK_INGRESS = "uplink:center-ingress"


@dataclass(frozen=True)
class NetworkConfig:
    """Link and reliability parameters of the simulated backhaul."""

    #: Sustained throughput of each link, in bytes per second.
    bandwidth_bytes_per_s: float = 2_000_000.0
    #: Fixed per-message latency in seconds.
    latency_s: float = 0.02
    #: Retransmission budget per logical message (first attempt included).
    max_attempts: int = 8
    #: Fixed retransmit timeout in seconds; ``None`` sizes it per frame
    #: (occupancy + two propagation delays + the plan's jitter bound).
    retransmit_timeout_s: float | None = None

    def __post_init__(self) -> None:
        require_positive(self.bandwidth_bytes_per_s, "bandwidth_bytes_per_s")
        require_non_negative(self.latency_s, "latency_s")
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ValueError(f"max_attempts must be a positive integer, got {self.max_attempts!r}")
        if self.retransmit_timeout_s is not None:
            require_positive(self.retransmit_timeout_s, "retransmit_timeout_s")

    def transfer_time_s(self, size_bytes: int) -> float:
        """Simulated time to move ``size_bytes`` over one link."""
        require_non_negative(size_bytes, "size_bytes")
        return self.latency_s + size_bytes / self.bandwidth_bytes_per_s


class _SequenceView(Sequence):
    """A zero-copy read-only view over a list (the ``message_log`` fix).

    Property access in hot loops used to copy the full delivery log; this view
    is O(1) to hand out while still supporting ``len``/indexing/iteration.
    Callers that need a stable snapshot use
    :meth:`SimulatedNetwork.copy_message_log`.
    """

    __slots__ = ("_items",)

    def __init__(self, items: list) -> None:
        self._items = items

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __repr__(self) -> str:
        return f"_SequenceView({self._items!r})"


class _Transfer:
    """One logical message's reliable delivery state."""

    __slots__ = (
        "frame_id",
        "message",
        "receiver",
        "direction",
        "payload",
        "size",
        "crc",
        "link",
        "station",
        "attempts",
        "delivered",
        "failed",
        "resolved_at",
    )

    def __init__(
        self,
        frame_id: int,
        message: Message,
        receiver: Node | None,
        direction: str,
    ) -> None:
        self.frame_id = frame_id
        self.message = message
        self.receiver = receiver
        self.direction = direction
        try:
            payload: bytes | None = message.to_wire()
        except UnsupportedWireTypeError:
            payload = None
        self.payload = payload
        self.size = len(payload) if payload is not None else message.size_bytes()
        self.crc = zlib.crc32(payload) if payload is not None else 0
        if direction == "downlink":
            self.link = f"downlink:{message.recipient}"
            self.station = message.recipient
        else:
            self.link = _UPLINK_INGRESS
            self.station = message.sender
        self.attempts = 0
        self.delivered = False
        self.failed = False
        self.resolved_at = 0.0


class SimulatedNetwork(Transport):
    """Event-driven reliable transport with seeded fault injection.

    One instance models one round's network: phases run sequentially on a
    per-phase virtual clock, all byte/latency accounting accumulates here, and
    the transcript records every frame event in a canonical replayable form.
    """

    def __init__(
        self,
        config: NetworkConfig | None = None,
        fault_plan: FaultPlan | str | None = None,
        seed: int = 0,
        decode_backend: str = "auto",
        allow_partial: bool = False,
    ) -> None:
        self._config = config or NetworkConfig()
        self._plan = resolve_fault_plan(fault_plan)
        self._injector = FaultInjector(self._plan, seed)
        self._decode_backend = decode_backend
        self._allow_partial = bool(allow_partial)
        self._loop = EventLoop()
        self._link_free: dict[str, float] = {}
        self._downlink_bytes = 0
        self._uplink_bytes = 0
        self._message_count = 0
        self._downlink_durations: list[float] = []
        self._uplink_durations: list[float] = []
        self._log: list[Message] = []
        self._log_view = _SequenceView(self._log)
        self._transcript: list[TranscriptEntry] = []
        self._delivered: dict[tuple[str, str], list[bytes]] = {}
        self._next_frame_id = 0
        self._frames_sent = 0
        self._frames_delivered = 0
        self._frames_dropped = 0
        self._frames_corrupt = 0
        self._frames_duplicate = 0
        self._retransmit_count = 0
        self._timeout_count = 0
        self._corrupt_caught_by_codec = 0
        self._corrupt_caught_by_checksum = 0
        self._payload_bytes_sent = 0
        self._payload_bytes_delivered = 0

    # -- configuration and accounting -------------------------------------------

    @property
    def config(self) -> NetworkConfig:
        """The link parameters in use."""
        return self._config

    @property
    def fault_plan(self) -> FaultPlan:
        """The fault plan frames are exposed to."""
        return self._plan

    @property
    def seed(self) -> int:
        """The network seed all fault decisions derive from."""
        return self._injector.seed

    @property
    def downlink_bytes(self) -> int:
        """Bytes put on center→station links (retransmits and duplicates included)."""
        return self._downlink_bytes

    @property
    def uplink_bytes(self) -> int:
        """Bytes put on the station→center ingress (retransmits included)."""
        return self._uplink_bytes

    @property
    def message_count(self) -> int:
        """Logical messages offered to the transport."""
        return self._message_count

    @property
    def message_log(self) -> Sequence:
        """Read-only view of delivered messages, in delivery order (no copy)."""
        return self._log_view

    def copy_message_log(self) -> list[Message]:
        """A snapshot copy of the delivery log (the old ``message_log`` behavior)."""
        return list(self._log)

    @property
    def transcript(self) -> tuple[TranscriptEntry, ...]:
        """The deterministic event transcript recorded so far."""
        return tuple(self._transcript)

    def transcript_bytes(self) -> bytes:
        """Canonical byte rendering of the transcript (the replay token)."""
        from repro.distributed.events import transcript_to_bytes

        return transcript_to_bytes(self._transcript)

    def delivered_payloads(self, direction: str) -> dict[str, tuple[bytes, ...]]:
        """Unique delivered frame bytes per station for ``direction``.

        The cross-transport conformance battery compares these against the
        TCP backend's: for fault-free plans the exact wire bytes must match.
        """
        return {
            station: tuple(payloads)
            for (recorded_direction, station), payloads in self._delivered.items()
            if recorded_direction == direction
        }

    def frame_stats(self) -> FrameStats:
        """Snapshot of the frame-level ledger."""
        return FrameStats(
            frames_sent=self._frames_sent,
            frames_delivered=self._frames_delivered,
            frames_dropped=self._frames_dropped,
            frames_corrupt=self._frames_corrupt,
            frames_duplicate=self._frames_duplicate,
            retransmit_count=self._retransmit_count,
            timeout_count=self._timeout_count,
            corrupt_caught_by_codec=self._corrupt_caught_by_codec,
            corrupt_caught_by_checksum=self._corrupt_caught_by_checksum,
            payload_bytes_sent=self._payload_bytes_sent,
            payload_bytes_delivered=self._payload_bytes_delivered,
        )

    def transmission_time_s(self) -> float:
        """Aggregate simulated transmission time.

        Downlink phases run on parallel per-station links (max over phases,
        one phase per round); uplink phases serialize at the ingress (sum).
        """
        downlink = max(self._downlink_durations) if self._downlink_durations else 0.0
        return downlink + sum(self._uplink_durations)

    def reset(self) -> None:
        """Clear all recorded traffic, the transcript and the ledger."""
        self._loop.reset(0.0)
        self._link_free.clear()
        self._downlink_bytes = 0
        self._uplink_bytes = 0
        self._message_count = 0
        self._downlink_durations.clear()
        self._uplink_durations.clear()
        self._log.clear()
        self._transcript.clear()
        self._delivered.clear()
        self._next_frame_id = 0
        self._frames_sent = 0
        self._frames_delivered = 0
        self._frames_dropped = 0
        self._frames_corrupt = 0
        self._frames_duplicate = 0
        self._retransmit_count = 0
        self._timeout_count = 0
        self._corrupt_caught_by_codec = 0
        self._corrupt_caught_by_checksum = 0
        self._payload_bytes_sent = 0
        self._payload_bytes_delivered = 0

    # -- sending -----------------------------------------------------------------

    def broadcast(
        self, sends: Sequence[tuple[Message, Node | None]]
    ) -> PhaseOutcome:
        """Run one downlink phase: the center's messages to many stations."""
        return self._run_phase(list(sends), "downlink")

    def gather(self, sends: Sequence[tuple[Message, Node | None]]) -> PhaseOutcome:
        """Run one uplink phase: station reports into the center's ingress."""
        return self._run_phase(list(sends), "uplink")

    def send_downlink(self, message: Message, receiver: Node | None = None) -> float:
        """Deliver one center→station message; return its phase duration.

        Kept for accounting-style callers; a full round should use
        :meth:`broadcast` so the whole dissemination shares one phase clock.
        """
        return self.broadcast([(message, receiver)]).duration_s

    def send_uplink(self, message: Message, receiver: Node | None = None) -> float:
        """Deliver one station→center message; return its phase duration."""
        return self.gather([(message, receiver)]).duration_s

    # -- the phase engine ---------------------------------------------------------

    def _record(
        self,
        time_s: float,
        event: str,
        transfer: _Transfer | None,
        attempt: int | None = None,
    ) -> None:
        if transfer is None:
            entry = TranscriptEntry(
                sequence=len(self._transcript),
                time_s=time_s,
                event=event,
                frame_id=-1,
                attempt=attempt or 0,
                sender="-",
                recipient="-",
                kind="-",
                size_bytes=0,
            )
        else:
            entry = TranscriptEntry(
                sequence=len(self._transcript),
                time_s=time_s,
                event=event,
                frame_id=transfer.frame_id,
                attempt=attempt if attempt is not None else transfer.attempts,
                sender=transfer.message.sender,
                recipient=transfer.message.recipient,
                kind=transfer.message.kind.value,
                size_bytes=transfer.size,
            )
        self._transcript.append(entry)

    def _run_phase(
        self, sends: list[tuple[Message, Node | None]], direction: str
    ) -> PhaseOutcome:
        self._loop.reset(0.0)
        self._link_free.clear()
        transfers: list[_Transfer] = []
        for message, receiver in sends:
            transfer = _Transfer(self._next_frame_id, message, receiver, direction)
            self._next_frame_id += 1
            self._message_count += 1
            transfers.append(transfer)
        phase_marker = TranscriptEntry(
            sequence=len(self._transcript),
            time_s=0.0,
            event="phase",
            frame_id=-1,
            attempt=len(transfers),
            sender="-",
            recipient="-",
            kind=direction,
            size_bytes=0,
        )
        self._transcript.append(phase_marker)
        for transfer in transfers:
            self._schedule_attempt(transfer, 0.0, retransmit=False)
        self._loop.run()
        failed = [t for t in transfers if not t.delivered]
        if failed and not self._allow_partial:
            labels = tuple(
                f"{t.message.sender}->{t.message.recipient}" for t in failed
            )
            raise RoundTimeoutError(
                f"{len(failed)} {direction} transfer(s) exhausted "
                f"{self._config.max_attempts} attempts under fault plan "
                f"{self._plan.name!r} (seed {self._injector.seed}): "
                + ", ".join(labels),
                failed_transfers=labels,
                delivered_ids=tuple(t.station for t in transfers if t.delivered),
            )
        duration = max((t.resolved_at for t in transfers), default=0.0)
        if direction == "downlink":
            self._downlink_durations.append(duration)
        else:
            self._uplink_durations.append(duration)
        return PhaseOutcome(
            direction=direction,
            duration_s=duration,
            delivered_ids=tuple(t.station for t in transfers if t.delivered),
            failed_ids=tuple(t.station for t in transfers if not t.delivered),
        )

    def _charge(self, transfer: _Transfer) -> None:
        self._frames_sent += 1
        self._payload_bytes_sent += transfer.size
        if transfer.direction == "downlink":
            self._downlink_bytes += transfer.size
        else:
            self._uplink_bytes += transfer.size

    def _schedule_attempt(self, transfer: _Transfer, time_s: float, retransmit: bool) -> None:
        if transfer.delivered or transfer.failed:
            return
        if transfer.attempts >= self._config.max_attempts:
            transfer.failed = True
            transfer.resolved_at = time_s
            self._timeout_count += 1
            self._record(time_s, "timeout", transfer)
            return
        transfer.attempts += 1
        attempt = transfer.attempts
        if retransmit:
            self._retransmit_count += 1
            self._record(time_s, "retransmit", transfer, attempt=attempt)
        faults = self._injector.frame_faults(transfer.frame_id, attempt)
        multiplier = self._injector.straggler_multiplier(transfer.station)
        start = max(time_s, self._link_free.get(transfer.link, 0.0))
        occupancy = self._config.transfer_time_s(transfer.size)
        if multiplier != 1.0:
            occupancy *= multiplier
        self._link_free[transfer.link] = start + occupancy
        self._charge(transfer)
        self._record(start, "send", transfer, attempt=attempt)

        blackout = self._injector.blackout_window(transfer.station)
        lost_to_blackout = blackout is not None and blackout[0] <= start < blackout[1]
        # Corruption needs bytes to flip; a payload outside the codec's
        # vocabulary travels as an opaque object, so the fault degrades to loss.
        lost_to_fault = faults.drop or (faults.corrupt and transfer.payload is None)
        if lost_to_blackout or lost_to_fault:
            self._frames_dropped += 1
            self._record(start, "blackout" if lost_to_blackout else "drop", transfer, attempt=attempt)
        else:
            arrival = start + occupancy
            if faults.jitter_s:
                arrival += faults.jitter_s
            if faults.reorder_delay_s:
                arrival += faults.reorder_delay_s
            data = transfer.payload
            if faults.corrupt and data is not None:
                data = self._injector.corrupt_bytes(data, transfer.frame_id, attempt)
            self._loop.schedule(
                arrival,
                lambda t, tr=transfer, d=data: self._on_arrival(tr, d, t),
            )
            if faults.duplicate:
                # A network-generated duplicate: a pristine second copy
                # trailing the original by one propagation delay.
                self._charge(transfer)
                self._record(start, "dup-send", transfer, attempt=attempt)
                self._loop.schedule(
                    arrival + self._config.latency_s,
                    lambda t, tr=transfer: self._on_arrival(tr, tr.payload, t),
                )

        rto = self._config.retransmit_timeout_s
        if rto is None:
            rto = occupancy + 2.0 * self._config.latency_s + self._plan.jitter_s
        if attempt >= self._config.max_attempts:
            # Final attempt: give reordered frames time to land before the
            # transfer is declared dead.
            rto += self._plan.reorder_delay_s + self._config.latency_s
        self._loop.schedule(start + rto, lambda t, tr=transfer: self._on_timer(tr, t))

    def _on_timer(self, transfer: _Transfer, time_s: float) -> None:
        if transfer.delivered or transfer.failed:
            return
        self._schedule_attempt(transfer, time_s, retransmit=True)

    def _on_arrival(
        self, transfer: _Transfer, data: bytes | None, time_s: float
    ) -> None:
        if transfer.delivered or transfer.failed:
            # A duplicate emission, a spurious retransmission, or a reordered
            # frame landing after the transfer was resolved.
            self._frames_duplicate += 1
            self._record(time_s, "duplicate", transfer)
            return
        if data is not None and zlib.crc32(data) != transfer.crc:
            # The frame checksum is verified on every arrival, so in-flight
            # corruption is detected independently of how it was injected.
            # The receiver still runs the real decode on the corrupt bytes —
            # the codec's typed-error contract is exercised for real — and the
            # checksum is the backstop for corruptions the codec cannot see,
            # so a corrupt frame can never be accepted.
            try:
                Message.from_wire(data, backend=self._decode_backend)
            except WireFormatError:
                self._corrupt_caught_by_codec += 1
            else:
                self._corrupt_caught_by_checksum += 1
            self._frames_corrupt += 1
            self._record(time_s, "corrupt", transfer)
            return
        if transfer.receiver is not None:
            if data is not None:
                delivered = transfer.receiver.receive_wire(data, backend=self._decode_backend)
            else:
                transfer.receiver.receive(transfer.message)
                delivered = transfer.message
        else:
            delivered = transfer.message
        transfer.delivered = True
        transfer.resolved_at = time_s
        self._frames_delivered += 1
        self._payload_bytes_delivered += transfer.size
        if transfer.payload is not None:
            self._delivered.setdefault(
                (transfer.direction, transfer.station), []
            ).append(transfer.payload)
        self._log.append(delivered)
        self._record(time_s, "deliver", transfer)
