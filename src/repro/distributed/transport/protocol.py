"""Control-frame vocabulary of the TCP transport.

Everything that crosses a TCP connection between the data center, the fault
proxy and a station worker is one :mod:`repro.wire.stream` frame whose payload
is a *transport frame*: a one-byte kind tag followed by kind-specific fields
encoded with the :mod:`repro.wire.primitives` writers.  Only ``DATA`` frames
carry protocol traffic (a full ``DIMW``-encoded
:class:`~repro.distributed.messages.Message`); the rest are link-layer
control — exactly the frames the simulator models as zero-cost fictions, so
the byte ledger charges ``DATA`` bodies only and the fault proxy perturbs
``DATA`` frames only.

The ``DATA`` checksum field is computed by the original sender over the body
bytes; the proxy corrupts bodies *without* touching the checksum, so the
receiver detects in-flight corruption the same way the simulator's link-layer
checksum does — and still runs the real codec decode on the corrupt bytes to
classify the catch (codec vs checksum), keeping the
:class:`~repro.distributed.transport.base.FrameStats` corruption counters
comparable across backends.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.wire.errors import WireFormatError
from repro.wire.primitives import (
    ByteReader,
    write_bool,
    write_bytes,
    write_f64,
    write_str,
    write_u8,
    write_uvarint,
)

#: Transport frame kinds (u8 tags).  Append only — these travel between
#: processes that may momentarily run different checkouts during development.
HELLO = 0x01
DATA = 0x02
ACK = 0x03
LOAD = 0x04
FAIL = 0x05
CORRUPT = 0x06
SHUTDOWN = 0x07
RESET = 0x08

FRAME_KINDS = (HELLO, DATA, ACK, LOAD, FAIL, CORRUPT, SHUTDOWN, RESET)

#: ``DATA`` direction field.
DOWNLINK = 0
UPLINK = 1

#: ``CORRUPT`` classification field: which integrity layer caught the frame.
CAUGHT_BY_CODEC = 1
CAUGHT_BY_CHECKSUM = 2


@dataclass(frozen=True)
class TransportFrame:
    """One decoded transport frame (unused fields stay at their defaults)."""

    kind: int
    station_id: str = ""
    frame_id: int = 0
    attempt: int = 0
    direction: int = DOWNLINK
    crc: int = 0
    body: bytes = b""
    duplicate: bool = False
    max_attempts: int = 0
    ack_timeout_s: float = 0.0
    caught_by: int = 0


def encode_hello(station_id: str) -> bytes:
    """Worker → center: identify this connection's station."""
    out = bytearray()
    write_u8(out, HELLO)
    write_str(out, station_id)
    return bytes(out)


def encode_data(
    frame_id: int,
    attempt: int,
    direction: int,
    body: bytes,
    crc: int | None = None,
) -> bytes:
    """One protocol frame: a ``DIMW`` message body under the transport header.

    ``crc`` defaults to the body's checksum; the fault proxy passes the
    *original* checksum through unchanged when it corrupts the body, so the
    receiver can detect the corruption.
    """
    out = bytearray()
    write_u8(out, DATA)
    write_uvarint(out, frame_id)
    write_uvarint(out, attempt)
    write_u8(out, direction)
    write_uvarint(out, zlib.crc32(body) if crc is None else crc)
    write_bytes(out, body)
    return bytes(out)


def encode_ack(frame_id: int, attempt: int, duplicate: bool = False) -> bytes:
    """Receiver → sender: the frame arrived intact (``duplicate`` = again)."""
    out = bytearray()
    write_u8(out, ACK)
    write_uvarint(out, frame_id)
    write_uvarint(out, attempt)
    write_bool(out, duplicate)
    return bytes(out)


def encode_load(
    frame_id: int, max_attempts: int, ack_timeout_s: float, body: bytes
) -> bytes:
    """Center → worker: transmit ``body`` uplink under stop-and-wait."""
    out = bytearray()
    write_u8(out, LOAD)
    write_uvarint(out, frame_id)
    write_uvarint(out, max_attempts)
    write_f64(out, ack_timeout_s)
    write_bytes(out, body)
    return bytes(out)


def encode_fail(frame_id: int, attempt: int) -> bytes:
    """Worker → center: an uplink transfer exhausted its retransmission budget."""
    out = bytearray()
    write_u8(out, FAIL)
    write_uvarint(out, frame_id)
    write_uvarint(out, attempt)
    return bytes(out)


def encode_corrupt(frame_id: int, attempt: int, caught_by: int) -> bytes:
    """Receiver → sender ledger: a frame arrived corrupt (and was not acked)."""
    out = bytearray()
    write_u8(out, CORRUPT)
    write_uvarint(out, frame_id)
    write_uvarint(out, attempt)
    write_u8(out, caught_by)
    return bytes(out)


def encode_shutdown() -> bytes:
    """Center → worker: drain and exit cleanly."""
    out = bytearray()
    write_u8(out, SHUTDOWN)
    return bytes(out)


def encode_reset() -> bytes:
    """Center → worker: a new round transport began; frame ids restart.

    Frame ids are assigned per round transport (mirroring the simulator's
    per-instance counter, which the fault injector's ``(seed, frame id,
    attempt)`` keying depends on), so the worker's duplicate-suppression set
    must be cleared between rounds.  TCP's per-connection ordering makes this
    race-free: the reset is written before any of the new round's ``DATA``
    frames, and the previous round's quiescence barrier guarantees no stale
    frames are still in flight behind it.
    """
    out = bytearray()
    write_u8(out, RESET)
    return bytes(out)


def parse_frame(payload: bytes) -> TransportFrame:
    """Decode one transport frame; malformed input raises ``WireFormatError``."""
    reader = ByteReader(payload)
    kind = reader.u8()
    if kind == HELLO:
        frame = TransportFrame(kind=kind, station_id=reader.str_())
    elif kind == DATA:
        frame = TransportFrame(
            kind=kind,
            frame_id=reader.uvarint(),
            attempt=reader.uvarint(),
            direction=reader.u8(),
            crc=reader.uvarint(),
            body=reader.bytes_(),
        )
        if frame.direction not in (DOWNLINK, UPLINK):
            raise WireFormatError(f"invalid DATA direction {frame.direction}")
    elif kind == ACK:
        frame = TransportFrame(
            kind=kind,
            frame_id=reader.uvarint(),
            attempt=reader.uvarint(),
            duplicate=reader.bool_(),
        )
    elif kind == LOAD:
        frame = TransportFrame(
            kind=kind,
            frame_id=reader.uvarint(),
            max_attempts=reader.uvarint(),
            ack_timeout_s=reader.f64(),
            body=reader.bytes_(),
        )
    elif kind == FAIL:
        frame = TransportFrame(
            kind=kind, frame_id=reader.uvarint(), attempt=reader.uvarint()
        )
    elif kind == CORRUPT:
        frame = TransportFrame(
            kind=kind,
            frame_id=reader.uvarint(),
            attempt=reader.uvarint(),
            caught_by=reader.u8(),
        )
        if frame.caught_by not in (CAUGHT_BY_CODEC, CAUGHT_BY_CHECKSUM):
            raise WireFormatError(f"invalid CORRUPT classification {frame.caught_by}")
    elif kind in (SHUTDOWN, RESET):
        frame = TransportFrame(kind=kind)
    else:
        raise WireFormatError(f"unknown transport frame kind 0x{kind:02x}")
    reader.expect_eof()
    return frame
