"""Asyncio TCP transport: real localhost processes speaking real DIMW frames.

This backend implements the :class:`~repro.distributed.transport.base.Transport`
contract over real sockets:

* the driving process hosts the data center's asyncio server on a loop thread;
* every participating station runs as a real OS worker process
  (:mod:`repro.distributed.transport.worker`) that performs the actual wire
  work — stream reassembly, checksum verification, real ``DIMW`` decodes,
  acks, duplicate suppression, and worker-side stop-and-wait uplink
  transmission with real timeouts;
* between them sits a byte-level **fault proxy**: workers connect to the proxy,
  the proxy connects to the center, and every ``DATA`` frame crossing it is
  subjected to the same seeded :class:`~repro.distributed.faults.FaultInjector`
  decisions the simulator draws — drop, duplicate (a pristine trailing copy),
  payload corruption with the original checksum preserved, and real sleep
  delays for jitter/reordering.  Control frames pass through untouched,
  mirroring the simulator's "acks are link-layer fictions" rule, and only
  ``DATA`` bodies enter the byte ledger.

Ledger parity with :class:`~repro.distributed.network.SimulatedNetwork` is the
design anchor: fault decisions key on the same ``(seed, frame id, attempt)``
tuples, frame ids restart per round transport exactly like the simulator's
per-instance counter (a ``RESET`` control frame clears worker dedup state
between rounds), sender-side counters (frames sent, bytes, retransmits, drops)
are charged at the proxy, and receiver-side counters travel back as
``ACK``/``CORRUPT`` control frames.  A quiescence barrier holds each phase
open until every emitted frame copy is accounted for, so ``frame_stats()`` is
complete — not racing in-flight duplicates — the moment a phase returns.
For fault-free plans the delivered wire bytes, match results and frame counts
are identical across backends (the conformance suite pins this); wall-clock
timings are measured, not modeled, so transcripts and durations differ.

Station *matching* stays in the driving process behind the executor seam:
after a phase's socket traffic resolves, delivered payloads are replayed into
the in-process :class:`~repro.distributed.node.Node` receivers on the caller
thread, in send order, which keeps results deterministic and byte-identical
to the simulator.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import tempfile
import threading
import time
import zlib
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Sequence

import repro
from repro.distributed.events import RoundTimeoutError, TranscriptEntry
from repro.distributed.faults import FaultInjector, FaultPlan, resolve_fault_plan
from repro.distributed.messages import Message
from repro.distributed.network import NetworkConfig
from repro.distributed.node import Node
from repro.distributed.transport import protocol
from repro.distributed.transport.base import FrameStats, PhaseOutcome, Transport
from repro.wire.errors import UnsupportedWireTypeError, WireFormatError
from repro.wire.stream import FrameStreamDecoder, encode_stream_frame

#: Socket read chunk size for the center server and the proxy pumps.
READ_CHUNK = 65536

#: Default stop-and-wait ack timeout on localhost, in seconds.  Deliberately
#: generous (~3 orders of magnitude above a localhost round trip): a spurious
#: retransmission would desynchronize the ledger from the simulator's, so the
#: timeout must only ever fire for frames the proxy really discarded.
DEFAULT_ACK_TIMEOUT_S = 0.5


def deadline_multiplier() -> float:
    """Global stretch factor for every TCP-transport deadline.

    Slow or heavily loaded machines (CI under coverage, sanitizers) set
    ``REPRO_TCP_DEADLINE_MULT`` to trade wall time for flake resistance;
    values below 1 are clamped so the knob can only ever loosen deadlines.
    """
    try:
        value = float(os.environ.get("REPRO_TCP_DEADLINE_MULT", "1.0"))
    except ValueError:
        return 1.0
    return max(1.0, value)


class _FrameWriter:
    """A stream-framed writer with serialized drains (one per connection)."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._lock = asyncio.Lock()

    async def send(self, frame_payload: bytes) -> None:
        async with self._lock:
            self._writer.write(encode_stream_frame(frame_payload))
            await self._writer.drain()

    def close(self) -> None:
        try:
            self._writer.close()
        except RuntimeError:  # pragma: no cover - loop already closing
            pass


class _TcpTransfer:
    """One logical message's reliable delivery state (the sim's ``_Transfer``)."""

    __slots__ = (
        "frame_id",
        "message",
        "receiver",
        "direction",
        "payload",
        "size",
        "crc",
        "station",
        "attempts",
        "delivered",
        "failed",
        "resolved_at",
        "resolved",
    )

    def __init__(
        self, frame_id: int, message: Message, receiver: Node | None, direction: str
    ) -> None:
        self.frame_id = frame_id
        self.message = message
        self.receiver = receiver
        self.direction = direction
        try:
            payload: bytes | None = message.to_wire()
        except UnsupportedWireTypeError:
            payload = None
        self.payload = payload
        self.size = len(payload) if payload is not None else message.size_bytes()
        self.crc = zlib.crc32(payload) if payload is not None else 0
        self.station = message.recipient if direction == "downlink" else message.sender
        self.attempts = 0
        self.delivered = False
        self.failed = False
        self.resolved_at = 0.0
        self.resolved = asyncio.Event()


class TcpTransportManager:
    """Long-lived TCP infrastructure shared by a deployment's round transports.

    Owns the asyncio loop thread, the center server, the fault-proxy server
    and the station worker processes (spawned lazily on first participation,
    reused across rounds).  One round's traffic is carried by one
    :class:`TcpTransport` obtained from :meth:`create_transport`.
    """

    def __init__(
        self,
        config: NetworkConfig | None = None,
        *,
        decode_backend: str = "auto",
        connect_timeout_s: float = 20.0,
        host: str = "127.0.0.1",
    ) -> None:
        self.config = config or NetworkConfig()
        self._decode_backend = decode_backend
        self._connect_timeout_s = float(connect_timeout_s)
        self._host = host
        self._links: dict[str, _FrameWriter] = {}
        self._hello_events: dict[str, asyncio.Event] = {}
        self._procs: dict[str, subprocess.Popen] = {}
        self._stderr_paths: dict[str, str] = {}
        self._stderr_files: dict[str, object] = {}
        self._active: "TcpTransport | None" = None
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="repro-tcp-transport", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._start_servers(), self.loop)
        self.center_port, self.proxy_port = future.result(timeout=30.0)
        self._closed = False

    # -- transports --------------------------------------------------------------

    def create_transport(
        self,
        fault_plan: FaultPlan | str | None = None,
        seed: int = 0,
        decode_backend: str = "auto",
        allow_partial: bool = False,
        ack_timeout_s: float | None = None,
        delay_scale: float = 1.0,
    ) -> "TcpTransport":
        """A fresh per-round transport carried by this manager's sockets."""
        return TcpTransport(
            self,
            fault_plan=fault_plan,
            seed=seed,
            decode_backend=decode_backend,
            allow_partial=allow_partial,
            ack_timeout_s=ack_timeout_s,
            delay_scale=delay_scale,
        )

    # -- servers (loop thread) ---------------------------------------------------

    async def _start_servers(self) -> tuple[int, int]:
        self._center_server = await asyncio.start_server(
            self._serve_center, self._host, 0
        )
        self._proxy_server = await asyncio.start_server(
            self._serve_proxy, self._host, 0
        )
        center_port = self._center_server.sockets[0].getsockname()[1]
        proxy_port = self._proxy_server.sockets[0].getsockname()[1]
        return center_port, proxy_port

    async def _serve_center(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One proxied worker connection, as seen by the data center."""
        station: str | None = None
        out = _FrameWriter(writer)
        decoder = FrameStreamDecoder()
        try:
            while True:
                chunk = await reader.read(READ_CHUNK)
                if not chunk:
                    break
                for stream_frame in decoder.feed(chunk):
                    frame = protocol.parse_frame(stream_frame.payload)
                    if frame.kind == protocol.HELLO:
                        station = frame.station_id
                        self._links[station] = out
                        self._hello_events.setdefault(station, asyncio.Event()).set()
                        continue
                    active = self._active
                    if active is not None and station is not None:
                        await active._on_center_frame(station, frame)
        except (ConnectionError, WireFormatError):
            pass
        finally:
            if station is not None and self._links.get(station) is out:
                del self._links[station]
                self._hello_events.pop(station, None)
                active = self._active
                if active is not None:
                    active._on_link_lost(station)
            out.close()

    async def _serve_proxy(
        self, worker_reader: asyncio.StreamReader, worker_writer: asyncio.StreamWriter
    ) -> None:
        """One worker connection: splice it to the center through the fault pipe."""
        try:
            center_reader, center_writer = await asyncio.open_connection(
                self._host, self.center_port
            )
        except OSError:  # pragma: no cover - center server gone mid-shutdown
            worker_writer.close()
            return
        uplink_out = _FrameWriter(center_writer)
        downlink_out = _FrameWriter(worker_writer)
        await asyncio.gather(
            self._pump(worker_reader, uplink_out),
            self._pump(center_reader, downlink_out),
        )

    async def _pump(self, reader: asyncio.StreamReader, out: _FrameWriter) -> None:
        """Forward one direction of a proxied connection, frame by frame.

        ``DATA`` frames route through the active transport's fault pipeline;
        everything else (acks, loads, corruption notices, lifecycle frames)
        passes through untouched.  Delays are applied inline, so frames on one
        connection never overtake each other — exactly the simulator's
        per-link FIFO ordering.
        """
        decoder = FrameStreamDecoder()
        try:
            while True:
                chunk = await reader.read(READ_CHUNK)
                if not chunk:
                    return
                for stream_frame in decoder.feed(chunk):
                    frame = protocol.parse_frame(stream_frame.payload)
                    active = self._active
                    if frame.kind == protocol.DATA and active is not None:
                        await active._proxy_data(frame, out)
                    else:
                        await out.send(stream_frame.payload)
        except (ConnectionError, WireFormatError):
            return
        finally:
            out.close()

    # -- workers -----------------------------------------------------------------

    def _spawn_worker(self, station_id: str) -> None:
        stderr_file = tempfile.NamedTemporaryFile(
            mode="w+b",
            prefix=f"repro-tcp-worker-{zlib.crc32(station_id.encode()):08x}-",
            suffix=".log",
            delete=False,
        )
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
        self._procs[station_id] = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.distributed.transport.worker",
                "--host",
                self._host,
                "--port",
                str(self.proxy_port),
                "--station-id",
                station_id,
                "--decode-backend",
                self._decode_backend,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=stderr_file,
        )
        self._stderr_paths[station_id] = stderr_file.name
        self._stderr_files[station_id] = stderr_file

    async def ensure_stations(self, station_ids: "set[str] | Sequence[str]") -> None:
        """Spawn any missing station workers and wait for their HELLOs."""
        wanted = sorted(set(station_ids))
        for station_id in wanted:
            if station_id not in self._links and station_id not in self._procs:
                self._spawn_worker(station_id)
        timeout = self._connect_timeout_s * deadline_multiplier()
        for station_id in wanted:
            if station_id in self._links:
                continue
            event = self._hello_events.setdefault(station_id, asyncio.Event())
            try:
                await asyncio.wait_for(event.wait(), timeout)
            except asyncio.TimeoutError:
                raise RuntimeError(
                    f"station worker {station_id!r} did not register within "
                    f"{timeout:.1f}s\n{self.diagnostics()}"
                ) from None

    async def set_active(self, transport: "TcpTransport") -> None:
        """Route proxy/center traffic to ``transport`` and reset frame dedup.

        Frame ids restart per round transport (matching the simulator's
        per-instance counter the fault seeding depends on), so every already
        connected worker must clear its duplicate-suppression set before the
        new round's first ``DATA`` frame — the ``RESET`` is ordered ahead of
        them by TCP itself.
        """
        if self._active is transport:
            return
        self._active = transport
        for link in list(self._links.values()):
            try:
                await link.send(protocol.encode_reset())
            except ConnectionError:  # pragma: no cover - worker died mid-reset
                pass

    def link(self, station_id: str) -> _FrameWriter | None:
        """The center-side writer of a station's connection, if alive."""
        return self._links.get(station_id)

    def diagnostics(self) -> str:
        """Per-worker process state and stderr tails, for failure messages."""
        lines = []
        for station_id, proc in sorted(self._procs.items()):
            returncode = proc.poll()
            state = "running" if returncode is None else f"exited {returncode}"
            tail = ""
            path = self._stderr_paths.get(station_id)
            if path:
                try:
                    with open(path, "rb") as handle:
                        handle.seek(0, os.SEEK_END)
                        handle.seek(max(0, handle.tell() - 2048))
                        tail = handle.read().decode("utf-8", "replace").strip()
                except OSError:
                    tail = "<stderr unavailable>"
            lines.append(f"worker {station_id}: {state}")
            if tail:
                lines.append(f"  stderr: {tail}")
        return "\n".join(lines) or "no workers spawned"

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop workers, close servers and join the loop thread (idempotent)."""
        if self._closed:
            return
        self._closed = True

        async def _close() -> None:
            for link in list(self._links.values()):
                try:
                    await link.send(protocol.encode_shutdown())
                except ConnectionError:
                    pass
            self._center_server.close()
            self._proxy_server.close()

        try:
            asyncio.run_coroutine_threadsafe(_close(), self.loop).result(timeout=10.0)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - hung worker
                proc.kill()
                proc.wait(timeout=5.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10.0)
        for handle in self._stderr_files.values():
            try:
                handle.close()
            except OSError:  # pragma: no cover
                pass
        for path in self._stderr_paths.values():
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover
                pass
        self._procs.clear()
        self._links.clear()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not self._closed:
                self.shutdown()
        except Exception:
            pass


class TcpTransport(Transport):
    """One round's reliable transport over the manager's real sockets.

    Mirrors :class:`~repro.distributed.network.SimulatedNetwork` verb for verb
    and counter for counter; see the module docstring for the parity rules.
    """

    def __init__(
        self,
        manager: TcpTransportManager,
        *,
        fault_plan: FaultPlan | str | None = None,
        seed: int = 0,
        decode_backend: str = "auto",
        allow_partial: bool = False,
        ack_timeout_s: float | None = None,
        delay_scale: float = 1.0,
    ) -> None:
        self._manager = manager
        self._config = manager.config
        self._plan = resolve_fault_plan(fault_plan)
        self._injector = FaultInjector(self._plan, seed)
        self._decode_backend = decode_backend
        self._allow_partial = bool(allow_partial)
        self._delay_scale = float(delay_scale)
        mult = deadline_multiplier()
        base_timeout = (
            ack_timeout_s
            if ack_timeout_s is not None
            else (self._config.retransmit_timeout_s or DEFAULT_ACK_TIMEOUT_S)
        )
        self._ack_timeout = float(base_timeout) * mult
        self._transfers: dict[int, _TcpTransfer] = {}
        self._next_frame_id = 0
        self._message_count = 0
        self._downlink_bytes = 0
        self._uplink_bytes = 0
        self._downlink_durations: list[float] = []
        self._uplink_durations: list[float] = []
        self._log: list[Message] = []
        self._transcript: list[TranscriptEntry] = []
        self._delivered: dict[tuple[str, str], list[bytes]] = {}
        self._frames_sent = 0
        self._frames_delivered = 0
        self._frames_dropped = 0
        self._frames_corrupt = 0
        self._frames_duplicate = 0
        self._retransmit_count = 0
        self._timeout_count = 0
        self._corrupt_caught_by_codec = 0
        self._corrupt_caught_by_checksum = 0
        self._payload_bytes_sent = 0
        self._payload_bytes_delivered = 0
        self._outstanding = 0
        self._quiet: asyncio.Event | None = None
        self._degraded = False
        self._phase_started = time.monotonic()

    # -- configuration and accounting (the SimulatedNetwork surface) -------------

    @property
    def config(self) -> NetworkConfig:
        """The link/reliability parameters in use."""
        return self._config

    @property
    def fault_plan(self) -> FaultPlan:
        """The fault plan the proxy draws decisions from."""
        return self._plan

    @property
    def seed(self) -> int:
        """The network seed all fault decisions derive from."""
        return self._injector.seed

    @property
    def downlink_bytes(self) -> int:
        """Bytes put on center→station links (retransmits and duplicates included)."""
        return self._downlink_bytes

    @property
    def uplink_bytes(self) -> int:
        """Bytes put on the station→center ingress (retransmits included)."""
        return self._uplink_bytes

    @property
    def message_count(self) -> int:
        """Logical messages offered to the transport."""
        return self._message_count

    @property
    def message_log(self) -> Sequence:
        """Delivered messages, in delivery (send) order."""
        return tuple(self._log)

    def copy_message_log(self) -> list[Message]:
        """A snapshot copy of the delivery log."""
        return list(self._log)

    @property
    def transcript(self) -> tuple[TranscriptEntry, ...]:
        """The event transcript (wall-clock times — not comparable to sim's)."""
        return tuple(self._transcript)

    def delivered_payloads(self, direction: str) -> dict[str, tuple[bytes, ...]]:
        """Unique delivered frame bytes per station for ``direction``."""
        return {
            station: tuple(payloads)
            for (recorded_direction, station), payloads in self._delivered.items()
            if recorded_direction == direction
        }

    def frame_stats(self) -> FrameStats:
        """Snapshot of the frame-level ledger."""
        return FrameStats(
            frames_sent=self._frames_sent,
            frames_delivered=self._frames_delivered,
            frames_dropped=self._frames_dropped,
            frames_corrupt=self._frames_corrupt,
            frames_duplicate=self._frames_duplicate,
            retransmit_count=self._retransmit_count,
            timeout_count=self._timeout_count,
            corrupt_caught_by_codec=self._corrupt_caught_by_codec,
            corrupt_caught_by_checksum=self._corrupt_caught_by_checksum,
            payload_bytes_sent=self._payload_bytes_sent,
            payload_bytes_delivered=self._payload_bytes_delivered,
        )

    def transmission_time_s(self) -> float:
        """Aggregate measured wall time, aggregated like the simulator's.

        Downlink phases run on parallel per-station links (max over phases);
        uplink phases serialize at the center's ingress (sum).
        """
        downlink = max(self._downlink_durations) if self._downlink_durations else 0.0
        return downlink + sum(self._uplink_durations)

    # -- sending (caller thread) -------------------------------------------------

    def broadcast(
        self, sends: Sequence[tuple[Message, Node | None]]
    ) -> PhaseOutcome:
        """Run one downlink phase: the center's messages to many stations."""
        return self._run_phase(list(sends), "downlink")

    def gather(self, sends: Sequence[tuple[Message, Node | None]]) -> PhaseOutcome:
        """Run one uplink phase: station reports into the center's ingress."""
        return self._run_phase(list(sends), "uplink")

    def _phase_deadline(self, transfer_count: int) -> float:
        per_transfer = self._config.max_attempts * (self._ack_timeout + 0.25)
        return (per_transfer + 15.0 + 0.05 * transfer_count) * deadline_multiplier()

    def _run_phase(
        self, sends: list[tuple[Message, Node | None]], direction: str
    ) -> PhaseOutcome:
        deadline = self._phase_deadline(len(sends))
        future = asyncio.run_coroutine_threadsafe(
            self._phase(sends, direction), self._manager.loop
        )
        try:
            transfers = future.result(timeout=deadline)
        except FutureTimeoutError:
            future.cancel()
            raise RuntimeError(
                f"TCP {direction} phase did not converge within {deadline:.1f}s "
                f"({len(sends)} transfer(s), fault plan {self._plan.name!r}, "
                f"seed {self._injector.seed})\n{self._manager.diagnostics()}"
            ) from None

        # The socket traffic decided *whether* each transfer delivered; the
        # delivered payloads are now replayed into the in-process receivers on
        # the caller thread, in send order — deterministic, and byte-identical
        # to what the worker decoded (corrupt copies were never acked).
        for transfer in transfers:
            if not transfer.delivered:
                continue
            if transfer.receiver is not None:
                if transfer.payload is not None:
                    delivered = transfer.receiver.receive_wire(
                        transfer.payload, backend=self._decode_backend
                    )
                else:
                    transfer.receiver.receive(transfer.message)
                    delivered = transfer.message
            else:
                delivered = transfer.message
            if transfer.payload is not None:
                self._delivered.setdefault(
                    (direction, transfer.station), []
                ).append(transfer.payload)
            self._log.append(delivered)

        failed = [t for t in transfers if not t.delivered]
        if failed and not self._allow_partial:
            labels = tuple(
                f"{t.message.sender}->{t.message.recipient}" for t in failed
            )
            raise RoundTimeoutError(
                f"{len(failed)} {direction} transfer(s) exhausted "
                f"{self._config.max_attempts} attempts under fault plan "
                f"{self._plan.name!r} (seed {self._injector.seed}): "
                + ", ".join(labels),
                failed_transfers=labels,
                delivered_ids=tuple(t.station for t in transfers if t.delivered),
            )
        duration = max((t.resolved_at for t in transfers), default=0.0)
        if direction == "downlink":
            self._downlink_durations.append(duration)
        else:
            self._uplink_durations.append(duration)
        return PhaseOutcome(
            direction=direction,
            duration_s=duration,
            delivered_ids=tuple(t.station for t in transfers if t.delivered),
            failed_ids=tuple(t.station for t in transfers if not t.delivered),
        )

    # -- the phase engine (loop thread) ------------------------------------------

    def _elapsed(self) -> float:
        return time.monotonic() - self._phase_started

    def _record(
        self,
        event: str,
        transfer: _TcpTransfer | None,
        attempt: int | None = None,
    ) -> None:
        time_s = self._elapsed()
        if transfer is None:
            entry = TranscriptEntry(
                sequence=len(self._transcript),
                time_s=time_s,
                event=event,
                frame_id=-1,
                attempt=attempt or 0,
                sender="-",
                recipient="-",
                kind="-",
                size_bytes=0,
            )
        else:
            entry = TranscriptEntry(
                sequence=len(self._transcript),
                time_s=time_s,
                event=event,
                frame_id=transfer.frame_id,
                attempt=attempt if attempt is not None else transfer.attempts,
                sender=transfer.message.sender,
                recipient=transfer.message.recipient,
                kind=transfer.message.kind.value,
                size_bytes=transfer.size,
            )
        self._transcript.append(entry)

    def _signal_quiet(self) -> None:
        if self._quiet is not None:
            self._quiet.set()

    def _charge(self, direction: str, size: int) -> None:
        self._frames_sent += 1
        self._payload_bytes_sent += size
        if direction == "downlink":
            self._downlink_bytes += size
        else:
            self._uplink_bytes += size

    async def _phase(
        self, sends: list[tuple[Message, Node | None]], direction: str
    ) -> list[_TcpTransfer]:
        await self._manager.set_active(self)
        self._phase_started = time.monotonic()
        self._quiet = asyncio.Event()
        transfers: list[_TcpTransfer] = []
        for message, receiver in sends:
            transfer = _TcpTransfer(self._next_frame_id, message, receiver, direction)
            self._next_frame_id += 1
            self._message_count += 1
            transfers.append(transfer)
            self._transfers[transfer.frame_id] = transfer
        self._transcript.append(
            TranscriptEntry(
                sequence=len(self._transcript),
                time_s=0.0,
                event="phase",
                frame_id=-1,
                attempt=len(transfers),
                sender="-",
                recipient="-",
                kind=direction,
                size_bytes=0,
            )
        )
        stations_needed = {t.station for t in transfers if t.payload is not None}
        await self._manager.ensure_stations(stations_needed)
        tasks = []
        for transfer in transfers:
            if transfer.payload is None:
                # Messages outside the wire vocabulary cannot cross a socket;
                # they resolve through the in-memory fallback with the same
                # per-attempt fault accounting the simulator applies.
                self._local_fallback(transfer)
            elif direction == "downlink":
                tasks.append(asyncio.ensure_future(self._drive_downlink(transfer)))
            else:
                tasks.append(asyncio.ensure_future(self._drive_uplink(transfer)))
        if tasks:
            await asyncio.gather(*tasks)
        # Quiescence barrier: every emitted frame copy (including trailing
        # proxy duplicates) must be accounted before the phase returns, so the
        # ledger snapshot the caller reads is complete, like the simulator's
        # fully drained event heap.
        grace = time.monotonic() + 10.0 * deadline_multiplier()
        while self._outstanding > 0 and not self._degraded:
            self._quiet.clear()
            remaining = grace - time.monotonic()
            if remaining <= 0:  # pragma: no cover - only on pathological stalls
                break
            try:
                await asyncio.wait_for(self._quiet.wait(), remaining)
            except asyncio.TimeoutError:  # pragma: no cover
                break
        return transfers

    async def _drive_downlink(self, transfer: _TcpTransfer) -> None:
        """Center-side stop-and-wait: send, await ack, retransmit on timeout."""
        for attempt in range(1, self._config.max_attempts + 1):
            if transfer.delivered or transfer.failed:
                break
            transfer.attempts = attempt
            link = self._manager.link(transfer.station)
            if link is None:
                break
            self._outstanding += 1
            frame = protocol.encode_data(
                transfer.frame_id,
                attempt,
                protocol.DOWNLINK,
                transfer.payload,
                crc=transfer.crc,
            )
            try:
                await link.send(frame)
            except ConnectionError:
                self._outstanding -= 1
                self._signal_quiet()
                break
            try:
                await asyncio.wait_for(transfer.resolved.wait(), self._ack_timeout)
                if transfer.delivered or transfer.failed:
                    break
                transfer.resolved.clear()
            except asyncio.TimeoutError:
                continue
        if not transfer.delivered and not transfer.failed:
            transfer.failed = True
            transfer.resolved_at = self._elapsed()
            self._timeout_count += 1
            self._record("timeout", transfer)

    async def _drive_uplink(self, transfer: _TcpTransfer) -> None:
        """Hand the body to the station worker; it transmits under stop-and-wait."""
        transfer.attempts = 1
        link = self._manager.link(transfer.station)
        failed_to_load = link is None
        if link is not None:
            load = protocol.encode_load(
                transfer.frame_id,
                self._config.max_attempts,
                self._ack_timeout,
                transfer.payload,
            )
            try:
                await link.send(load)
            except ConnectionError:
                failed_to_load = True
        if not failed_to_load:
            deadline = (
                self._config.max_attempts * (self._ack_timeout + 0.25) + 10.0
            ) * deadline_multiplier()
            try:
                await asyncio.wait_for(transfer.resolved.wait(), deadline)
            except asyncio.TimeoutError:  # pragma: no cover - hung/dead worker
                pass
        if not transfer.delivered and not transfer.failed:
            transfer.failed = True
            transfer.resolved_at = self._elapsed()
            self._timeout_count += 1
            self._record("timeout", transfer)

    def _local_fallback(self, transfer: _TcpTransfer) -> None:
        """In-memory delivery for non-wire payloads, with sim-parity accounting."""
        for attempt in range(1, self._config.max_attempts + 1):
            transfer.attempts = attempt
            if attempt > 1:
                self._retransmit_count += 1
                self._record("retransmit", transfer, attempt=attempt)
            self._charge(transfer.direction, transfer.size)
            self._record("send", transfer, attempt=attempt)
            faults = self._injector.frame_faults(transfer.frame_id, attempt)
            # An opaque payload has no bytes to flip: corruption degrades to
            # loss, exactly like the simulator's non-wire path.
            if faults.drop or faults.corrupt:
                self._frames_dropped += 1
                self._record("drop", transfer, attempt=attempt)
                continue
            transfer.delivered = True
            transfer.resolved_at = self._elapsed()
            self._frames_delivered += 1
            self._payload_bytes_delivered += transfer.size
            self._record("deliver", transfer, attempt=attempt)
            if faults.duplicate:
                self._charge(transfer.direction, transfer.size)
                self._record("dup-send", transfer, attempt=attempt)
                self._frames_duplicate += 1
                self._record("duplicate", transfer, attempt=attempt)
            return
        transfer.failed = True
        transfer.resolved_at = self._elapsed()
        self._timeout_count += 1
        self._record("timeout", transfer)

    # -- the byte-level fault proxy (loop thread, called from the pumps) ---------

    async def _proxy_data(
        self, frame: "protocol.TransportFrame", out: _FrameWriter
    ) -> None:
        """Apply the seeded fault pipeline to one real ``DATA`` frame.

        Decisions key on the exact ``(seed, frame id, attempt)`` tuples the
        simulator draws, so a given ``(net_seed, profile)`` produces the same
        drop/duplicate/corrupt pattern on both backends.  Corruption flips
        bytes in the body while passing the original checksum through, so the
        receiver detects it exactly like the simulator's link-layer check.
        """
        transfer = self._transfers.get(frame.frame_id)
        direction = "downlink" if frame.direction == protocol.DOWNLINK else "uplink"
        size = len(frame.body)
        self._charge(direction, size)
        if frame.attempt > 1:
            self._retransmit_count += 1
            self._record("retransmit", transfer, attempt=frame.attempt)
        self._record("send", transfer, attempt=frame.attempt)
        faults = self._injector.frame_faults(frame.frame_id, frame.attempt)
        in_blackout = False
        if transfer is not None:
            window = self._injector.blackout_window(transfer.station)
            if window is not None:
                # Approximation of the simulator's virtual-time blackout: the
                # window is measured on the wall clock from the phase start.
                elapsed = self._elapsed()
                scale = self._delay_scale
                in_blackout = window[0] * scale <= elapsed < window[1] * scale
        if faults.drop or in_blackout:
            self._frames_dropped += 1
            self._record(
                "blackout" if in_blackout else "drop", transfer, attempt=frame.attempt
            )
            if direction == "downlink":
                # The center already counted this copy as outstanding when it
                # sent it; a discarded frame will never produce a response.
                self._outstanding -= 1
                self._signal_quiet()
            return
        # Outstanding copies are counted *before* any forwarding await, so the
        # quiescence barrier can never observe a momentarily-zero counter
        # while a copy (or its trailing duplicate) is still being emitted.
        if direction == "uplink":
            self._outstanding += 1
        if faults.duplicate:
            self._outstanding += 1
        body = frame.body
        if faults.corrupt:
            body = self._injector.corrupt_bytes(body, frame.frame_id, frame.attempt)
        delay = (faults.jitter_s + faults.reorder_delay_s) * self._delay_scale
        if delay > 0.0:
            await asyncio.sleep(delay)
        await out.send(
            protocol.encode_data(
                frame.frame_id, frame.attempt, frame.direction, body, crc=frame.crc
            )
        )
        if faults.duplicate:
            # A network-generated duplicate: a pristine second copy trailing
            # the original (even when the original copy was corrupted).
            self._charge(direction, size)
            self._record("dup-send", transfer, attempt=frame.attempt)
            await out.send(
                protocol.encode_data(
                    frame.frame_id,
                    frame.attempt,
                    frame.direction,
                    frame.body,
                    crc=frame.crc,
                )
            )

    # -- center-side frame handling (loop thread) --------------------------------

    async def _on_center_frame(
        self, station: str, frame: "protocol.TransportFrame"
    ) -> None:
        transfer = self._transfers.get(frame.frame_id)
        if frame.kind == protocol.ACK:
            # A worker's response to one downlink DATA copy.
            self._outstanding -= 1
            if transfer is not None:
                if frame.duplicate or transfer.delivered or transfer.failed:
                    self._frames_duplicate += 1
                    self._record("duplicate", transfer, attempt=frame.attempt)
                    if transfer.delivered or transfer.failed:
                        transfer.resolved.set()
                else:
                    transfer.delivered = True
                    transfer.resolved_at = self._elapsed()
                    self._frames_delivered += 1
                    self._payload_bytes_delivered += transfer.size
                    self._record("deliver", transfer, attempt=frame.attempt)
                    transfer.resolved.set()
        elif frame.kind == protocol.CORRUPT:
            # A worker rejected one downlink DATA copy; the driver's timer
            # handles retransmission, exactly like the simulator's.
            self._outstanding -= 1
            self._frames_corrupt += 1
            if frame.caught_by == protocol.CAUGHT_BY_CODEC:
                self._corrupt_caught_by_codec += 1
            else:
                self._corrupt_caught_by_checksum += 1
            self._record("corrupt", transfer, attempt=frame.attempt)
        elif frame.kind == protocol.DATA:
            # One uplink DATA copy arriving at the center's ingress.
            self._outstanding -= 1
            if transfer is not None:
                await self._on_uplink_data(station, transfer, frame)
        elif frame.kind == protocol.FAIL:
            if transfer is not None and not transfer.delivered and not transfer.failed:
                transfer.failed = True
                transfer.resolved_at = self._elapsed()
                self._timeout_count += 1
                self._record("timeout", transfer, attempt=frame.attempt)
                transfer.resolved.set()
        self._signal_quiet()

    async def _on_uplink_data(
        self, station: str, transfer: _TcpTransfer, frame: "protocol.TransportFrame"
    ) -> None:
        link = self._manager.link(station)
        if transfer.delivered or transfer.failed:
            # A duplicate emission or a spurious retransmission landing after
            # the transfer was resolved.
            self._frames_duplicate += 1
            self._record("duplicate", transfer, attempt=frame.attempt)
            if link is not None:
                await link.send(
                    protocol.encode_ack(frame.frame_id, frame.attempt, duplicate=True)
                )
            return
        if zlib.crc32(frame.body) != frame.crc:
            # Real corruption detection at the ingress: the center still runs
            # the actual codec decode on the corrupt bytes to classify the
            # catch, then stays silent so the worker's timer retransmits.
            try:
                Message.from_wire(frame.body, backend=self._decode_backend)
            except WireFormatError:
                self._corrupt_caught_by_codec += 1
            else:
                self._corrupt_caught_by_checksum += 1
            self._frames_corrupt += 1
            self._record("corrupt", transfer, attempt=frame.attempt)
            return
        transfer.delivered = True
        transfer.resolved_at = self._elapsed()
        self._frames_delivered += 1
        self._payload_bytes_delivered += transfer.size
        self._record("deliver", transfer, attempt=frame.attempt)
        if link is not None:
            await link.send(
                protocol.encode_ack(frame.frame_id, frame.attempt, duplicate=False)
            )
        transfer.resolved.set()

    def _on_link_lost(self, station: str) -> None:
        """A worker connection died mid-round: fail its pending transfers."""
        self._degraded = True
        for transfer in self._transfers.values():
            if transfer.station == station and not transfer.delivered and not transfer.failed:
                transfer.failed = True
                transfer.resolved_at = self._elapsed()
                self._timeout_count += 1
                self._record("timeout", transfer)
                transfer.resolved.set()
        self._signal_quiet()
