"""Pluggable transport backends for the distributed matching system.

Two implementations of :class:`~repro.distributed.transport.base.Transport`
exist today:

* ``"sim"`` — :class:`~repro.distributed.network.SimulatedNetwork`, the
  deterministic event-driven simulator on a virtual clock (PR 3);
* ``"tcp"`` — :class:`~repro.distributed.transport.tcp.TcpTransportManager`'s
  per-round transports, where stations run as real localhost worker processes
  speaking the same length-prefixed ``DIMW`` frames over asyncio TCP sockets,
  with real stop-and-wait timeouts and a byte-level fault proxy.

Select a backend with ``TransportSpec(transport="sim" | "tcp")`` on a
:class:`~repro.cluster.spec.ClusterSpec`; every facade verb works unchanged
on both.  This package's ``__init__`` imports only the interface module so
the simulator can depend on :mod:`.base` without a cycle — the TCP stack
loads lazily on first use.
"""

from repro.core.config import TRANSPORT_CHOICES
from repro.distributed.transport.base import FrameStats, PhaseOutcome, Transport

#: Transport backends a deployment may select (re-exported from core config).
TRANSPORT_BACKENDS = TRANSPORT_CHOICES

__all__ = [
    "FrameStats",
    "PhaseOutcome",
    "Transport",
    "TRANSPORT_BACKENDS",
]
