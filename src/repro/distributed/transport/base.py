"""The ``Transport`` interface every network backend implements.

PR 3's :class:`~repro.distributed.network.SimulatedNetwork` and the asyncio
TCP backend (:mod:`repro.distributed.transport.tcp`) are two implementations
of one contract: move each logical
:class:`~repro.distributed.messages.Message` of a phase to its receiver as
encoded ``DIMW`` wire bytes, reliably (stop-and-wait ack/retransmit within
:attr:`~repro.distributed.network.NetworkConfig.max_attempts` attempts),
exactly once (duplicate suppression at the receiver), and account every frame
in a :class:`FrameStats` ledger plus a replayable transcript.  The
:class:`~repro.cluster.facade.Cluster` round engine drives whichever backend
:class:`~repro.cluster.spec.TransportSpec` selected; results and protocol
byte accounting are backend-invariant for fault-free plans (the conformance
suite under ``tests/transport/`` pins this), while latencies are virtual on
the simulator and measured wall clock over real sockets.

This module is dependency-light on purpose: it defines only the interface and
the shared value types (:class:`FrameStats`, :class:`PhaseOutcome`), so both
backends — and the simulator module itself — can import it without cycles.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.events import TranscriptEntry
    from repro.distributed.faults import FaultPlan
    from repro.distributed.messages import Message
    from repro.distributed.network import NetworkConfig
    from repro.distributed.node import Node


@dataclass(frozen=True)
class FrameStats:
    """Frame-level ledger of one network's activity.

    Conservation invariant (asserted by the property suite): every emitted
    frame is eventually delivered, suppressed as a duplicate/late arrival,
    dropped, or rejected as corrupt — ``frames_in_flight`` is zero once a
    phase completes.
    """

    frames_sent: int = 0
    frames_delivered: int = 0
    frames_dropped: int = 0
    frames_corrupt: int = 0
    frames_duplicate: int = 0
    retransmit_count: int = 0
    timeout_count: int = 0
    corrupt_caught_by_codec: int = 0
    corrupt_caught_by_checksum: int = 0
    payload_bytes_sent: int = 0
    payload_bytes_delivered: int = 0

    @property
    def frames_in_flight(self) -> int:
        """Emitted frames not yet accounted for (zero between phases)."""
        return (
            self.frames_sent
            - self.frames_delivered
            - self.frames_duplicate
            - self.frames_dropped
            - self.frames_corrupt
        )

    @property
    def goodput_fraction(self) -> float:
        """Unique delivered payload bytes over total bytes put on the wire."""
        if self.payload_bytes_sent == 0:
            return 1.0
        return self.payload_bytes_delivered / self.payload_bytes_sent


@dataclass(frozen=True)
class PhaseOutcome:
    """Result of one broadcast/gather phase."""

    direction: str
    duration_s: float
    #: Station endpoints whose transfer completed, in send order.
    delivered_ids: tuple[str, ...]
    #: Station endpoints whose transfer timed out (``allow_partial`` only).
    failed_ids: tuple[str, ...]


class Transport(abc.ABC):
    """Reliable, exactly-once, frame-accounted message transport for one round.

    One instance carries one round's traffic: phases run sequentially
    (downlink broadcast, station matching, uplink gather), all byte/frame
    accounting accumulates on the instance, and the transcript records every
    frame event.  A transfer that exhausts its retransmission budget either
    raises :class:`~repro.distributed.events.RoundTimeoutError` or — when the
    backend allows partial phases — surfaces through
    :attr:`PhaseOutcome.failed_ids`.
    """

    # -- sending -----------------------------------------------------------------

    @abc.abstractmethod
    def broadcast(
        self, sends: Sequence[tuple["Message", "Node | None"]]
    ) -> PhaseOutcome:
        """Run one downlink phase: the center's messages to many stations."""

    @abc.abstractmethod
    def gather(self, sends: Sequence[tuple["Message", "Node | None"]]) -> PhaseOutcome:
        """Run one uplink phase: station reports into the center's ingress."""

    def send_downlink(self, message: "Message", receiver: "Node | None" = None) -> float:
        """Deliver one center→station message; return its phase duration."""
        return self.broadcast([(message, receiver)]).duration_s

    def send_uplink(self, message: "Message", receiver: "Node | None" = None) -> float:
        """Deliver one station→center message; return its phase duration."""
        return self.gather([(message, receiver)]).duration_s

    # -- configuration -----------------------------------------------------------

    @property
    @abc.abstractmethod
    def config(self) -> "NetworkConfig":
        """The link/reliability parameters in use."""

    @property
    @abc.abstractmethod
    def fault_plan(self) -> "FaultPlan":
        """The fault plan frames are exposed to."""

    @property
    @abc.abstractmethod
    def seed(self) -> int:
        """The network seed all fault decisions derive from."""

    # -- accounting --------------------------------------------------------------

    @property
    @abc.abstractmethod
    def downlink_bytes(self) -> int:
        """Bytes put on center→station links (retransmits and duplicates included)."""

    @property
    @abc.abstractmethod
    def uplink_bytes(self) -> int:
        """Bytes put on the station→center ingress (retransmits included)."""

    @property
    @abc.abstractmethod
    def message_count(self) -> int:
        """Logical messages offered to the transport."""

    @abc.abstractmethod
    def frame_stats(self) -> FrameStats:
        """Snapshot of the frame-level ledger."""

    @abc.abstractmethod
    def transmission_time_s(self) -> float:
        """Aggregate transmission time (virtual on the simulator, wall on TCP)."""

    @property
    @abc.abstractmethod
    def transcript(self) -> tuple["TranscriptEntry", ...]:
        """The event transcript recorded so far."""

    def transcript_bytes(self) -> bytes:
        """Canonical byte rendering of the transcript (the replay token)."""
        from repro.distributed.events import transcript_to_bytes

        return transcript_to_bytes(list(self.transcript))

    @abc.abstractmethod
    def delivered_payloads(self, direction: str) -> dict[str, tuple[bytes, ...]]:
        """Unique delivered frame bytes per station endpoint for ``direction``.

        The conformance battery compares these across backends: for a
        fault-free plan the exact wire bytes each station's report (uplink) or
        artifact copy (downlink) delivered must be identical on the simulator
        and over real sockets.  Messages outside the wire vocabulary (the
        simulator's in-memory fallback path) contribute no entry.
        """

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release any resources the round's transport holds (idempotent)."""
