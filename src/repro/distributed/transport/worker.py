"""Station worker process of the TCP transport.

Each participating base station runs as one of these real OS processes
(``python -m repro.distributed.transport.worker``), connected to the data
center's listening socket (through the fault proxy) over localhost TCP.  The
worker is the station's *network agent*: it speaks the transport's framed
``DIMW`` protocol for real —

* downlink ``DATA`` frames are reassembled from the byte stream, checksummed,
  decoded through the real wire codec
  (:meth:`repro.distributed.messages.Message.from_wire`), acknowledged, and
  duplicate-suppressed by frame id (exactly-once delivery);
* corrupt frames (checksum mismatch, or a codec rejection) are reported with
  a ``CORRUPT`` control frame and *not* acknowledged, so the center's
  stop-and-wait retransmits them;
* ``LOAD`` commands hand the worker an uplink body (the station's encoded
  match report) to transmit under its own stop-and-wait ack/retransmit loop
  with real ``asyncio`` timeouts, failing over to a ``FAIL`` control frame
  when :attr:`~repro.distributed.network.NetworkConfig.max_attempts` is
  exhausted.

The matching computation itself stays in the driving process (the executor
seam of PR 2 already parallelizes it); what this process proves is the
*protocol*: the same frames, checksums, retransmissions and duplicate
suppression the simulator models, exercised over real sockets.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import zlib

from repro.distributed.transport import protocol
from repro.wire.errors import WireFormatError
from repro.wire.stream import FrameStreamDecoder, encode_stream_frame

#: Socket read chunk size; small enough to exercise reassembly, large enough
#: to stay off the syscall hot path.
READ_CHUNK = 65536


class StationWorker:
    """One station's transport agent: connect, identify, speak the protocol."""

    def __init__(self, host: str, port: int, station_id: str, decode_backend: str) -> None:
        self._host = host
        self._port = port
        self._station_id = station_id
        self._decode_backend = decode_backend
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._write_lock = asyncio.Lock()
        #: Downlink frame ids already delivered (exactly-once suppression).
        self._delivered: set[int] = set()
        #: Uplink frame id -> ack event for in-flight LOAD transmissions.
        self._acks: dict[int, asyncio.Event] = {}
        self._transmit_tasks: set[asyncio.Task] = set()
        self._shutdown = False

    async def run(self) -> int:
        """Connect and serve until SHUTDOWN or the center hangs up."""
        self._reader, self._writer = await asyncio.open_connection(self._host, self._port)
        await self._send(protocol.encode_hello(self._station_id))
        decoder = FrameStreamDecoder()
        while not self._shutdown:
            data = await self._reader.read(READ_CHUNK)
            if not data:
                break
            for stream_frame in decoder.feed(data):
                if not stream_frame.crc_ok:
                    raise WireFormatError(
                        f"station {self._station_id}: stream frame failed the "
                        "framing CRC — the stream is desynchronized"
                    )
                await self._handle(protocol.parse_frame(stream_frame.payload))
        for task in self._transmit_tasks:
            task.cancel()
        if self._writer is not None:
            self._writer.close()
        return 0

    async def _send(self, frame_payload: bytes) -> None:
        assert self._writer is not None
        async with self._write_lock:
            self._writer.write(encode_stream_frame(frame_payload))
            await self._writer.drain()

    async def _handle(self, frame: protocol.TransportFrame) -> None:
        if frame.kind == protocol.DATA:
            await self._on_data(frame)
        elif frame.kind == protocol.ACK:
            event = self._acks.get(frame.frame_id)
            if event is not None:
                event.set()
        elif frame.kind == protocol.LOAD:
            task = asyncio.get_running_loop().create_task(self._transmit(frame))
            self._transmit_tasks.add(task)
            task.add_done_callback(self._transmit_tasks.discard)
        elif frame.kind == protocol.RESET:
            # A new round transport restarted the frame-id namespace.
            self._delivered.clear()
        elif frame.kind == protocol.SHUTDOWN:
            self._shutdown = True

    async def _on_data(self, frame: protocol.TransportFrame) -> None:
        """Receive one downlink protocol frame: dedup, verify, decode, ack."""
        # Imported here so a worker that only ever relays control traffic
        # (connection probes) never pays the protocol-stack import.
        from repro.distributed.messages import Message

        if frame.frame_id in self._delivered:
            # Exactly-once: the frame already delivered (a network duplicate
            # or a spurious retransmission).  Re-ack so the sender stops.
            await self._send(protocol.encode_ack(frame.frame_id, frame.attempt, duplicate=True))
            return
        checksum_ok = zlib.crc32(frame.body) == frame.crc
        try:
            message = Message.from_wire(frame.body, backend=self._decode_backend)
        except WireFormatError:
            message = None
        if not checksum_ok or message is None:
            caught = protocol.CAUGHT_BY_CODEC if message is None else protocol.CAUGHT_BY_CHECKSUM
            await self._send(protocol.encode_corrupt(frame.frame_id, frame.attempt, caught))
            return
        self._delivered.add(frame.frame_id)
        await self._send(protocol.encode_ack(frame.frame_id, frame.attempt, duplicate=False))

    async def _transmit(self, load: protocol.TransportFrame) -> None:
        """Stop-and-wait uplink transmission of one LOADed report body."""
        event = asyncio.Event()
        self._acks[load.frame_id] = event
        crc = zlib.crc32(load.body)
        try:
            for attempt in range(1, load.max_attempts + 1):
                await self._send(
                    protocol.encode_data(
                        load.frame_id, attempt, protocol.UPLINK, load.body, crc=crc
                    )
                )
                try:
                    await asyncio.wait_for(event.wait(), load.ack_timeout_s)
                    return
                except asyncio.TimeoutError:
                    continue
            await self._send(protocol.encode_fail(load.frame_id, load.max_attempts))
        finally:
            self._acks.pop(load.frame_id, None)


def main(argv: list[str] | None = None) -> int:
    """Entry point: ``python -m repro.distributed.transport.worker``."""
    parser = argparse.ArgumentParser(prog="repro-transport-worker")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--station-id", required=True)
    parser.add_argument("--decode-backend", default="auto")
    args = parser.parse_args(argv)
    worker = StationWorker(args.host, args.port, args.station_id, args.decode_backend)
    try:
        return asyncio.run(worker.run())
    except (ConnectionError, WireFormatError) as error:
        print(f"station worker {args.station_id}: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised as a real subprocess
    sys.exit(main())
