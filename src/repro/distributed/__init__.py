"""Simulated distributed mobile environment.

Models the paper's deployment: one data-center node and ``l`` base-station nodes
connected by bandwidth-limited links.  The simulator drives any
:class:`~repro.core.protocol.MatchingProtocol` through its encode → station-match →
aggregate phases while accounting for communication volume, storage and time, which
is exactly what Figure 4 reports.
"""

from repro.distributed.basestation import BaseStationNode
from repro.distributed.datacenter import DataCenterNode
from repro.distributed.executor import (
    ShardedStationRunner,
    ShardOutcome,
    merge_shard_outcomes,
    partition_round_robin,
)
from repro.distributed.messages import Message, MessageKind
from repro.distributed.metrics import CostReport
from repro.distributed.network import NetworkConfig, SimulatedNetwork
from repro.distributed.node import Node
from repro.distributed.simulator import DistributedSimulation, SimulationOutcome

__all__ = [
    "BaseStationNode",
    "DataCenterNode",
    "ShardedStationRunner",
    "ShardOutcome",
    "merge_shard_outcomes",
    "partition_round_robin",
    "Message",
    "MessageKind",
    "CostReport",
    "NetworkConfig",
    "SimulatedNetwork",
    "Node",
    "DistributedSimulation",
    "SimulationOutcome",
]
