"""Simulated distributed mobile environment.

Models the paper's deployment: one data-center node and ``l`` base-station nodes
connected by bandwidth-limited links.  The simulator drives any
:class:`~repro.core.protocol.MatchingProtocol` through its encode → station-match →
aggregate phases over a deterministic event-driven transport with seeded fault
injection (:mod:`repro.distributed.network`, :mod:`repro.distributed.faults`),
while accounting for communication volume, storage and time — exactly what
Figure 4 reports, plus the reliability metrics (retransmits, goodput) the
fault model adds.
"""

from repro.distributed.basestation import BaseStationNode
from repro.distributed.datacenter import DataCenterNode
from repro.distributed.events import (
    EventLoop,
    RoundTimeoutError,
    TranscriptEntry,
    TransportError,
    transcript_to_bytes,
)
from repro.distributed.executor import (
    ShardedStationRunner,
    ShardOutcome,
    merge_shard_outcomes,
    partition_round_robin,
)
from repro.distributed.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultPlan,
    resolve_fault_plan,
)
from repro.distributed.messages import Message, MessageKind
from repro.distributed.metrics import CostReport
from repro.distributed.network import (
    FrameStats,
    NetworkConfig,
    PhaseOutcome,
    SimulatedNetwork,
)
from repro.distributed.node import Node
from repro.distributed.simulator import (
    DistributedSimulation,
    RoundOptions,
    SimulationOutcome,
)

__all__ = [
    "BaseStationNode",
    "DataCenterNode",
    "EventLoop",
    "RoundTimeoutError",
    "TranscriptEntry",
    "TransportError",
    "transcript_to_bytes",
    "ShardedStationRunner",
    "ShardOutcome",
    "merge_shard_outcomes",
    "partition_round_robin",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultPlan",
    "resolve_fault_plan",
    "Message",
    "MessageKind",
    "CostReport",
    "FrameStats",
    "NetworkConfig",
    "PhaseOutcome",
    "SimulatedNetwork",
    "Node",
    "DistributedSimulation",
    "RoundOptions",
    "SimulationOutcome",
]
