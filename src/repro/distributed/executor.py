"""Sharded execution of the per-station matching phase.

The paper models base stations as running their matching phase concurrently
(one thread per station), so the phase's wall time is the maximum over
stations.  This module makes that model executable: stations are partitioned
into *shards*, each shard runs the protocol's ``station_match`` for its
stations, and shards execute through a pluggable backend —

* ``"serial"`` — in-process loop, one shard per station by default (exactly
  the historical behavior, and the per-station timing the latency model uses);
* ``"thread"`` — :class:`concurrent.futures.ThreadPoolExecutor`; effective
  when matching releases the GIL (NumPy row-tests) or stations are I/O-bound;
* ``"process"`` — :class:`concurrent.futures.ProcessPoolExecutor`; true
  parallelism for CPU-bound pure-Python matching.  Protocols, pattern sets and
  artifacts are pickled to the workers, so matcher caches are rebuilt there.

Results are returned keyed by station id and are *identical* across executors
(matching is deterministic and aggregation happens in station order at the
caller), which the integration suite asserts; only the timing differs.  The
per-shard elapsed times feed the existing max-over-stations latency model: a
shard is the unit that runs sequentially, so the simulated station phase costs
``max`` over shard times.
"""

from __future__ import annotations

import os
import time
import zlib
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Sequence

from repro.core.config import EXECUTOR_CHOICES
from repro.core.protocol import MatchingProtocol
from repro.timeseries.pattern import PatternSet

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.distributed.basestation import BaseStationNode


@dataclass(frozen=True)
class ShardOutcome:
    """Reports and timing of one shard's sequential run."""

    shard_index: int
    #: ``(station_id, reports)`` in shard order — tuples, so process workers
    #: return a compact picklable structure.
    reports_by_station: tuple[tuple[str, tuple[object, ...]], ...]
    elapsed_s: float


def partition_round_robin(count: int, shard_count: int) -> list[list[int]]:
    """Distribute ``count`` item indices over ``shard_count`` shards round-robin.

    Round-robin keeps shards balanced when station sizes correlate with
    position (e.g. central stations first); order within a shard follows the
    original order, so results stay deterministic.
    """
    if shard_count <= 0:
        raise ValueError(f"shard_count must be positive, got {shard_count}")
    shards = [list(range(start, count, shard_count)) for start in range(shard_count)]
    return [shard for shard in shards if shard]


def _match_shard(
    shard_index: int,
    protocol: MatchingProtocol,
    stations: Sequence[tuple[str, PatternSet]],
    artifact: object | None,
) -> ShardOutcome:
    """Run one shard sequentially; module-level so process pools can pickle it."""
    start = time.perf_counter()
    results = tuple(
        (station_id, tuple(protocol.station_match(station_id, patterns, artifact)))
        for station_id, patterns in stations
    )
    return ShardOutcome(
        shard_index=shard_index,
        reports_by_station=results,
        elapsed_s=time.perf_counter() - start,
    )


@dataclass(frozen=True)
class SharedArtifactToken:
    """Handle to a wire-encoded artifact parked in shared memory.

    The process executor ships this small token instead of pickling the
    artifact into every shard submission: workers attach the named segment and
    decode the canonical bytes in place (the wire layer reads straight from
    the shared buffer).  ``size``/``crc`` identify the content, so a worker's
    decode cache keyed on them survives across rounds even though the segment
    name changes.
    """

    name: str
    size: int
    crc: int
    backend: str


def _artifact_bit_backend(artifact: object) -> str:
    """Bit-storage backend the decoded worker copy should use."""
    wbf = getattr(artifact, "wbf", None)
    backend = getattr(wbf if wbf is not None else artifact, "backend_name", None)
    return backend if isinstance(backend, str) else "auto"


def export_shared_artifact(
    artifact: object,
) -> "tuple[SharedArtifactToken, shared_memory.SharedMemory] | None":
    """Encode ``artifact`` once and park the bytes in a shared-memory segment.

    Returns ``None`` when the artifact has no wire encoding (raw in-memory
    baselines) — the caller then falls back to pickling it per shard.  The
    caller owns the returned segment and must ``close()`` + ``unlink()`` it
    once every worker has finished the round.
    """
    from repro import wire

    try:
        data = wire.encode_cached(artifact)
    except wire.UnsupportedWireTypeError:
        return None
    segment = shared_memory.SharedMemory(create=True, size=max(1, len(data)))
    segment.buf[: len(data)] = data
    token = SharedArtifactToken(
        name=segment.name,
        size=len(data),
        crc=zlib.crc32(data),
        backend=_artifact_bit_backend(artifact),
    )
    return token, segment


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without enrolling it in the resource tracker.

    The exporting parent owns the segment's lifecycle (it unlinks after the
    round); a worker that merely attaches must not register it, or the
    worker's resource tracker warns about "leaked" segments at shutdown that
    the parent already removed.  Python 3.13 exposes ``track=False`` for
    exactly this; earlier versions need the registration undone by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13: attach registers unconditionally.  Depending on fork
        # timing that lands in the parent's tracker (where a later unregister
        # would wrongly drop the parent's own entry) or spawns a fresh tracker
        # in the worker (which then warns about "leaks" the parent already
        # unlinked) — so suppress the registration call itself.  Workers are
        # single-threaded, making the swap race-free in practice.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *_args: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


#: Worker-side single-entry decode cache: ``(size, crc, backend) -> artifact``.
#: One entry suffices — a round broadcasts one artifact, and consecutive
#: rounds of a sweep reuse the entry when the artifact did not change.
_shared_artifact_cache: "tuple[tuple[int, int, str], object] | None" = None


def _load_shared_artifact(token: SharedArtifactToken) -> object:
    """Attach the segment and decode the artifact (cached per worker process)."""
    global _shared_artifact_cache
    from repro import wire

    key = (token.size, token.crc, token.backend)
    cached = _shared_artifact_cache
    if cached is not None and cached[0] == key:
        return cached[1]
    segment = _attach_untracked(token.name)
    view = segment.buf[: token.size]
    try:
        if zlib.crc32(view) != token.crc:
            raise ValueError(
                f"shared artifact segment {token.name!r} does not match its "
                "token checksum"
            )
        # The wire layer reads straight from the shared buffer; decoded
        # objects materialize their own bytes, so nothing references the
        # segment once decode returns.
        artifact = wire.decode(view, backend=token.backend)
    finally:
        del view
        try:
            segment.close()
        except BufferError:  # pragma: no cover - decode error still in flight
            # The raising frame's traceback pins buffer views; the mapping is
            # released when the exception is collected (or at process exit).
            pass
    _shared_artifact_cache = (key, artifact)
    return artifact


def _match_shard_shared(
    shard_index: int,
    protocol: MatchingProtocol,
    stations: Sequence[tuple[str, PatternSet]],
    token: SharedArtifactToken,
) -> ShardOutcome:
    """Worker entry point for the shared-memory artifact handoff."""
    return _match_shard(shard_index, protocol, stations, _load_shared_artifact(token))


class ShardedStationRunner:
    """Partitions stations into shards and runs them on the selected executor.

    Pool executors are created lazily on first use and **reused across
    :meth:`run` calls** (a Figure-4 sweep drives many rounds; re-forking a
    process pool per round would eat the parallelism gains), so call
    :meth:`close` — or use the runner as a context manager — when done.  An
    unclosed pool is still reclaimed at interpreter exit by
    ``concurrent.futures``' atexit handling.
    """

    def __init__(
        self,
        executor: str = "serial",
        shard_count: int = 0,
        max_workers: int | None = None,
    ) -> None:
        if executor not in EXECUTOR_CHOICES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_CHOICES}, got {executor!r}"
            )
        if shard_count < 0:
            raise ValueError(f"shard_count must be >= 0 (0 = auto), got {shard_count}")
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self._executor = executor
        self._shard_count = shard_count
        self._max_workers = max_workers
        self._pool: Executor | None = None

    @property
    def executor(self) -> str:
        """The configured executor backend name."""
        return self._executor

    def resolve_worker_count(self) -> int:
        """Number of concurrent workers the pool executors will use."""
        if self._max_workers is not None:
            return self._max_workers
        return os.cpu_count() or 1

    def resolve_shard_count(self, station_count: int) -> int:
        """Effective shard count for ``station_count`` stations.

        ``shard_count == 0`` (auto) means one shard per station under the
        serial executor — reproducing the paper's one-thread-per-station
        latency model exactly — and one shard per worker under the pool
        executors, so each worker receives one contiguous stream of work.
        """
        if station_count == 0:
            return 0
        if self._shard_count:
            return min(self._shard_count, station_count)
        if self._executor == "serial":
            return station_count
        return min(self.resolve_worker_count(), station_count)

    def run(
        self,
        protocol: MatchingProtocol,
        stations: "Sequence[BaseStationNode]",
        artifact: object | None,
    ) -> list[ShardOutcome]:
        """Match every station and return one outcome per (non-empty) shard."""
        shard_count = self.resolve_shard_count(len(stations))
        if shard_count == 0:
            return []
        payload = [(station.node_id, station.patterns) for station in stations]
        shards = [
            [payload[index] for index in indices]
            for indices in partition_round_robin(len(payload), shard_count)
        ]
        if self._executor == "serial":
            return [
                _match_shard(index, protocol, shard, artifact)
                for index, shard in enumerate(shards)
            ]
        pool = self._ensure_pool()
        exported = (
            export_shared_artifact(artifact)
            if self._executor == "process" and artifact is not None
            else None
        )
        if exported is not None:
            # Shared-memory handoff: one encode of the artifact total, a tiny
            # token per shard, instead of pickling the artifact per submission.
            token, segment = exported
            try:
                futures = [
                    pool.submit(_match_shard_shared, index, protocol, shard, token)
                    for index, shard in enumerate(shards)
                ]
                outcomes = [future.result() for future in futures]
            finally:
                segment.close()
                segment.unlink()
            return outcomes
        futures = [
            pool.submit(_match_shard, index, protocol, shard, artifact)
            for index, shard in enumerate(shards)
        ]
        # Collect in submission order: determinism comes from station ids,
        # not completion order.
        return [future.result() for future in futures]

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            workers = self.resolve_worker_count()
            if self._executor == "thread":
                self._pool = ThreadPoolExecutor(max_workers=workers)
            else:
                self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def close(self) -> None:
        """Shut down the pool (no-op for the serial executor or before first use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedStationRunner":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()


def merge_shard_outcomes(outcomes: Sequence[ShardOutcome]) -> dict[str, list[object]]:
    """Flatten shard outcomes into ``station_id -> reports`` for aggregation."""
    merged: dict[str, list[object]] = {}
    for outcome in outcomes:
        for station_id, reports in outcome.reports_by_station:
            merged[station_id] = list(reports)
    return merged
