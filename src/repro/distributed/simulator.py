"""Round-based simulation of one distributed matching round.

The simulation drives any :class:`~repro.core.protocol.MatchingProtocol` through the
three phases of Figure 2 over a :class:`~repro.datagen.workload.DistributedDataset`:

1. the data center encodes the query batch and broadcasts the artifact to every
   base station that stores at least one pattern (downlink traffic);
2. every station runs its matching phase — stations are modelled as running in
   parallel (the paper uses one thread per station), so the phase's wall time is the
   maximum over stations;
3. stations upload their reports (uplink traffic, serialized at the center's
   ingress) and the data center aggregates them into the ranked top-K.

The outcome bundles the ranked results with a :class:`~repro.distributed.metrics.CostReport`
containing exactly the quantities Figure 4 plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.protocol import MatchingProtocol, RankedResults
from repro.datagen.workload import DistributedDataset
from repro.distributed.basestation import BaseStationNode
from repro.distributed.datacenter import DataCenterNode
from repro.distributed.messages import Message, MessageKind
from repro.distributed.metrics import CostReport
from repro.distributed.network import NetworkConfig, SimulatedNetwork
from repro.utils.serialization import estimate_size_bytes
from repro.timeseries.query import QueryPattern


@dataclass(frozen=True)
class SimulationOutcome:
    """The result of running one protocol over one query batch."""

    method: str
    results: RankedResults
    costs: CostReport

    @property
    def retrieved_user_ids(self) -> list[str]:
        """Retrieved user ids in rank order."""
        return self.results.user_ids()


class DistributedSimulation:
    """Drives matching protocols over a distributed dataset with cost accounting."""

    def __init__(
        self,
        dataset: DistributedDataset,
        network_config: NetworkConfig | None = None,
    ) -> None:
        self._dataset = dataset
        self._network_config = network_config or NetworkConfig()
        self._center = DataCenterNode()
        self._stations: list[BaseStationNode] = []
        for station_id in dataset.station_ids:
            patterns = dataset.local_patterns_at(station_id)
            if len(patterns) == 0:
                continue
            self._stations.append(BaseStationNode(station_id, patterns))

    @property
    def dataset(self) -> DistributedDataset:
        """The dataset the simulation runs over."""
        return self._dataset

    @property
    def stations(self) -> list[BaseStationNode]:
        """The base-station nodes that store at least one pattern."""
        return list(self._stations)

    @property
    def center(self) -> DataCenterNode:
        """The data-center node."""
        return self._center

    def run(
        self,
        protocol: MatchingProtocol,
        queries: Sequence[QueryPattern],
        k: int | None = None,
    ) -> SimulationOutcome:
        """Execute one full matching round and return results plus costs."""
        network = SimulatedNetwork(self._network_config)

        # Phase 1: encoding at the data center, then dissemination to stations.
        encode_start = time.perf_counter()
        artifact = self._center.encode(protocol, queries)
        encode_time = time.perf_counter() - encode_start

        if artifact is not None:
            for station in self._stations:
                message = Message(
                    sender=self._center.node_id,
                    recipient=station.node_id,
                    kind=MessageKind.FILTER_DISSEMINATION,
                    payload=artifact,
                )
                network.send_downlink(message)
                station.receive(message)
        else:
            # The naive method sends only a tiny control trigger to each station.
            for station in self._stations:
                message = Message(
                    sender=self._center.node_id,
                    recipient=station.node_id,
                    kind=MessageKind.CONTROL,
                    payload=None,
                )
                network.send_downlink(message)
                station.receive(message)

        # Phase 2: per-station matching (stations run in parallel; take the max).
        station_times: list[float] = []
        all_reports: list[object] = []
        uplink_payload_bytes = 0
        for station in self._stations:
            station_start = time.perf_counter()
            reports = station.run_matching(protocol, artifact)
            station_times.append(time.perf_counter() - station_start)
            message = Message(
                sender=station.node_id,
                recipient=self._center.node_id,
                kind=MessageKind.MATCH_REPORT,
                payload=reports,
            )
            network.send_uplink(message)
            self._center.receive(message)
            uplink_payload_bytes += message.payload_bytes()
            all_reports.extend(reports)

        # Phase 3: aggregation and ranking at the data center.
        aggregate_start = time.perf_counter()
        results = self._center.aggregate(protocol, all_reports, k)
        aggregate_time = time.perf_counter() - aggregate_start

        artifact_bytes = estimate_size_bytes(artifact) if artifact is not None else 0
        costs = CostReport(
            method=protocol.name,
            downlink_bytes=network.downlink_bytes,
            uplink_bytes=network.uplink_bytes,
            message_count=network.message_count,
            # The center keeps the artifact it built plus everything it received;
            # every station keeps the artifact it received on top of its raw data.
            storage_center_bytes=artifact_bytes + uplink_payload_bytes,
            storage_station_bytes=artifact_bytes * len(self._stations),
            encode_time_s=encode_time,
            station_time_s=max(station_times) if station_times else 0.0,
            aggregate_time_s=aggregate_time,
            transmission_time_s=network.transmission_time_s(),
            report_count=len(all_reports),
        )
        return SimulationOutcome(method=protocol.name, results=results, costs=costs)
