"""Round-based simulation of one distributed matching round (legacy surface).

The round engine itself lives behind the :class:`repro.cluster.Cluster`
facade (:mod:`repro.cluster.facade`), which drives any
:class:`~repro.core.protocol.MatchingProtocol` through the three phases of
Figure 2 over a :class:`~repro.datagen.workload.DistributedDataset` on the
deterministic event-driven transport.  This module keeps the pieces of the
pre-facade public surface that remain first-class:

* :class:`SimulationOutcome` — the typed result of one full wire round;
* :class:`RoundOptions` — the single bag of per-round overrides (station
  subset, transport seed, ranking cutoff) accepted by both
  :meth:`Cluster.round` and the legacy shim below;
* :class:`DistributedSimulation` — a thin **deprecated** shim over the facade
  kept so existing call sites continue to work unchanged; it emits one
  :class:`DeprecationWarning` at construction and delegates every round to
  the same engine the facade drives.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro import wire
from repro.core.protocol import MatchingProtocol, RankedResults
from repro.distributed.basestation import BaseStationNode
from repro.distributed.datacenter import DataCenterNode
from repro.distributed.events import TranscriptEntry, transcript_to_bytes
from repro.distributed.faults import FaultPlan
from repro.distributed.network import NetworkConfig
from repro.timeseries.query import QueryPattern
from repro.utils.serialization import estimate_size_bytes

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.cluster.facade import Cluster
    from repro.datagen.workload import DistributedDataset
    from repro.distributed.metrics import CostReport


@dataclass(frozen=True)
class SimulationOutcome:
    """The result of running one protocol over one query batch."""

    method: str
    results: RankedResults
    costs: "CostReport"
    #: The round's deterministic network transcript — identical seeds and
    #: fault profile reproduce these entries byte-for-byte (see
    #: :func:`repro.distributed.events.transcript_to_bytes`).
    transcript: tuple[TranscriptEntry, ...] = field(default=())

    @property
    def retrieved_user_ids(self) -> list[str]:
        """Retrieved user ids in rank order."""
        return self.results.user_ids()

    def transcript_bytes(self) -> bytes:
        """Canonical byte rendering of the round's event transcript."""
        return transcript_to_bytes(self.transcript)


@dataclass(frozen=True)
class RoundOptions:
    """Per-round overrides, collapsed into one typed value.

    ``station_ids`` restricts the round to a subset of stations (how a
    multi-round driver models churn: an absent station neither receives the
    artifact nor uploads a report); ``net_seed`` overrides the transport seed
    for this round only, so a workload driver can derive one deterministic
    seed per round from a single scenario seed; ``k`` is the ranking cutoff
    (``None`` = the protocol's natural cutoff).  Accepted by both
    :meth:`repro.cluster.Cluster.round` and the deprecated
    :meth:`DistributedSimulation.run` shim.
    """

    station_ids: tuple[str, ...] | None = None
    net_seed: int | None = None
    k: int | None = None

    def __post_init__(self) -> None:
        if self.station_ids is not None:
            object.__setattr__(
                self,
                "station_ids",
                tuple(str(station_id) for station_id in self.station_ids),
            )
        if self.net_seed is not None and (
            not isinstance(self.net_seed, int) or isinstance(self.net_seed, bool)
        ):
            raise ValueError(f"net_seed must be an integer or None, got {self.net_seed!r}")
        if self.k is not None and (not isinstance(self.k, int) or self.k < 0):
            raise ValueError(f"k must be a non-negative integer or None, got {self.k!r}")

    @classmethod
    def merge(
        cls,
        options: "RoundOptions | None",
        station_ids: Sequence[str] | None = None,
        net_seed: int | None = None,
        k: int | None = None,
    ) -> "RoundOptions":
        """Fold legacy keyword overrides and an options bag into one value.

        Passing both an ``options`` object and any loose keyword is an error —
        the caller must pick one spelling per round.
        """
        loose = station_ids is not None or net_seed is not None or k is not None
        if options is not None:
            if loose:
                raise ValueError(
                    "pass per-round overrides either as RoundOptions or as "
                    "keyword arguments, not both"
                )
            return options
        if not loose:
            return cls()
        return cls(
            station_ids=tuple(station_ids) if station_ids is not None else None,
            net_seed=net_seed,
            k=k,
        )


def _artifact_size_bytes(artifact: object | None) -> int:
    """Actual encoded size of a distributed artifact (estimate as fallback)."""
    if artifact is None:
        return 0
    try:
        return wire.encoded_size(artifact)
    except wire.UnsupportedWireTypeError:
        return estimate_size_bytes(artifact)


class DistributedSimulation:
    """Deprecated constructor-style driver, kept as a shim over the facade.

    .. deprecated::
        Construct a :class:`repro.cluster.Cluster` instead (adopt an existing
        dataset with ``Cluster(spec, dataset=...)``) and call
        :meth:`~repro.cluster.Cluster.round` /
        :meth:`~repro.cluster.Cluster.drive`.  This shim emits one
        :class:`DeprecationWarning` at construction and forwards every call to
        the same engine the facade drives, so behavior (results, byte counts,
        transcripts) is identical.

    ``executor`` / ``shard_count`` / ``max_workers`` select how the station
    phase runs (see :mod:`repro.distributed.executor`).  ``fault_plan`` (a
    :class:`~repro.distributed.faults.FaultPlan` or profile name) and
    ``net_seed`` select what the simulated transport may do to the round's
    frames.  When any of these is ``None`` the simulation defers to the
    protocol's configuration (``DIMatchingConfig.executor`` /
    ``fault_profile`` / ``net_seed``) and falls back to fault-free serial
    execution for protocols without one.  ``allow_partial=True`` lets a round
    survive transfers that exhaust their retransmission budget.
    """

    def __init__(
        self,
        dataset: "DistributedDataset",
        network_config: NetworkConfig | None = None,
        executor: str | None = None,
        shard_count: int | None = None,
        max_workers: int | None = None,
        fault_plan: FaultPlan | str | None = None,
        net_seed: int | None = None,
        allow_partial: bool = False,
    ) -> None:
        warnings.warn(
            "DistributedSimulation is deprecated; drive rounds through the "
            "repro.cluster.Cluster facade instead (Cluster(spec, dataset=...)"
            ".drive(...) is the drop-in equivalent of run(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.cluster.facade import Cluster

        self._cluster = Cluster.adopt(
            dataset,
            network_config=network_config,
            executor=executor,
            shard_count=shard_count,
            max_workers=max_workers,
            fault_plan=fault_plan,
            net_seed=net_seed,
            allow_partial=allow_partial,
        )

    @property
    def cluster(self) -> "Cluster":
        """The facade instance this shim delegates to."""
        return self._cluster

    @property
    def dataset(self) -> "DistributedDataset":
        """The dataset the simulation runs over."""
        return self._cluster.dataset

    @property
    def stations(self) -> list[BaseStationNode]:
        """The base-station nodes that store at least one pattern."""
        return self._cluster.stations

    @property
    def center(self) -> DataCenterNode:
        """The data-center node."""
        return self._cluster.center

    def close(self) -> None:
        """Shut down any worker pools the simulation spun up."""
        self._cluster.close()

    def __enter__(self) -> "DistributedSimulation":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def run(
        self,
        protocol: MatchingProtocol,
        queries: Sequence[QueryPattern],
        k: int | None = None,
        *,
        options: RoundOptions | None = None,
        station_ids: Sequence[str] | None = None,
        net_seed: int | None = None,
    ) -> SimulationOutcome:
        """Execute one full matching round and return results plus costs.

        Per-round overrides travel either as one :class:`RoundOptions` or as
        the legacy ``station_ids`` / ``net_seed`` keywords (not both).  Raises
        :class:`~repro.distributed.events.RoundTimeoutError` when a transfer
        cannot be delivered within the retransmission budget and the
        simulation was not constructed with ``allow_partial=True``.
        """
        merged = RoundOptions.merge(options, station_ids=station_ids, net_seed=net_seed, k=k)
        return self._cluster.drive(protocol, queries, options=merged)
