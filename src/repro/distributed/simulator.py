"""Round-based simulation of one distributed matching round.

The simulation drives any :class:`~repro.core.protocol.MatchingProtocol` through the
three phases of Figure 2 over a :class:`~repro.datagen.workload.DistributedDataset`:

1. the data center encodes the query batch and broadcasts the artifact to every
   base station that stores at least one pattern (downlink traffic);
2. every station runs its matching phase — stations are partitioned into shards
   executed through a pluggable backend (:mod:`repro.distributed.executor`):
   in-process serial (default, one shard per station as in the paper's
   one-thread-per-station model), thread pool, or process pool.  The phase's
   simulated wall time is the maximum over shards;
3. stations upload their reports (uplink traffic, serialized at the center's
   ingress) and the data center aggregates them into the ranked top-K.

All traffic moves as *encoded wire bytes* through the deterministic
event-driven transport (:mod:`repro.distributed.network`): messages are
framed, exposed to the round's seeded fault plan (drop / duplicate / corrupt /
reorder / jitter / stragglers / blackouts), delivered reliably by the data
center's ack/retransmit policy, and decoded by the receiving node — so a
corrupted frame exercises the real
:class:`~repro.wire.errors.WireFormatError` path and a surviving round is
always exactly correct.  The matching phase runs against the artifact the
stations actually decoded off the wire; the uplink aggregation consumes the
report objects the center decoded.  Byte counts are the real encoded lengths
(the estimate model only backs up payloads outside the codec's vocabulary),
and under the all-zero fault plan the outcome is byte-for-byte identical to
the legacy accounting model.  The outcome bundles the ranked results with a
:class:`~repro.distributed.metrics.CostReport` (including retransmit /
goodput counters) and the round's replayable event transcript.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro import wire
from repro.core.protocol import MatchingProtocol, RankedResults
from repro.distributed.basestation import BaseStationNode
from repro.distributed.datacenter import DataCenterNode
from repro.distributed.events import TranscriptEntry, transcript_to_bytes
from repro.distributed.executor import ShardedStationRunner, merge_shard_outcomes
from repro.distributed.faults import FaultPlan, resolve_fault_plan
from repro.distributed.messages import Message, MessageKind
from repro.distributed.metrics import CostReport
from repro.distributed.network import NetworkConfig, SimulatedNetwork
from repro.timeseries.query import QueryPattern
from repro.utils.serialization import estimate_size_bytes

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.datagen.workload import DistributedDataset


@dataclass(frozen=True)
class SimulationOutcome:
    """The result of running one protocol over one query batch."""

    method: str
    results: RankedResults
    costs: CostReport
    #: The round's deterministic network transcript — identical seeds and
    #: fault profile reproduce these entries byte-for-byte (see
    #: :func:`repro.distributed.events.transcript_to_bytes`).
    transcript: tuple[TranscriptEntry, ...] = field(default=())

    @property
    def retrieved_user_ids(self) -> list[str]:
        """Retrieved user ids in rank order."""
        return self.results.user_ids()

    def transcript_bytes(self) -> bytes:
        """Canonical byte rendering of the round's event transcript."""
        return transcript_to_bytes(self.transcript)


def _artifact_size_bytes(artifact: object | None) -> int:
    """Actual encoded size of a distributed artifact (estimate as fallback)."""
    if artifact is None:
        return 0
    try:
        return wire.encoded_size(artifact)
    except wire.UnsupportedWireTypeError:
        return estimate_size_bytes(artifact)


class DistributedSimulation:
    """Drives matching protocols over a distributed dataset with cost accounting.

    ``executor`` / ``shard_count`` / ``max_workers`` select how the station
    phase runs (see :mod:`repro.distributed.executor`).  ``fault_plan`` (a
    :class:`~repro.distributed.faults.FaultPlan` or profile name) and
    ``net_seed`` select what the simulated transport may do to the round's
    frames.  When any of these is ``None`` the simulation defers to the
    protocol's configuration (``DIMatchingConfig.executor`` /
    ``fault_profile`` / ``net_seed``) and falls back to fault-free serial
    execution for protocols without one.  Executor choice never changes
    results, byte counts or the network transcript — only measured
    wall-clock; the fault plan and network seed never change what a
    *surviving* round computes, only what it costs.

    ``allow_partial=True`` lets a round survive transfers that exhaust their
    retransmission budget: timed-out stations drop out (tracked in
    ``CostReport.lost_station_count``) instead of failing the round with a
    :class:`~repro.distributed.events.RoundTimeoutError`.
    """

    def __init__(
        self,
        dataset: "DistributedDataset",
        network_config: NetworkConfig | None = None,
        executor: str | None = None,
        shard_count: int | None = None,
        max_workers: int | None = None,
        fault_plan: FaultPlan | str | None = None,
        net_seed: int | None = None,
        allow_partial: bool = False,
    ) -> None:
        self._dataset = dataset
        self._network_config = network_config or NetworkConfig()
        self._executor = executor
        self._shard_count = shard_count
        self._max_workers = max_workers
        self._fault_plan = fault_plan
        self._net_seed = net_seed
        self._allow_partial = bool(allow_partial)
        self._runners: dict[tuple[str, int], ShardedStationRunner] = {}
        self._center = DataCenterNode()
        self._stations: list[BaseStationNode] = []
        for station_id in dataset.station_ids:
            patterns = dataset.local_patterns_at(station_id)
            if len(patterns) == 0:
                continue
            self._stations.append(BaseStationNode(station_id, patterns))

    @property
    def dataset(self) -> "DistributedDataset":
        """The dataset the simulation runs over."""
        return self._dataset

    @property
    def stations(self) -> list[BaseStationNode]:
        """The base-station nodes that store at least one pattern."""
        return list(self._stations)

    @property
    def center(self) -> DataCenterNode:
        """The data-center node."""
        return self._center

    def _runner_for(self, protocol: MatchingProtocol) -> ShardedStationRunner:
        """Resolve the station runner from explicit args, protocol config, defaults.

        Runners (and therefore their worker pools) are memoized per effective
        ``(executor, shard_count)``, so a sweep of many rounds through one
        simulation reuses one pool instead of re-spawning workers per round.
        """
        config = getattr(protocol, "config", None)
        executor = self._executor or getattr(config, "executor", "serial")
        shard_count = (
            self._shard_count
            if self._shard_count is not None
            else getattr(config, "shard_count", 0)
        )
        key = (executor, shard_count)
        runner = self._runners.get(key)
        if runner is None:
            runner = ShardedStationRunner(
                executor=executor, shard_count=shard_count, max_workers=self._max_workers
            )
            self._runners[key] = runner
        return runner

    def _network_for(
        self, protocol: MatchingProtocol, net_seed: int | None = None
    ) -> SimulatedNetwork:
        """Fresh per-round transport, faults resolved like the executor knobs."""
        config = getattr(protocol, "config", None)
        plan = resolve_fault_plan(
            self._fault_plan
            if self._fault_plan is not None
            else getattr(config, "fault_profile", "none")
        )
        if net_seed is None:
            net_seed = (
                self._net_seed
                if self._net_seed is not None
                else getattr(config, "net_seed", 0)
            )
        return SimulatedNetwork(
            self._network_config,
            fault_plan=plan,
            seed=net_seed,
            decode_backend=getattr(config, "bit_backend", "auto"),
            allow_partial=self._allow_partial,
        )

    def close(self) -> None:
        """Shut down any worker pools the simulation spun up."""
        for runner in self._runners.values():
            runner.close()
        self._runners.clear()

    def __enter__(self) -> "DistributedSimulation":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def _participants(self, station_ids: Sequence[str] | None) -> list[BaseStationNode]:
        """Resolve one round's participating stations (``None`` = all of them).

        ``station_ids`` is how a multi-round driver models churn: a station
        absent from the round's set neither receives the artifact nor uploads
        a report, exactly like a cell that joined the network after the round
        or left before it.  Ids must name dataset stations; ids of stations
        that store no patterns are tolerated (they never participate anyway).
        """
        if station_ids is None:
            return self._stations
        wanted = {str(station_id) for station_id in station_ids}
        unknown = wanted - set(self._dataset.station_ids)
        if unknown:
            raise ValueError(
                f"unknown station ids {sorted(unknown)!r}; "
                f"expected a subset of the dataset's stations"
            )
        return [station for station in self._stations if station.node_id in wanted]

    def run(
        self,
        protocol: MatchingProtocol,
        queries: Sequence[QueryPattern],
        k: int | None = None,
        *,
        station_ids: Sequence[str] | None = None,
        net_seed: int | None = None,
    ) -> SimulationOutcome:
        """Execute one full matching round and return results plus costs.

        ``station_ids`` restricts the round to a subset of stations (churn:
        joined/left stations between rounds of a multi-round workload);
        ``net_seed`` overrides the transport seed for this round only, so a
        workload driver can derive one deterministic seed per round from a
        single scenario seed.  Raises
        :class:`~repro.distributed.events.RoundTimeoutError` when a transfer
        cannot be delivered within the retransmission budget and the
        simulation was not constructed with ``allow_partial=True``.
        """
        participants = self._participants(station_ids)
        network = self._network_for(protocol, net_seed)
        self._center.clear_inbox()
        for station in self._stations:
            station.clear_inbox()

        # Phase 1: encoding at the data center, then reliable dissemination —
        # every station decodes the artifact from the wire bytes it received.
        encode_start = time.perf_counter()
        artifact = self._center.encode(protocol, queries)
        encode_time = time.perf_counter() - encode_start

        downlink_sends: list[tuple[Message, BaseStationNode]] = []
        for station in participants:
            message = Message(
                sender=self._center.node_id,
                recipient=station.node_id,
                # The naive method distributes no artifact: stations receive
                # only a tiny control trigger.
                kind=(
                    MessageKind.FILTER_DISSEMINATION
                    if artifact is not None
                    else MessageKind.CONTROL
                ),
                payload=artifact,
            )
            downlink_sends.append((message, station))
        downlink = network.broadcast(downlink_sends)
        lost_stations = set(downlink.failed_ids)
        active_stations = [s for s in participants if s.node_id not in lost_stations]

        # The matching phase runs against what actually crossed the wire: the
        # artifact one surviving station decoded.  All surviving copies are
        # equal by the transport's integrity guarantee (checksum + canonical
        # codec), so one decoded instance is shared across shards rather than
        # shipping N copies to process workers.
        matching_artifact = (
            active_stations[0].latest_artifact() if active_stations else artifact
        )

        # Phase 2: sharded per-station matching; simulated wall time is the
        # maximum over shards (shards run concurrently, a shard sequentially).
        runner = self._runner_for(protocol)
        shard_outcomes = runner.run(protocol, active_stations, matching_artifact)
        reports_by_station = merge_shard_outcomes(shard_outcomes)
        shard_times = [outcome.elapsed_s for outcome in shard_outcomes]

        # Phase 3a: reliable uplink in deterministic station order (frames
        # serialize at the center's ingress independently of shard layout).
        uplink_sends: list[tuple[Message, DataCenterNode]] = []
        for station in active_stations:
            reports = reports_by_station[station.node_id]
            message = Message(
                sender=station.node_id,
                recipient=self._center.node_id,
                kind=MessageKind.MATCH_REPORT,
                payload=reports,
            )
            uplink_sends.append((message, self._center))
        uplink = network.gather(uplink_sends)
        lost_stations.update(uplink.failed_ids)

        # Phase 3b: aggregation over the reports the center actually decoded,
        # consumed in canonical station order so delivery reordering can never
        # change the ranking.
        decoded_by_sender = self._center.reports_by_sender()
        uplink_payload_bytes = 0
        all_reports: list[object] = []
        for message, _receiver in uplink_sends:
            if message.sender in decoded_by_sender:
                uplink_payload_bytes += message.payload_bytes()
                all_reports.extend(decoded_by_sender[message.sender])
        aggregate_start = time.perf_counter()
        results = self._center.aggregate(protocol, all_reports, k)
        aggregate_time = time.perf_counter() - aggregate_start

        stats = network.frame_stats()
        artifact_bytes = _artifact_size_bytes(artifact)
        costs = CostReport(
            method=protocol.name,
            downlink_bytes=network.downlink_bytes,
            uplink_bytes=network.uplink_bytes,
            message_count=network.message_count,
            # The center keeps the artifact it built plus everything it received;
            # every station keeps the artifact it received on top of its raw data.
            storage_center_bytes=artifact_bytes + uplink_payload_bytes,
            storage_station_bytes=artifact_bytes * len(active_stations),
            encode_time_s=encode_time,
            station_time_s=max(shard_times) if shard_times else 0.0,
            aggregate_time_s=aggregate_time,
            transmission_time_s=network.transmission_time_s(),
            report_count=len(all_reports),
            executor=runner.executor,
            shard_count=len(shard_outcomes),
            fault_profile=network.fault_plan.name,
            net_seed=network.seed,
            retransmit_count=stats.retransmit_count,
            dropped_frame_count=stats.frames_dropped,
            duplicate_frame_count=stats.frames_duplicate,
            corrupt_frame_count=stats.frames_corrupt,
            lost_station_count=len(lost_stations),
            goodput_fraction=stats.goodput_fraction,
        )
        return SimulationOutcome(
            method=protocol.name,
            results=results,
            costs=costs,
            transcript=network.transcript,
        )
