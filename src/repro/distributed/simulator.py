"""Round-based simulation of one distributed matching round.

The simulation drives any :class:`~repro.core.protocol.MatchingProtocol` through the
three phases of Figure 2 over a :class:`~repro.datagen.workload.DistributedDataset`:

1. the data center encodes the query batch and broadcasts the artifact to every
   base station that stores at least one pattern (downlink traffic);
2. every station runs its matching phase — stations are partitioned into shards
   executed through a pluggable backend (:mod:`repro.distributed.executor`):
   in-process serial (default, one shard per station as in the paper's
   one-thread-per-station model), thread pool, or process pool.  The phase's
   simulated wall time is the maximum over shards;
3. stations upload their reports (uplink traffic, serialized at the center's
   ingress) and the data center aggregates them into the ranked top-K.

All byte counts are *real*: messages and artifacts are encoded through the
binary wire codec (:mod:`repro.wire`) and charged at their actual encoded
length; the estimate model only backs up payloads outside the codec's
vocabulary.  The outcome bundles the ranked results with a
:class:`~repro.distributed.metrics.CostReport` containing exactly the
quantities Figure 4 plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro import wire
from repro.core.protocol import MatchingProtocol, RankedResults
from repro.distributed.basestation import BaseStationNode
from repro.distributed.datacenter import DataCenterNode
from repro.distributed.executor import ShardedStationRunner, merge_shard_outcomes
from repro.distributed.messages import Message, MessageKind
from repro.distributed.metrics import CostReport
from repro.distributed.network import NetworkConfig, SimulatedNetwork
from repro.timeseries.query import QueryPattern
from repro.utils.serialization import estimate_size_bytes

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.datagen.workload import DistributedDataset


@dataclass(frozen=True)
class SimulationOutcome:
    """The result of running one protocol over one query batch."""

    method: str
    results: RankedResults
    costs: CostReport

    @property
    def retrieved_user_ids(self) -> list[str]:
        """Retrieved user ids in rank order."""
        return self.results.user_ids()


def _artifact_size_bytes(artifact: object | None) -> int:
    """Actual encoded size of a distributed artifact (estimate as fallback)."""
    if artifact is None:
        return 0
    try:
        return wire.encoded_size(artifact)
    except wire.UnsupportedWireTypeError:
        return estimate_size_bytes(artifact)


class DistributedSimulation:
    """Drives matching protocols over a distributed dataset with cost accounting.

    ``executor`` / ``shard_count`` / ``max_workers`` select how the station
    phase runs (see :mod:`repro.distributed.executor`).  When ``executor`` is
    ``None`` the simulation defers to the protocol's configuration
    (``DIMatchingConfig.executor``) and falls back to ``"serial"`` for
    protocols without one.  Executor choice never changes results or byte
    counts — only measured wall-clock.
    """

    def __init__(
        self,
        dataset: "DistributedDataset",
        network_config: NetworkConfig | None = None,
        executor: str | None = None,
        shard_count: int | None = None,
        max_workers: int | None = None,
    ) -> None:
        self._dataset = dataset
        self._network_config = network_config or NetworkConfig()
        self._executor = executor
        self._shard_count = shard_count
        self._max_workers = max_workers
        self._runners: dict[tuple[str, int], ShardedStationRunner] = {}
        self._center = DataCenterNode()
        self._stations: list[BaseStationNode] = []
        for station_id in dataset.station_ids:
            patterns = dataset.local_patterns_at(station_id)
            if len(patterns) == 0:
                continue
            self._stations.append(BaseStationNode(station_id, patterns))

    @property
    def dataset(self) -> "DistributedDataset":
        """The dataset the simulation runs over."""
        return self._dataset

    @property
    def stations(self) -> list[BaseStationNode]:
        """The base-station nodes that store at least one pattern."""
        return list(self._stations)

    @property
    def center(self) -> DataCenterNode:
        """The data-center node."""
        return self._center

    def _runner_for(self, protocol: MatchingProtocol) -> ShardedStationRunner:
        """Resolve the station runner from explicit args, protocol config, defaults.

        Runners (and therefore their worker pools) are memoized per effective
        ``(executor, shard_count)``, so a sweep of many rounds through one
        simulation reuses one pool instead of re-spawning workers per round.
        """
        config = getattr(protocol, "config", None)
        executor = self._executor or getattr(config, "executor", "serial")
        shard_count = (
            self._shard_count
            if self._shard_count is not None
            else getattr(config, "shard_count", 0)
        )
        key = (executor, shard_count)
        runner = self._runners.get(key)
        if runner is None:
            runner = ShardedStationRunner(
                executor=executor, shard_count=shard_count, max_workers=self._max_workers
            )
            self._runners[key] = runner
        return runner

    def close(self) -> None:
        """Shut down any worker pools the simulation spun up."""
        for runner in self._runners.values():
            runner.close()
        self._runners.clear()

    def __enter__(self) -> "DistributedSimulation":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def run(
        self,
        protocol: MatchingProtocol,
        queries: Sequence[QueryPattern],
        k: int | None = None,
    ) -> SimulationOutcome:
        """Execute one full matching round and return results plus costs."""
        network = SimulatedNetwork(self._network_config)

        # Phase 1: encoding at the data center, then dissemination to stations.
        encode_start = time.perf_counter()
        artifact = self._center.encode(protocol, queries)
        encode_time = time.perf_counter() - encode_start

        for station in self._stations:
            message = Message(
                sender=self._center.node_id,
                recipient=station.node_id,
                # The naive method distributes no artifact: stations receive
                # only a tiny control trigger.
                kind=(
                    MessageKind.FILTER_DISSEMINATION
                    if artifact is not None
                    else MessageKind.CONTROL
                ),
                payload=artifact,
            )
            network.send_downlink(message)
            station.receive(message)

        # Phase 2: sharded per-station matching; simulated wall time is the
        # maximum over shards (shards run concurrently, a shard sequentially).
        runner = self._runner_for(protocol)
        shard_outcomes = runner.run(protocol, self._stations, artifact)
        reports_by_station = merge_shard_outcomes(shard_outcomes)
        shard_times = [outcome.elapsed_s for outcome in shard_outcomes]

        # Uplink in deterministic station order, independent of shard layout.
        all_reports: list[object] = []
        uplink_payload_bytes = 0
        for station in self._stations:
            reports = reports_by_station[station.node_id]
            message = Message(
                sender=station.node_id,
                recipient=self._center.node_id,
                kind=MessageKind.MATCH_REPORT,
                payload=reports,
            )
            network.send_uplink(message)
            self._center.receive(message)
            uplink_payload_bytes += message.payload_bytes()
            all_reports.extend(reports)

        # Phase 3: aggregation and ranking at the data center.
        aggregate_start = time.perf_counter()
        results = self._center.aggregate(protocol, all_reports, k)
        aggregate_time = time.perf_counter() - aggregate_start

        artifact_bytes = _artifact_size_bytes(artifact)
        costs = CostReport(
            method=protocol.name,
            downlink_bytes=network.downlink_bytes,
            uplink_bytes=network.uplink_bytes,
            message_count=network.message_count,
            # The center keeps the artifact it built plus everything it received;
            # every station keeps the artifact it received on top of its raw data.
            storage_center_bytes=artifact_bytes + uplink_payload_bytes,
            storage_station_bytes=artifact_bytes * len(self._stations),
            encode_time_s=encode_time,
            station_time_s=max(shard_times) if shard_times else 0.0,
            aggregate_time_s=aggregate_time,
            transmission_time_s=network.transmission_time_s(),
            report_count=len(all_reports),
            executor=runner.executor,
            shard_count=len(shard_outcomes),
        )
        return SimulationOutcome(method=protocol.name, results=results, costs=costs)
