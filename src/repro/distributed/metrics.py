"""Cost accounting for the simulated distributed environment.

The quantities mirror the paper's evaluation metrics (Section V-C): communication
cost (message volume between stations and the center), storage cost, and time cost
split into its computation and transmission components.  The comparison figures
report communication and storage as a fraction of the naive method, which
:func:`relative_to` computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TierCost:
    """One tier's share of a hierarchical round's traffic.

    ``tier`` is ``"trunk"`` for the aggregator↔center hop or the region name
    for an aggregator↔stations hop.  Bytes are real encoded ``DIMW`` lengths
    charged on that tier's links, exactly like the flat ledger's totals.
    """

    tier: str
    downlink_bytes: int = 0
    uplink_bytes: int = 0
    message_count: int = 0
    retransmit_count: int = 0
    dropped_frame_count: int = 0
    #: Negotiated DIMW header version of this hop's payload frames.
    wire_version: int = 1


@dataclass(frozen=True)
class CostReport:
    """Costs measured for one protocol run over one query batch."""

    method: str
    downlink_bytes: int = 0
    uplink_bytes: int = 0
    message_count: int = 0
    storage_center_bytes: int = 0
    storage_station_bytes: int = 0
    encode_time_s: float = 0.0
    station_time_s: float = 0.0
    aggregate_time_s: float = 0.0
    transmission_time_s: float = 0.0
    report_count: int = 0
    #: Station-execution backend the run used ("serial", "thread", "process").
    executor: str = "serial"
    #: Number of station shards the matching phase was partitioned into.
    shard_count: int = 0
    #: Fault profile the round's transport ran under ("none" = fault-free).
    fault_profile: str = "none"
    #: Seed of the network fault injector for this round.
    net_seed: int = 0
    #: Retransmissions the ack/retransmit policy issued (0 when fault-free).
    retransmit_count: int = 0
    #: Frames lost to drop faults or blackouts.
    dropped_frame_count: int = 0
    #: Duplicate/late frame arrivals the receivers suppressed.
    duplicate_frame_count: int = 0
    #: Frames rejected as corrupt (by the wire decode or the frame checksum).
    corrupt_frame_count: int = 0
    #: Stations whose transfers timed out and dropped out of a partial round.
    lost_station_count: int = 0
    #: Unique delivered payload bytes over total bytes put on the wire
    #: (exactly 1.0 for a fault-free round).
    goodput_fraction: float = 1.0
    #: Hierarchical rounds: per-tier breakdown (trunk hop first, then each
    #: region in tier-map order).  Empty for flat-star rounds, so flat
    #: payloads and ledgers keep their historical shape.
    tiers: tuple[TierCost, ...] = ()
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def communication_bytes(self) -> int:
        """Total bytes exchanged between the center and the stations."""
        return self.downlink_bytes + self.uplink_bytes

    @property
    def center_ingress_bytes(self) -> int:
        """Bytes that actually arrive at the data center's uplink ingress.

        Flat star: every station report crosses the center's ingress, so this
        is the whole uplink.  Two-tier: only the trunk hop terminates at the
        center — the regional uplinks land at the aggregators — so this is
        the trunk tier's uplink bytes (the quantity the hierarchy exists to
        shrink).
        """
        for tier in self.tiers:
            if tier.tier == "trunk":
                return tier.uplink_bytes
        return self.uplink_bytes

    @property
    def storage_bytes(self) -> int:
        """Total extra storage attributable to the matching method."""
        return self.storage_center_bytes + self.storage_station_bytes

    @property
    def computation_time_s(self) -> float:
        """Wall-clock computation: encoding + (parallel) station matching + aggregation."""
        return self.encode_time_s + self.station_time_s + self.aggregate_time_s

    @property
    def total_time_s(self) -> float:
        """End-to-end time: computation plus simulated transmission."""
        return self.computation_time_s + self.transmission_time_s

    def relative_to(self, baseline: "CostReport") -> dict[str, float]:
        """Communication/storage/time of this run as a fraction of ``baseline``.

        A fraction of 0 is reported when the baseline quantity is itself 0.
        """

        def ratio(value: float, reference: float) -> float:
            return float(value) / float(reference) if reference else 0.0

        return {
            "communication": ratio(self.communication_bytes, baseline.communication_bytes),
            "storage": ratio(self.storage_bytes, baseline.storage_bytes),
            "time": ratio(self.total_time_s, baseline.total_time_s),
        }
