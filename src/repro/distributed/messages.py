"""Messages exchanged between the data center and base stations."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.utils.serialization import MESSAGE_OVERHEAD_BYTES, estimate_size_bytes


class MessageKind(str, Enum):
    """The message types used by the matching protocols."""

    #: Data center -> station: the encoded filter (or raw queries) to match against.
    FILTER_DISSEMINATION = "filter_dissemination"
    #: Station -> data center: matched (id, weight) reports or raw pattern uploads.
    MATCH_REPORT = "match_report"
    #: Control traffic (e.g. the naive method's "upload everything" trigger).
    CONTROL = "control"


@dataclass(frozen=True)
class Message:
    """A single message with explicit sender, recipient, kind and payload."""

    sender: str
    recipient: str
    kind: MessageKind
    payload: object | None = None

    def payload_bytes(self) -> int:
        """Serialized size of the payload alone."""
        return estimate_size_bytes(self.payload)

    def size_bytes(self) -> int:
        """Total on-the-wire size: payload plus a fixed envelope overhead."""
        return MESSAGE_OVERHEAD_BYTES + self.payload_bytes()

    def __repr__(self) -> str:
        return (
            f"Message({self.sender!r} -> {self.recipient!r}, kind={self.kind.value}, "
            f"bytes={self.size_bytes()})"
        )
