"""Messages exchanged between the data center and base stations.

Since the wire codec (:mod:`repro.wire`) landed, a message's ``size_bytes()``
is the length of its *actual* binary encoding — header, routing fields and the
canonically encoded payload — not a per-field estimate.  The old estimate
model survives as :meth:`Message.estimated_size_bytes`: it is cross-checked
against the codec in the test suite and remains the fallback for payload
objects outside the protocol vocabulary (raw in-memory baselines).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from enum import Enum

from repro.utils.serialization import MESSAGE_OVERHEAD_BYTES, estimate_size_bytes

#: Number of times byte accounting fell back from real codec bytes to the
#: estimate model since the last :func:`reset_estimated_size_fallbacks`.
_estimate_fallbacks = 0
_fallback_warned = False


def _note_estimate_fallback(payload: object) -> None:
    """Record (and warn once about) an estimate-model fallback.

    Mixing estimated and real bytes in one cost ledger is legitimate only for
    payloads deliberately outside the wire vocabulary (raw in-memory
    baselines); it must never happen silently, so the first fallback of a
    process warns and every fallback increments a counter the round engine
    copies onto its :class:`~repro.distributed.metrics.CostReport`.
    """
    global _estimate_fallbacks, _fallback_warned
    _estimate_fallbacks += 1
    if not _fallback_warned:
        _fallback_warned = True
        warnings.warn(
            "Message byte accounting fell back to the estimate model for a "
            f"{type(payload).__name__} payload with no wire encoding; real and "
            "estimated bytes are now mixed in this process's cost ledgers "
            "(reported once; see CostReport.extra['estimated_size_fallbacks'] "
            "for per-round counts)",
            RuntimeWarning,
            stacklevel=3,
        )


def estimated_size_fallbacks() -> int:
    """Total estimate-model fallbacks recorded since the last reset."""
    return _estimate_fallbacks


def reset_estimated_size_fallbacks() -> int:
    """Zero the fallback counter, returning the count it held."""
    global _estimate_fallbacks
    count = _estimate_fallbacks
    _estimate_fallbacks = 0
    return count


class MessageKind(str, Enum):
    """The message types used by the matching protocols."""

    #: Data center -> station: the encoded filter (or raw queries) to match against.
    FILTER_DISSEMINATION = "filter_dissemination"
    #: Station -> data center: matched (id, weight) reports or raw pattern uploads.
    MATCH_REPORT = "match_report"
    #: Control traffic (e.g. the naive method's "upload everything" trigger).
    CONTROL = "control"


@dataclass(frozen=True)
class Message:
    """A single message with explicit sender, recipient, kind and payload.

    ``wire_version`` is the negotiated header revision the *payload frame* is
    written at (the envelope layout never changes).  It defaults to the
    codec's stable version, so every historical transcript keeps its bytes;
    hierarchical deployments mid-upgrade set it per hop from
    :func:`repro.wire.negotiate_wire_version`.
    """

    sender: str
    recipient: str
    kind: MessageKind
    payload: object | None = None
    wire_version: int = 1

    def to_wire(self, compress: bool = False) -> bytes:
        """The full binary encoding of this message (envelope plus payload).

        Raises :class:`~repro.wire.errors.UnsupportedWireTypeError` when the
        payload has no wire encoding; uncompressed encodings are memoized per
        message instance.
        """
        from repro import wire

        if compress:
            return wire.encode(self, compress=True)
        revision = wire.object_revision(self.payload)
        cached = getattr(self, "_wire_cache", None)
        if cached is not None and cached[0] == revision:
            return cached[1]
        data = wire.encode(self)
        object.__setattr__(self, "_wire_cache", (revision, data))
        return data

    @classmethod
    def from_wire(cls, data: bytes, backend: str = "auto") -> "Message":
        """Decode a message from its binary encoding.

        Raises :class:`~repro.wire.errors.WireFormatError` when ``data`` is not
        a message encoding.
        """
        from repro import wire

        decoded = wire.decode(data, backend=backend)
        if not isinstance(decoded, cls):
            raise wire.WireFormatError(
                f"buffer holds a {type(decoded).__name__}, not a Message"
            )
        return decoded

    def payload_wire(self) -> bytes:
        """The payload's own wire encoding, memoized per message instance.

        The envelope encoder embeds exactly these bytes, so building the
        envelope and charging ``payload_bytes()`` in the same round encodes the
        payload once even for list payloads (which the codec's weak-ref cache
        cannot hold).  Raises
        :class:`~repro.wire.errors.UnsupportedWireTypeError` for payloads
        outside the codec's vocabulary.
        """
        from repro import wire

        revision = wire.object_revision(self.payload)
        cached = getattr(self, "_payload_wire_cache", None)
        if cached is not None and cached[0] == revision:
            return cached[1]
        if self.wire_version == wire.WIRE_VERSION:
            data = wire.encode_cached(self.payload)
        else:
            # Negotiated non-default hop: the codec's identity cache only
            # holds default-version encodings, so encode afresh (the
            # per-message memo below still makes repeat charges O(1)).
            data = wire.encode(self.payload, version=self.wire_version)
        object.__setattr__(self, "_payload_wire_cache", (revision, data))
        return data

    def payload_bytes(self) -> int:
        """Serialized size of the payload alone (real codec bytes when possible)."""
        from repro import wire

        try:
            return len(self.payload_wire())
        except wire.UnsupportedWireTypeError:
            _note_estimate_fallback(self.payload)
            return estimate_size_bytes(self.payload)

    def size_bytes(self) -> int:
        """Total on-the-wire size: the length of the actual binary encoding.

        The envelope portion is computed arithmetically around the memoized
        payload encoding, so charging a broadcast of N station messages that
        share one artifact costs one payload encode total and never
        materializes per-message envelope copies.  Falls back to the
        estimate-based model (fixed envelope overhead plus per-field estimate)
        only when the payload cannot be wire-encoded.
        """
        from repro import wire

        try:
            payload_size = len(self.payload_wire())
        except wire.UnsupportedWireTypeError:
            _note_estimate_fallback(self.payload)
            return self.estimated_size_bytes()
        return wire.message_envelope_size(self.sender, self.recipient, payload_size)

    def estimated_size_bytes(self) -> int:
        """The legacy constant-per-field cost model (envelope + payload estimate).

        Kept as a cross-checked baseline: the test suite asserts it stays
        within a documented factor of the real encoding for protocol payloads.
        """
        return MESSAGE_OVERHEAD_BYTES + estimate_size_bytes(self.payload)

    def __repr__(self) -> str:
        # repr must stay cheap: show the real size when the payload encoding
        # is already cached, otherwise the estimate — never encode a large
        # artifact as a printing side effect.
        if getattr(self, "_payload_wire_cache", None) is not None:
            size = self.size_bytes()
        else:
            try:
                size = self.estimated_size_bytes()
            except TypeError:
                size = -1  # payload outside even the estimate model's shapes
        return (
            f"Message({self.sender!r} -> {self.recipient!r}, kind={self.kind.value}, "
            f"bytes={size})"
        )
