"""Virtual-clock discrete-event machinery behind the simulated network.

The :class:`EventLoop` is a plain monotonic heap of ``(time, sequence,
callback)`` entries: time is *virtual* (seconds of simulated transmission,
never wall clock), and the sequence number makes ordering of simultaneous
events total and deterministic.  Everything the loop does is recorded by the
transport as :class:`TranscriptEntry` rows; the canonical byte rendering of a
transcript (:func:`transcript_to_bytes`) is what the seed-replay harness
compares across runs and executors — two runs are "the same" exactly when
their transcripts are byte-identical.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.core.exceptions import ReproError


class TransportError(ReproError):
    """Base class for errors raised by the simulated transport."""


class RoundTimeoutError(TransportError):
    """A reliable transfer exhausted its retransmission budget.

    Raised by the transport when a phase cannot converge (e.g. a station is
    blacked out past the retry horizon) and partial rounds are not allowed.
    """

    def __init__(
        self,
        message: str,
        failed_transfers: tuple[str, ...] = (),
        delivered_ids: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        #: ``"sender->recipient"`` labels of the transfers that never completed.
        self.failed_transfers = failed_transfers
        #: Station endpoints whose transfer *did* complete before the phase
        #: failed — their receivers already hold the decoded messages, so
        #: callers with retry semantics must not re-send them.
        self.delivered_ids = delivered_ids


class EventLoop:
    """A deterministic single-threaded discrete-event loop on a virtual clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._sequence = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """The current virtual time in seconds."""
        return self._now

    def schedule(self, time_s: float, callback: Callable[[float], None]) -> None:
        """Schedule ``callback(fire_time)`` at virtual time ``time_s``.

        Events scheduled for the past fire at the current clock instead (the
        loop never travels backwards); ties break by scheduling order.
        """
        fire_at = time_s if time_s >= self._now else self._now
        heapq.heappush(self._heap, (fire_at, self._sequence, callback))
        self._sequence += 1

    def run(self) -> float:
        """Run until the event heap drains; return the final virtual time."""
        while self._heap:
            time_s, _sequence, callback = heapq.heappop(self._heap)
            self._now = time_s
            callback(time_s)
        return self._now

    def reset(self, time_s: float = 0.0) -> None:
        """Drop pending events and rewind the clock (between phases/rounds)."""
        self._heap.clear()
        self._now = time_s


@dataclass(frozen=True)
class TranscriptEntry:
    """One row of the deterministic event transcript.

    The fields are everything replay needs to compare two executions: virtual
    time, a total order, the event type, the frame's identity and routing, its
    size and attempt number.  Wall-clock timings never appear here — they are
    measurements, not behaviour.
    """

    sequence: int
    time_s: float
    event: str
    frame_id: int
    attempt: int
    sender: str
    recipient: str
    kind: str
    size_bytes: int

    def render(self) -> str:
        """The canonical single-line rendering used for byte-level comparison."""
        return (
            f"{self.sequence} t={self.time_s!r} {self.event} "
            f"frame={self.frame_id} attempt={self.attempt} "
            f"{self.sender}->{self.recipient} kind={self.kind} bytes={self.size_bytes}"
        )


#: Event types a transcript may contain, in no particular order.
TRANSCRIPT_EVENTS = (
    "phase",
    "send",
    "dup-send",
    "drop",
    "blackout",
    "deliver",
    "duplicate",
    "corrupt",
    "retransmit",
    "timeout",
)


def transcript_to_bytes(entries: "tuple[TranscriptEntry, ...] | list[TranscriptEntry]") -> bytes:
    """Canonical byte rendering of a transcript.

    ``repr`` of a float is exact and stable across platforms and Python
    builds, so two transcripts are byte-identical iff every event happened at
    the same virtual time, in the same order, with the same routing and sizes.
    """
    return "\n".join(entry.render() for entry in entries).encode("utf-8")
