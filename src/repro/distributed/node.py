"""Base class for simulated nodes (the data center and the base stations)."""

from __future__ import annotations

from repro.distributed.messages import Message


class Node:
    """A named participant in the simulated environment with an inbox."""

    def __init__(self, node_id: str) -> None:
        self._node_id = str(node_id)
        self._inbox: list[Message] = []

    @property
    def node_id(self) -> str:
        """Unique identifier of this node."""
        return self._node_id

    @property
    def inbox(self) -> list[Message]:
        """Messages received, in arrival order."""
        return list(self._inbox)

    def receive(self, message: Message) -> None:
        """Deliver ``message`` to this node."""
        if message.recipient != self._node_id:
            raise ValueError(
                f"message addressed to {message.recipient!r} delivered to {self._node_id!r}"
            )
        self._inbox.append(message)

    def clear_inbox(self) -> None:
        """Discard all received messages."""
        self._inbox.clear()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(node_id={self._node_id!r}, inbox={len(self._inbox)})"
