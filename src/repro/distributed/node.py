"""Base class for simulated nodes (the data center and the base stations)."""

from __future__ import annotations

from repro.distributed.messages import Message


class Node:
    """A named participant in the simulated environment with an inbox.

    Nodes receive traffic in one of two forms: already-decoded
    :class:`~repro.distributed.messages.Message` objects (:meth:`receive`, the
    in-memory fallback for payloads outside the wire vocabulary) or raw wire
    bytes (:meth:`receive_wire`, the path the event-driven transport uses —
    every frame a node accepts has passed through the real binary decode, so a
    corrupted frame surfaces as a typed
    :class:`~repro.wire.errors.WireFormatError` here, never as wrong data).
    """

    def __init__(self, node_id: str) -> None:
        self._node_id = str(node_id)
        self._inbox: list[Message] = []

    @property
    def node_id(self) -> str:
        """Unique identifier of this node."""
        return self._node_id

    @property
    def inbox(self) -> list[Message]:
        """Messages received, in arrival order."""
        return list(self._inbox)

    def receive(self, message: Message) -> None:
        """Deliver an already-decoded ``message`` to this node."""
        if message.recipient != self._node_id:
            raise ValueError(
                f"message addressed to {message.recipient!r} delivered to {self._node_id!r}"
            )
        self._inbox.append(message)

    def receive_wire(self, data: bytes, backend: str = "auto") -> Message:
        """Decode ``data`` through the wire codec and deliver the message.

        Raises :class:`~repro.wire.errors.WireFormatError` when the bytes are
        not a valid message encoding (the transport treats that as frame loss
        and retransmits) and :class:`ValueError` when the decoded message is
        addressed to another node.  Returns the decoded message.
        """
        message = Message.from_wire(data, backend=backend)
        self.receive(message)
        return message

    def clear_inbox(self) -> None:
        """Discard all received messages."""
        self._inbox.clear()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(node_id={self._node_id!r}, inbox={len(self._inbox)})"
