"""Classic Bloom filter (Bloom, 1970).

This is the baseline structure the paper compares the Weighted Bloom Filter against
(the "BF" method in Figure 4): membership-only, no weights, false positives allowed,
no false negatives.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.bloom.analysis import expected_false_positive_rate
from repro.bloom.bitset import BitArray
from repro.bloom.hashing import HashFamily
from repro.utils.validation import require_positive


class BloomFilter:
    """A fixed-size Bloom filter supporting ``add`` and membership queries.

    ``backend`` selects the bit-storage backend ("auto", "python" or "numpy",
    see :mod:`repro.bloom.backend`); "auto" uses NumPy when available.
    """

    def __init__(
        self, bit_count: int, hash_count: int, seed: int = 0, backend: str = "auto"
    ) -> None:
        require_positive(bit_count, "bit_count")
        require_positive(hash_count, "hash_count")
        self._bits = BitArray(bit_count, backend=backend)
        self._hashes = HashFamily(hash_count, bit_count, seed=seed)
        self._item_count = 0
        self._revision = 0

    # -- properties ------------------------------------------------------------

    @property
    def revision(self) -> int:
        """Mutation counter, bumped by every insertion.

        The wire codec keys its per-object encoding cache on this, so encoding
        a filter, mutating it, and encoding again can never serve stale bytes.
        (Mutating the exposed ``bits`` array directly bypasses the counter.)
        """
        return self._revision

    @property
    def bit_count(self) -> int:
        """Filter length ``m`` in bits."""
        return len(self._bits)

    @property
    def hash_count(self) -> int:
        """Number of hash functions ``k``."""
        return self._hashes.hash_count

    @property
    def item_count(self) -> int:
        """Number of items added (with multiplicity)."""
        return self._item_count

    @property
    def bits(self) -> BitArray:
        """The underlying bit array (shared, not a copy)."""
        return self._bits

    @property
    def hash_family(self) -> HashFamily:
        """The hash family used by this filter."""
        return self._hashes

    @property
    def backend_name(self) -> str:
        """Name of the bit-storage backend in use."""
        return self._bits.backend_name

    # -- construction from wire state ------------------------------------------

    @classmethod
    def from_state(
        cls,
        bit_count: int,
        hash_count: int,
        seed: int,
        bits: bytes,
        item_count: int,
        backend: str = "auto",
    ) -> "BloomFilter":
        """Reconstruct a filter from decoded wire state.

        ``bits`` is the canonical serialization of the bit array; ``backend``
        is the local storage choice and never travels on the wire.
        """
        bloom = cls(bit_count, hash_count, seed=seed, backend=backend)
        bloom._bits = BitArray.from_bytes(bit_count, bits, backend=backend)
        bloom._item_count = int(item_count)
        return bloom

    def __eq__(self, other: object) -> bool:
        """Structural equality: same parameters, same bits (backend-agnostic)."""
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self.bit_count == other.bit_count
            and self.hash_count == other.hash_count
            and self._hashes.seed == other._hashes.seed
            and self._item_count == other._item_count
            and self._bits.to_bytes() == other._bits.to_bytes()
        )

    __hash__ = None  # mutable: adding items changes equality

    # -- core operations -------------------------------------------------------

    def add(self, item: object) -> None:
        """Insert ``item`` into the filter."""
        for position in self._hashes.positions(item):
            self._bits.set(position)
        self._item_count += 1
        self._revision += 1

    def add_many(self, items: Iterable[object]) -> None:
        """Insert every item of ``items`` through the batched backend path.

        All ``n × k`` bit positions are computed in one call and set in one
        backend operation instead of ``n·k`` Python-level bit writes.
        """
        items = list(items)
        rows = self._hashes.indices_batch(items)
        self._bits.set_many([position for row in rows for position in row])
        self._item_count += len(items)
        self._revision += 1

    def contains(self, item: object) -> bool:
        """Return True if ``item`` may be in the set (no false negatives)."""
        return all(self._bits.get(position) for position in self._hashes.positions(item))

    def contains_many(self, items: Sequence[object]) -> list[bool]:
        """Batched membership probe: one verdict per item, in order."""
        return self._bits.all_set_rows(self._hashes.indices_batch(items))

    def __contains__(self, item: object) -> bool:
        return self.contains(item)

    # -- introspection ---------------------------------------------------------

    def fill_ratio(self) -> float:
        """Fraction of bits currently set."""
        return self._bits.count() / len(self._bits)

    def estimated_false_positive_rate(self) -> float:
        """Theoretical false-positive probability given the items added so far."""
        return expected_false_positive_rate(
            bit_count=self.bit_count,
            hash_count=self.hash_count,
            item_count=self._item_count,
        )

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Return a filter representing the union of both filters' sets.

        Both filters must share ``m``, ``k`` and seed, otherwise positions are
        incompatible and the union is meaningless.
        """
        self._check_compatible(other)
        result = BloomFilter(
            self.bit_count,
            self.hash_count,
            seed=self._hashes.seed,
            backend=self._bits.backend_name,
        )
        result._bits = self._bits | other._bits
        result._item_count = self._item_count + other._item_count
        return result

    def _check_compatible(self, other: "BloomFilter") -> None:
        if not isinstance(other, BloomFilter):
            raise TypeError(f"expected BloomFilter, got {type(other).__name__}")
        if (
            other.bit_count != self.bit_count
            or other.hash_count != self.hash_count
            or other._hashes.seed != self._hashes.seed
        ):
            raise ValueError("Bloom filters are not compatible (m, k or seed differ)")

    def size_bytes(self) -> int:
        """Serialized size used by the communication/storage cost model."""
        return self._bits.size_bytes()

    def __repr__(self) -> str:
        return (
            f"BloomFilter(m={self.bit_count}, k={self.hash_count}, "
            f"items={self._item_count}, fill={self.fill_ratio():.3f})"
        )
