"""Scalable (dynamic) Bloom filter.

Grows by chaining progressively larger plain Bloom filters while keeping the overall
false-positive probability bounded by a geometric series.  The paper's related-work
section cites dynamic Bloom filters (Guo et al.); the scalable variant is included in
the substrate so the evolving-data scenario (Characteristic 2) can be handled without
re-sizing a filter from scratch.
"""

from __future__ import annotations

from typing import Iterable

from repro.bloom.analysis import optimal_parameters
from repro.bloom.standard import BloomFilter
from repro.utils.validation import require_positive, require_probability


class ScalableBloomFilter:
    """A Bloom filter that grows as items are added, keeping FP rate bounded."""

    def __init__(
        self,
        initial_capacity: int = 128,
        target_false_positive_rate: float = 0.01,
        growth_factor: int = 2,
        tightening_ratio: float = 0.5,
        seed: int = 0,
    ) -> None:
        require_positive(initial_capacity, "initial_capacity")
        require_probability(target_false_positive_rate, "target_false_positive_rate")
        if target_false_positive_rate in (0.0, 1.0):
            raise ValueError("target_false_positive_rate must be strictly between 0 and 1")
        require_positive(growth_factor, "growth_factor")
        require_probability(tightening_ratio, "tightening_ratio")
        if tightening_ratio in (0.0, 1.0):
            raise ValueError("tightening_ratio must be strictly between 0 and 1")
        self._initial_capacity = int(initial_capacity)
        self._target_fp = float(target_false_positive_rate)
        self._growth_factor = int(growth_factor)
        self._tightening_ratio = float(tightening_ratio)
        self._seed = int(seed)
        self._slices: list[tuple[BloomFilter, int]] = []
        self._item_count = 0
        self._add_slice()

    def _add_slice(self) -> None:
        slice_index = len(self._slices)
        capacity = self._initial_capacity * (self._growth_factor**slice_index)
        fp_rate = self._target_fp * (self._tightening_ratio**slice_index)
        bit_count, hash_count = optimal_parameters(capacity, fp_rate)
        bloom = BloomFilter(bit_count, hash_count, seed=self._seed + slice_index)
        self._slices.append((bloom, capacity))

    @property
    def item_count(self) -> int:
        """Total number of items added."""
        return self._item_count

    @property
    def slice_count(self) -> int:
        """Number of chained filters currently allocated."""
        return len(self._slices)

    @property
    def target_false_positive_rate(self) -> float:
        """Upper bound on the overall false-positive probability."""
        return self._target_fp / (1.0 - self._tightening_ratio)

    def add(self, item: object) -> None:
        """Insert ``item``, growing the filter chain if the active slice is full."""
        bloom, capacity = self._slices[-1]
        if bloom.item_count >= capacity:
            self._add_slice()
            bloom, capacity = self._slices[-1]
        bloom.add(item)
        self._item_count += 1

    def add_many(self, items: Iterable[object]) -> None:
        """Insert every item of ``items``."""
        for item in items:
            self.add(item)

    def contains(self, item: object) -> bool:
        """Return True if ``item`` may have been added to any slice."""
        return any(bloom.contains(item) for bloom, _ in self._slices)

    def __contains__(self, item: object) -> bool:
        return self.contains(item)

    def size_bytes(self) -> int:
        """Total serialized size across slices."""
        return sum(bloom.size_bytes() for bloom, _ in self._slices)

    def __repr__(self) -> str:
        return (
            f"ScalableBloomFilter(items={self._item_count}, slices={self.slice_count}, "
            f"target_fp={self.target_false_positive_rate:.4g})"
        )
