"""Hash-function family shared by all Bloom-filter variants.

The family implements the standard Kirsch–Mitzenmacher double-hashing construction:
two independent 64-bit base hashes ``h1`` and ``h2`` are derived from the item, and
the ``i``-th filter hash is ``(h1 + i * h2) mod m``.  This gives ``k`` effectively
independent hash functions from a single strong hash of the item, which is both fast
and the construction used in practice by most Bloom-filter libraries.

Items may be integers, strings, bytes, floats, or tuples of those — the encoder in
:mod:`repro.core.encoder` hashes integer accumulated pattern values.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Sequence

from repro.utils.validation import require_positive

try:  # pragma: no cover - exercised indirectly through the batched paths
    import numpy as _np
except ImportError:  # pragma: no cover - the CI matrix covers the no-NumPy leg
    _np = None

_MASK_64 = (1 << 64) - 1

#: Below this batch size the NumPy round-trip costs more than the Python loop.
_VECTORIZE_THRESHOLD = 4


def canonical_item_bytes(item: object) -> bytes:
    """Encode a hashable item into a canonical byte string.

    The encoding is type-tagged so that e.g. the integer ``1`` and the string ``"1"``
    hash differently, and stable across runs and processes.
    """
    if isinstance(item, bool):
        return b"b" + (b"\x01" if item else b"\x00")
    if isinstance(item, int):
        return b"i" + str(item).encode("ascii")
    if isinstance(item, float):
        return b"f" + struct.pack(">d", item)
    if isinstance(item, str):
        return b"s" + item.encode("utf-8")
    if isinstance(item, (bytes, bytearray)):
        return b"y" + bytes(item)
    if isinstance(item, tuple):
        parts = [canonical_item_bytes(part) for part in item]
        return b"t" + struct.pack(">I", len(parts)) + b"".join(
            struct.pack(">I", len(part)) + part for part in parts
        )
    raise TypeError(f"cannot hash item of type {type(item).__name__}")


class HashFamily:
    """A seeded family of ``k`` hash functions onto ``[0, m)`` via double hashing."""

    __slots__ = ("_hash_count", "_range", "_seed")

    def __init__(self, hash_count: int, value_range: int, seed: int = 0) -> None:
        require_positive(hash_count, "hash_count")
        require_positive(value_range, "value_range")
        self._hash_count = int(hash_count)
        self._range = int(value_range)
        self._seed = int(seed)

    @property
    def hash_count(self) -> int:
        """Number of hash functions ``k``."""
        return self._hash_count

    @property
    def value_range(self) -> int:
        """Size of the output range ``m``."""
        return self._range

    @property
    def seed(self) -> int:
        """Seed distinguishing independent families."""
        return self._seed

    def _base_hashes(self, item: object) -> tuple[int, int]:
        payload = canonical_item_bytes(item) + b"|" + str(self._seed).encode("ascii")
        digest = hashlib.sha256(payload).digest()
        h1 = int.from_bytes(digest[:8], "big") & _MASK_64
        h2 = int.from_bytes(digest[8:16], "big") & _MASK_64
        # h2 must be odd so successive probes do not collapse onto a short cycle.
        h2 |= 1
        return h1, h2

    def positions(self, item: object) -> list[int]:
        """Return the ``k`` bit positions for ``item``."""
        h1, h2 = self._base_hashes(item)
        return [((h1 + i * h2) & _MASK_64) % self._range for i in range(self._hash_count)]

    def indices_batch(self, items: Sequence[object]) -> list[list[int]]:
        """Return the ``k`` bit positions for every item of ``items`` at once.

        The base hashes are computed per item (SHA-256 is inherently scalar) but
        the double-hashing expansion ``(h1 + i·h2) mod m`` — ``k`` multiplies,
        adds and mods per item — is vectorized over the whole ``n × k`` grid
        when NumPy is available.  Results are bit-for-bit identical to calling
        :meth:`positions` per item, on every backend.
        """
        items = list(items)
        if _np is None or len(items) < _VECTORIZE_THRESHOLD:
            return [self.positions(item) for item in items]
        base = [self._base_hashes(item) for item in items]
        h1 = _np.array([pair[0] for pair in base], dtype="<u8")
        h2 = _np.array([pair[1] for pair in base], dtype="<u8")
        steps = _np.arange(self._hash_count, dtype="<u8")
        # uint64 arithmetic wraps modulo 2^64, matching the `& _MASK_64` of the
        # scalar path exactly.
        grid = h1[:, None] + steps[None, :] * h2[:, None]
        return (grid % _np.uint64(self._range)).astype(_np.int64).tolist()

    def positions_many(self, items: Iterable[object]) -> list[list[int]]:
        """Return positions for each item in ``items`` (alias of indices_batch)."""
        return self.indices_batch(list(items))

    def with_range(self, value_range: int) -> "HashFamily":
        """Return a family with the same ``k`` and seed but a different output range."""
        return HashFamily(self._hash_count, value_range, seed=self._seed)

    def __repr__(self) -> str:
        return (
            f"HashFamily(hash_count={self._hash_count}, "
            f"value_range={self._range}, seed={self._seed})"
        )
