"""Partitioned Bloom filter.

Each of the ``k`` hash functions owns a disjoint slice of ``m/k`` bits.  Partitioned
filters have slightly worse false-positive rates than the classic layout but make the
per-hash behaviour independent, which simplifies analysis and is the layout several
distributed deployments use.  Included as an ablation baseline for the substrate.
"""

from __future__ import annotations

from typing import Iterable

from repro.bloom.bitset import BitArray
from repro.bloom.hashing import HashFamily
from repro.utils.validation import require_positive


class PartitionedBloomFilter:
    """Bloom filter whose bit array is split into one partition per hash function."""

    def __init__(self, bit_count: int, hash_count: int, seed: int = 0) -> None:
        require_positive(bit_count, "bit_count")
        require_positive(hash_count, "hash_count")
        if bit_count < hash_count:
            raise ValueError(
                f"bit_count ({bit_count}) must be >= hash_count ({hash_count})"
            )
        self._partition_size = int(bit_count) // int(hash_count)
        self._hash_count = int(hash_count)
        self._partitions = [BitArray(self._partition_size) for _ in range(self._hash_count)]
        # One family with range = partition size; partition index doubles as the
        # per-hash salt via the item tuple below.
        self._hashes = HashFamily(1, self._partition_size, seed=seed)
        self._seed = int(seed)
        self._item_count = 0

    @property
    def bit_count(self) -> int:
        """Total number of bits across partitions."""
        return self._partition_size * self._hash_count

    @property
    def hash_count(self) -> int:
        """Number of hash functions / partitions ``k``."""
        return self._hash_count

    @property
    def partition_size(self) -> int:
        """Bits per partition."""
        return self._partition_size

    @property
    def item_count(self) -> int:
        """Number of items added."""
        return self._item_count

    def _position(self, item: object, partition: int) -> int:
        family = HashFamily(1, self._partition_size, seed=self._seed * 1_000_003 + partition)
        return family.positions(item)[0]

    def add(self, item: object) -> None:
        """Insert ``item`` (one bit per partition)."""
        for partition in range(self._hash_count):
            self._partitions[partition].set(self._position(item, partition))
        self._item_count += 1

    def add_many(self, items: Iterable[object]) -> None:
        """Insert every item of ``items``."""
        for item in items:
            self.add(item)

    def contains(self, item: object) -> bool:
        """Return True if ``item`` may be present."""
        return all(
            self._partitions[partition].get(self._position(item, partition))
            for partition in range(self._hash_count)
        )

    def __contains__(self, item: object) -> bool:
        return self.contains(item)

    def fill_ratio(self) -> float:
        """Average fraction of bits set across partitions."""
        return sum(p.count() for p in self._partitions) / self.bit_count

    def size_bytes(self) -> int:
        """Total serialized size across partitions."""
        return sum(p.size_bytes() for p in self._partitions)

    def __repr__(self) -> str:
        return (
            f"PartitionedBloomFilter(m={self.bit_count}, k={self.hash_count}, "
            f"items={self._item_count})"
        )
