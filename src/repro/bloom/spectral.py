"""Spectral Bloom filter (Cohen & Matias, SIGMOD 2003).

Stores approximate multiplicities using the minimum-selection estimator.  The paper
cites spectral Bloom filters as prior art on improving Bloom-filter accuracy; it is
included in the substrate both for completeness and as a frequency-aware baseline in
ablation benchmarks.
"""

from __future__ import annotations

from typing import Iterable

from repro.bloom.hashing import HashFamily
from repro.utils.validation import require_positive


class SpectralBloomFilter:
    """Bloom filter variant that answers approximate frequency queries."""

    def __init__(self, bit_count: int, hash_count: int, seed: int = 0) -> None:
        require_positive(bit_count, "bit_count")
        require_positive(hash_count, "hash_count")
        self._counters = [0] * int(bit_count)
        self._hashes = HashFamily(hash_count, bit_count, seed=seed)
        self._item_count = 0

    @property
    def bit_count(self) -> int:
        """Number of counters ``m``."""
        return len(self._counters)

    @property
    def hash_count(self) -> int:
        """Number of hash functions ``k``."""
        return self._hashes.hash_count

    @property
    def item_count(self) -> int:
        """Total number of insertions."""
        return self._item_count

    def add(self, item: object, count: int = 1) -> None:
        """Insert ``item`` ``count`` times (minimal-increase update)."""
        require_positive(count, "count")
        positions = self._hashes.positions(item)
        current_minimum = min(self._counters[p] for p in positions)
        # Minimal-increase heuristic: only counters equal to the current minimum are
        # bumped, which tightens the frequency over-estimate versus naive increment.
        target = current_minimum + count
        for position in positions:
            if self._counters[position] < target:
                self._counters[position] = target
        self._item_count += count

    def add_many(self, items: Iterable[object]) -> None:
        """Insert every item of ``items`` once."""
        for item in items:
            self.add(item)

    def frequency(self, item: object) -> int:
        """Minimum-selection estimate of the multiplicity of ``item``.

        Never under-estimates the true count; over-estimates with probability equal
        to the false-positive rate of an equally sized plain Bloom filter.
        """
        return min(self._counters[p] for p in self._hashes.positions(item))

    def contains(self, item: object) -> bool:
        """Return True if ``item`` may have been added at least once."""
        return self.frequency(item) > 0

    def __contains__(self, item: object) -> bool:
        return self.contains(item)

    def size_bytes(self) -> int:
        """Serialized size assuming 4-byte counters."""
        return 4 * len(self._counters)

    def __repr__(self) -> str:
        return (
            f"SpectralBloomFilter(m={self.bit_count}, k={self.hash_count}, "
            f"items={self._item_count})"
        )
