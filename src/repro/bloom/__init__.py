"""Bloom-filter substrate.

This package provides the classic Bloom filter and several established variants
(counting, scalable, spectral, partitioned), plus the bit-set and hashing layers they
are built on.  The paper's own contribution — the Weighted Bloom Filter — lives in
:mod:`repro.core.wbf` and is built on the same substrate.
"""

from repro.bloom.analysis import (
    expected_false_positive_rate,
    fill_ratio,
    optimal_bit_count,
    optimal_hash_count,
    optimal_parameters,
)
from repro.bloom.backend import (
    BACKEND_CHOICES,
    HAS_NUMPY,
    BackendUnavailableError,
    BitBackend,
    BytearrayBackend,
    NumpyBackend,
    available_backends,
    make_backend,
    resolve_backend_class,
)
from repro.bloom.bitset import BitArray
from repro.bloom.counting import CountingBloomFilter
from repro.bloom.hashing import HashFamily
from repro.bloom.partitioned import PartitionedBloomFilter
from repro.bloom.scalable import ScalableBloomFilter
from repro.bloom.spectral import SpectralBloomFilter
from repro.bloom.standard import BloomFilter

__all__ = [
    "BACKEND_CHOICES",
    "HAS_NUMPY",
    "BackendUnavailableError",
    "BitArray",
    "BitBackend",
    "BloomFilter",
    "BytearrayBackend",
    "NumpyBackend",
    "available_backends",
    "make_backend",
    "resolve_backend_class",
    "CountingBloomFilter",
    "HashFamily",
    "PartitionedBloomFilter",
    "ScalableBloomFilter",
    "SpectralBloomFilter",
    "expected_false_positive_rate",
    "fill_ratio",
    "optimal_bit_count",
    "optimal_hash_count",
    "optimal_parameters",
]
