"""Pluggable bit-storage backends for the Bloom-filter substrate.

Every Bloom-filter variant stores its bits through a :class:`BitBackend`.  Two
implementations are provided:

* :class:`BytearrayBackend` — the original dependency-free implementation, one
  byte per 8 bits in a ``bytearray``.  Always available.
* :class:`NumpyBackend` — bits packed into little-endian ``uint64`` words in a
  NumPy array; batched set/test/popcount/union run word-wise over the whole
  array instead of bit-by-bit in Python.  Available only when NumPy is
  importable.

Both backends expose the same canonical bit layout — bit ``i`` lives at byte
``i >> 3``, position ``i & 7`` — so :meth:`BitBackend.to_bytes` is identical
across backends for identical bit sets, serialized sizes match the
communication-cost model exactly, and filters built on different backends are
interchangeable on the wire.

Backends are selected by name (``"python"``, ``"numpy"`` or ``"auto"``) via
:func:`resolve_backend`; ``"auto"`` prefers NumPy and silently falls back to the
pure-Python backend when NumPy is absent, which is what
:class:`~repro.core.config.DIMatchingConfig` uses by default.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

from repro.utils.validation import require_positive

try:  # pragma: no cover - exercised indirectly through backend selection
    import numpy as _np
except ImportError:  # pragma: no cover - the CI matrix covers the no-NumPy leg
    _np = None

HAS_NUMPY = _np is not None

#: Backend names accepted by :func:`resolve_backend` and ``DIMatchingConfig``.
BACKEND_CHOICES = ("auto", "python", "numpy")


def iter_set_bits_in_bytes(data: bytes, bit_count: int) -> Iterator[int]:
    """Yield set-bit indices of a canonical bit buffer in ascending order.

    Works on the raw byte layout (bit ``i`` at byte ``i >> 3``, position
    ``i & 7``) so callers that hold serialized bits — the wire codec, a backend
    — share one definition of "set bits".
    """
    for byte_index, byte in enumerate(data):
        if not byte:
            continue
        base = byte_index << 3
        for offset in range(8):
            if byte & (1 << offset):
                index = base + offset
                if index < bit_count:
                    yield index


class BackendUnavailableError(RuntimeError):
    """Raised when an explicitly requested backend cannot be constructed."""


class BitBackend(ABC):
    """Abstract fixed-length bit store with batched operations.

    Concrete backends must keep the canonical byte layout of :meth:`to_bytes`
    (bit ``i`` at byte ``i >> 3``, bit ``i & 7``) so that serialization, equality
    and cost accounting are backend-independent.
    """

    name: str = "abstract"

    __slots__ = ("_length",)

    def __init__(self, length: int) -> None:
        require_positive(length, "length")
        self._length = int(length)

    @property
    def length(self) -> int:
        """Number of addressable bits."""
        return self._length

    # -- single-bit operations -------------------------------------------------

    @abstractmethod
    def get(self, index: int) -> bool:
        """Return True if the bit at ``index`` is set."""

    @abstractmethod
    def set(self, index: int) -> bool:
        """Set the bit at ``index``; return True if it was previously clear."""

    @abstractmethod
    def clear(self, index: int) -> None:
        """Clear the bit at ``index``."""

    # -- batched operations ----------------------------------------------------

    def set_many(self, indices: Sequence[int]) -> None:
        """Set every bit in ``indices`` (duplicates allowed)."""
        for index in indices:
            self.set(index)

    def get_many(self, indices: Sequence[int]) -> list[bool]:
        """Return the value of every bit in ``indices``, in order."""
        return [self.get(index) for index in indices]

    def all_set_rows(self, rows: Sequence[Sequence[int]]) -> list[bool]:
        """For each row of bit indices, return True iff *every* bit is set.

        This is the membership-probe primitive: a Bloom probe of ``n`` items with
        ``k`` hashes is one ``n × k`` row test.  Rows must be non-empty and of
        uniform length for the vectorized backend to batch them.
        """
        return [all(self.get(index) for index in row) for row in rows]

    # -- aggregate operations --------------------------------------------------

    @abstractmethod
    def count(self) -> int:
        """Return the number of set bits (population count)."""

    @abstractmethod
    def union_with(self, other: "BitBackend") -> "BitBackend":
        """Return a new backend holding the bitwise OR of both bit sets."""

    @abstractmethod
    def intersection_with(self, other: "BitBackend") -> "BitBackend":
        """Return a new backend holding the bitwise AND of both bit sets."""

    @abstractmethod
    def copy(self) -> "BitBackend":
        """Return a deep copy."""

    # -- serialization ---------------------------------------------------------

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Canonical serialization: ``(length + 7) // 8`` bytes, bit ``i`` at
        byte ``i >> 3`` position ``i & 7``."""

    @classmethod
    @abstractmethod
    def from_bytes(cls, length: int, data: bytes) -> "BitBackend":
        """Reconstruct a backend from :meth:`to_bytes` output."""

    def size_bytes(self) -> int:
        """Serialized size charged by the communication/storage cost model.

        Deliberately the canonical wire size, not the in-memory footprint, so the
        cost model is identical across backends.
        """
        return (self._length + 7) // 8

    def iter_set_bits(self) -> Iterator[int]:
        """Yield indices of set bits in increasing order."""
        return iter_set_bits_in_bytes(self.to_bytes(), self._length)

    # -- helpers ---------------------------------------------------------------

    def _check_index(self, index: int) -> int:
        if not isinstance(index, int) or isinstance(index, bool):
            raise TypeError(f"bit index must be an int, got {type(index).__name__}")
        if index < 0 or index >= self._length:
            raise IndexError(f"bit index {index} out of range [0, {self._length})")
        return index

    def _check_compatible(self, other: "BitBackend") -> None:
        if not isinstance(other, BitBackend):
            raise TypeError(f"expected BitBackend, got {type(other).__name__}")
        if other.length != self._length:
            raise ValueError(
                f"bit backends have different lengths: {self._length} vs {other.length}"
            )


class BytearrayBackend(BitBackend):
    """Dependency-free backend: one ``bytearray`` byte per 8 bits."""

    name = "python"

    __slots__ = ("_buffer",)

    def __init__(self, length: int) -> None:
        super().__init__(length)
        self._buffer = bytearray((self._length + 7) // 8)

    def get(self, index: int) -> bool:
        index = self._check_index(index)
        return bool(self._buffer[index >> 3] & (1 << (index & 7)))

    def set(self, index: int) -> bool:
        index = self._check_index(index)
        mask = 1 << (index & 7)
        byte = self._buffer[index >> 3]
        was_clear = not (byte & mask)
        self._buffer[index >> 3] = byte | mask
        return was_clear

    def clear(self, index: int) -> None:
        index = self._check_index(index)
        self._buffer[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def set_many(self, indices: Sequence[int]) -> None:
        buffer = self._buffer
        length = self._length
        for index in indices:
            if index < 0 or index >= length:
                self._check_index(index)
            buffer[index >> 3] |= 1 << (index & 7)

    def get_many(self, indices: Sequence[int]) -> list[bool]:
        buffer = self._buffer
        return [bool(buffer[index >> 3] & (1 << (index & 7))) for index in indices]

    def all_set_rows(self, rows: Sequence[Sequence[int]]) -> list[bool]:
        buffer = self._buffer
        return [
            all(buffer[index >> 3] & (1 << (index & 7)) for index in row)
            for row in rows
        ]

    def count(self) -> int:
        return sum(bin(byte).count("1") for byte in self._buffer)

    def union_with(self, other: BitBackend) -> "BytearrayBackend":
        self._check_compatible(other)
        result = self.copy()
        if isinstance(other, BytearrayBackend):
            other_buffer = other._buffer
        else:
            other_buffer = other.to_bytes()
        for i, byte in enumerate(other_buffer):
            result._buffer[i] |= byte
        return result

    def intersection_with(self, other: BitBackend) -> "BytearrayBackend":
        self._check_compatible(other)
        result = self.copy()
        if isinstance(other, BytearrayBackend):
            other_buffer = other._buffer
        else:
            other_buffer = other.to_bytes()
        for i, byte in enumerate(other_buffer):
            result._buffer[i] &= byte
        return result

    def copy(self) -> "BytearrayBackend":
        clone = BytearrayBackend(self._length)
        clone._buffer[:] = self._buffer
        return clone

    def to_bytes(self) -> bytes:
        return bytes(self._buffer)

    @classmethod
    def from_bytes(cls, length: int, data: bytes) -> "BytearrayBackend":
        backend = cls(length)
        expected = (int(length) + 7) // 8
        if len(data) != expected:
            raise ValueError(f"expected {expected} bytes for {length} bits, got {len(data)}")
        backend._buffer[:] = data
        return backend


class NumpyBackend(BitBackend):
    """Vectorized backend: bits packed into little-endian ``uint64`` words.

    Batched operations (``set_many``, ``get_many``, ``all_set_rows``, ``count``,
    union/intersection) run as whole-array NumPy expressions; single-bit
    operations are still O(1) but carry NumPy scalar overhead, so callers on hot
    paths should prefer the batched entry points.
    """

    name = "numpy"

    __slots__ = ("_words",)

    def __init__(self, length: int) -> None:
        if _np is None:
            raise BackendUnavailableError(
                "the 'numpy' bit backend requires NumPy, which is not installed; "
                "use backend='python' or 'auto'"
            )
        super().__init__(length)
        self._words = _np.zeros((self._length + 63) // 64, dtype="<u8")

    def get(self, index: int) -> bool:
        index = self._check_index(index)
        return bool((int(self._words[index >> 6]) >> (index & 63)) & 1)

    def set(self, index: int) -> bool:
        index = self._check_index(index)
        mask = 1 << (index & 63)
        word = int(self._words[index >> 6])
        was_clear = not (word & mask)
        self._words[index >> 6] = word | mask
        return was_clear

    def clear(self, index: int) -> None:
        index = self._check_index(index)
        self._words[index >> 6] = int(self._words[index >> 6]) & ~(1 << (index & 63))

    def _as_indices(self, indices: Sequence[int]) -> "_np.ndarray":
        idx = _np.asarray(indices, dtype=_np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self._length):
            bad = idx[(idx < 0) | (idx >= self._length)][0]
            raise IndexError(f"bit index {int(bad)} out of range [0, {self._length})")
        return idx

    def set_many(self, indices: Sequence[int]) -> None:
        idx = self._as_indices(indices)
        if not idx.size:
            return
        masks = _np.left_shift(_np.uint64(1), (idx & 63).astype("<u8"))
        # bitwise_or.at handles duplicate word indices within one batch.
        _np.bitwise_or.at(self._words, idx >> 6, masks)

    def get_many(self, indices: Sequence[int]) -> list[bool]:
        idx = self._as_indices(indices)
        if not idx.size:
            return []
        bits = (self._words[idx >> 6] >> (idx & 63).astype("<u8")) & _np.uint64(1)
        return bits.astype(bool).tolist()

    def all_set_rows(self, rows: Sequence[Sequence[int]]) -> list[bool]:
        if not len(rows):
            return []
        try:
            idx = _np.asarray(rows, dtype=_np.int64)
        except ValueError:
            # Ragged rows (differing hash counts) fall back to the generic path.
            return super().all_set_rows(rows)
        if idx.ndim != 2:
            return super().all_set_rows(rows)
        if idx.size and (idx.min() < 0 or idx.max() >= self._length):
            bad = idx[(idx < 0) | (idx >= self._length)].flat[0]
            raise IndexError(f"bit index {int(bad)} out of range [0, {self._length})")
        bits = (self._words[idx >> 6] >> (idx & 63).astype("<u8")) & _np.uint64(1)
        return bits.all(axis=1).tolist()

    def count(self) -> int:
        if hasattr(_np, "bitwise_count"):
            return int(_np.bitwise_count(self._words).sum())
        return int(_np.unpackbits(self._words.view(_np.uint8)).sum())

    def union_with(self, other: BitBackend) -> "NumpyBackend":
        self._check_compatible(other)
        result = self.copy()
        if isinstance(other, NumpyBackend):
            result._words |= other._words
        else:
            result._words |= NumpyBackend.from_bytes(self._length, other.to_bytes())._words
        return result

    def intersection_with(self, other: BitBackend) -> "NumpyBackend":
        self._check_compatible(other)
        result = self.copy()
        if isinstance(other, NumpyBackend):
            result._words &= other._words
        else:
            result._words &= NumpyBackend.from_bytes(self._length, other.to_bytes())._words
        return result

    def copy(self) -> "NumpyBackend":
        clone = NumpyBackend(self._length)
        clone._words[:] = self._words
        return clone

    def to_bytes(self) -> bytes:
        # Little-endian words give the canonical byte layout directly: byte j of
        # the word stream is exactly byte j of the bit stream.
        return self._words.tobytes()[: (self._length + 7) // 8]

    @classmethod
    def from_bytes(cls, length: int, data: bytes) -> "NumpyBackend":
        backend = cls(length)
        expected = (int(length) + 7) // 8
        if len(data) != expected:
            raise ValueError(f"expected {expected} bytes for {length} bits, got {len(data)}")
        padded = bytes(data) + b"\x00" * (backend._words.nbytes - len(data))
        backend._words[:] = _np.frombuffer(padded, dtype="<u8")
        return backend


def available_backends() -> tuple[str, ...]:
    """Names of the concrete backends constructible in this environment."""
    return ("python", "numpy") if HAS_NUMPY else ("python",)


def resolve_backend_class(name: str) -> type[BitBackend]:
    """Map a backend name to its class.

    ``"auto"`` prefers the NumPy backend and falls back to the pure-Python one
    when NumPy is absent; asking for ``"numpy"`` explicitly without NumPy raises
    :class:`BackendUnavailableError`.
    """
    if name == "auto":
        return NumpyBackend if HAS_NUMPY else BytearrayBackend
    if name == "python":
        return BytearrayBackend
    if name == "numpy":
        if not HAS_NUMPY:
            raise BackendUnavailableError(
                "backend 'numpy' requested but NumPy is not installed; "
                "install NumPy or use backend='auto'/'python'"
            )
        return NumpyBackend
    raise ValueError(f"unknown bit backend {name!r}; choose from {BACKEND_CHOICES}")


def make_backend(length: int, backend: "str | BitBackend" = "auto") -> BitBackend:
    """Construct a backend of ``length`` bits from a name or pass one through."""
    if isinstance(backend, BitBackend):
        if backend.length != length:
            raise ValueError(
                f"provided backend has {backend.length} bits, expected {length}"
            )
        return backend
    return resolve_backend_class(backend)(length)
