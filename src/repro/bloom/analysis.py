"""False-positive analysis and parameter sizing for Bloom filters.

These are the standard closed-form results: for a filter of ``m`` bits, ``k`` hash
functions and ``n`` inserted items, the probability that a particular bit is still 0
is ``p = (1 - 1/m)^(kn) ≈ e^(-kn/m)`` and the false-positive probability is
``(1 - p)^k``.  The paper's Table I uses the same ``m``, ``k``, ``p`` notation.
"""

from __future__ import annotations

import math

from repro.utils.validation import require_non_negative, require_positive, require_probability


def probability_bit_zero(bit_count: int, hash_count: int, item_count: int) -> float:
    """Probability ``p`` that a given bit is still 0 after ``item_count`` insertions."""
    require_positive(bit_count, "bit_count")
    require_positive(hash_count, "hash_count")
    require_non_negative(item_count, "item_count")
    return (1.0 - 1.0 / bit_count) ** (hash_count * item_count)


def fill_ratio(bit_count: int, hash_count: int, item_count: int) -> float:
    """Expected fraction of bits set after ``item_count`` insertions."""
    return 1.0 - probability_bit_zero(bit_count, hash_count, item_count)


def expected_false_positive_rate(bit_count: int, hash_count: int, item_count: int) -> float:
    """Expected false-positive probability ``(1 - p)^k``."""
    return fill_ratio(bit_count, hash_count, item_count) ** hash_count


def optimal_hash_count(bit_count: int, item_count: int) -> int:
    """Optimal number of hash functions ``k = (m/n) ln 2`` (at least 1)."""
    require_positive(bit_count, "bit_count")
    require_positive(item_count, "item_count")
    return max(1, round((bit_count / item_count) * math.log(2)))


def optimal_bit_count(item_count: int, target_false_positive_rate: float) -> int:
    """Minimum filter size ``m = -n ln(f) / (ln 2)^2`` for a target FP rate ``f``."""
    require_positive(item_count, "item_count")
    require_probability(target_false_positive_rate, "target_false_positive_rate")
    if target_false_positive_rate in (0.0, 1.0):
        raise ValueError("target_false_positive_rate must be strictly between 0 and 1")
    bits = -item_count * math.log(target_false_positive_rate) / (math.log(2) ** 2)
    return max(1, math.ceil(bits))


def optimal_parameters(item_count: int, target_false_positive_rate: float) -> tuple[int, int]:
    """Return ``(m, k)`` sized for ``item_count`` items at the target FP rate."""
    bit_count = optimal_bit_count(item_count, target_false_positive_rate)
    return bit_count, optimal_hash_count(bit_count, item_count)
