"""Compact bit array used as the backing store for every Bloom-filter variant.

The paper's reproduction hint suggests the ``bitarray`` package; instead the
storage is pluggable (see :mod:`repro.bloom.backend`): a dependency-free
``bytearray`` backend that is always available, and a vectorized NumPy
``uint64``-word backend used automatically when NumPy is installed.  The class
supports the API the filters need — get/set/clear a bit, batched set/test,
population count, union/intersection, and serialized size accounting for the
communication-cost model — and delegates each operation to its backend.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.bloom.backend import BitBackend, make_backend


class BitArray:
    """A fixed-length array of bits backed by a pluggable :class:`BitBackend`.

    The default backend is the dependency-free pure-Python one so that bare
    ``BitArray`` construction never depends on NumPy; the Bloom filters pass the
    configured backend name (``"auto"`` by default) explicitly.
    """

    __slots__ = ("_backend",)

    def __init__(self, length: int, backend: str | BitBackend = "python") -> None:
        self._backend = make_backend(length, backend)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_indices(
        cls,
        length: int,
        indices: Iterator[int] | list[int],
        backend: str | BitBackend = "python",
    ) -> "BitArray":
        """Create a bit array of ``length`` bits with the given indices set."""
        bits = cls(length, backend=backend)
        bits.set_many(list(indices))
        return bits

    @classmethod
    def from_bytes(
        cls, length: int, data: bytes, backend: str = "python"
    ) -> "BitArray":
        """Reconstruct a bit array from its canonical serialization.

        ``data`` must be exactly ``(length + 7) // 8`` bytes in the canonical
        layout of :meth:`to_bytes`; ``backend`` selects the storage backend the
        bits are materialized on (a local choice — the bytes are backend-free).
        """
        from repro.bloom.backend import resolve_backend_class

        return cls._wrap(resolve_backend_class(backend).from_bytes(length, data))

    @classmethod
    def _wrap(cls, backend: BitBackend) -> "BitArray":
        bits = cls.__new__(cls)
        bits._backend = backend
        return bits

    def copy(self) -> "BitArray":
        """Return a deep copy of this bit array (same backend)."""
        return BitArray._wrap(self._backend.copy())

    # -- backend introspection -------------------------------------------------

    @property
    def backend(self) -> BitBackend:
        """The underlying storage backend."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the storage backend ("python" or "numpy")."""
        return self._backend.name

    # -- core bit operations --------------------------------------------------

    def get(self, index: int) -> bool:
        """Return True if the bit at ``index`` is set."""
        return self._backend.get(index)

    def set(self, index: int) -> bool:
        """Set the bit at ``index``; return True if it was previously clear."""
        return self._backend.set(index)

    def clear(self, index: int) -> None:
        """Clear the bit at ``index``."""
        self._backend.clear(index)

    # -- batched bit operations ------------------------------------------------

    def set_many(self, indices: Sequence[int]) -> None:
        """Set every bit in ``indices`` in one backend call."""
        self._backend.set_many(indices)

    def get_many(self, indices: Sequence[int]) -> list[bool]:
        """Return the value of every bit in ``indices``, in order."""
        return self._backend.get_many(indices)

    def all_set_rows(self, rows: Sequence[Sequence[int]]) -> list[bool]:
        """For each row of indices, True iff every bit of the row is set."""
        return self._backend.all_set_rows(rows)

    def __getitem__(self, index: int) -> bool:
        return self._backend.get(index)

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self._backend.set(index)
        else:
            self._backend.clear(index)

    def __len__(self) -> int:
        return self._backend.length

    # -- aggregate operations -------------------------------------------------

    def count(self) -> int:
        """Return the number of set bits (population count)."""
        return self._backend.count()

    def iter_set_bits(self) -> Iterator[int]:
        """Yield indices of set bits in increasing order."""
        return self._backend.iter_set_bits()

    def union(self, other: "BitArray") -> "BitArray":
        """Return a new bit array that is the bitwise OR of self and other."""
        self._check_compatible(other)
        return BitArray._wrap(self._backend.union_with(other._backend))

    def intersection(self, other: "BitArray") -> "BitArray":
        """Return a new bit array that is the bitwise AND of self and other."""
        self._check_compatible(other)
        return BitArray._wrap(self._backend.intersection_with(other._backend))

    def _check_compatible(self, other: "BitArray") -> None:
        if not isinstance(other, BitArray):
            raise TypeError(f"expected BitArray, got {type(other).__name__}")
        if len(other) != len(self):
            raise ValueError(
                f"bit arrays have different lengths: {len(self)} vs {len(other)}"
            )

    def __or__(self, other: "BitArray") -> "BitArray":
        return self.union(other)

    def __and__(self, other: "BitArray") -> "BitArray":
        return self.intersection(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        # Compare canonical bytes so arrays on different backends compare equal.
        return len(self) == len(other) and self.to_bytes() == other.to_bytes()

    def __hash__(self) -> int:  # pragma: no cover - BitArray is mutable; not hashable
        raise TypeError("BitArray is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"BitArray(length={len(self)}, set={self.count()}, "
            f"backend={self.backend_name!r})"
        )

    # -- serialization and cost accounting ------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical serialization (backend-independent byte layout)."""
        return self._backend.to_bytes()

    def size_bytes(self) -> int:
        """Serialized size used by the communication/storage cost model."""
        return self._backend.size_bytes()
