"""Compact bit array used as the backing store for every Bloom-filter variant.

The paper's reproduction hint suggests the ``bitarray`` package; to keep the library
dependency-free we implement an equivalent fixed-size bit set on top of a
``bytearray``.  The class supports the small API the filters need: get/set/clear a
bit, population count, union/intersection, and serialized size accounting for the
communication-cost model.
"""

from __future__ import annotations

from typing import Iterator

from repro.utils.validation import require_positive


class BitArray:
    """A fixed-length array of bits backed by a ``bytearray``."""

    __slots__ = ("_length", "_buffer")

    def __init__(self, length: int) -> None:
        require_positive(length, "length")
        self._length = int(length)
        self._buffer = bytearray((self._length + 7) // 8)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_indices(cls, length: int, indices: Iterator[int] | list[int]) -> "BitArray":
        """Create a bit array of ``length`` bits with the given indices set."""
        bits = cls(length)
        for index in indices:
            bits.set(index)
        return bits

    def copy(self) -> "BitArray":
        """Return a deep copy of this bit array."""
        clone = BitArray(self._length)
        clone._buffer[:] = self._buffer
        return clone

    # -- core bit operations --------------------------------------------------

    def _check_index(self, index: int) -> int:
        if not isinstance(index, int) or isinstance(index, bool):
            raise TypeError(f"bit index must be an int, got {type(index).__name__}")
        if index < 0 or index >= self._length:
            raise IndexError(f"bit index {index} out of range [0, {self._length})")
        return index

    def get(self, index: int) -> bool:
        """Return True if the bit at ``index`` is set."""
        index = self._check_index(index)
        return bool(self._buffer[index >> 3] & (1 << (index & 7)))

    def set(self, index: int) -> bool:
        """Set the bit at ``index``; return True if it was previously clear."""
        index = self._check_index(index)
        mask = 1 << (index & 7)
        byte = self._buffer[index >> 3]
        was_clear = not (byte & mask)
        self._buffer[index >> 3] = byte | mask
        return was_clear

    def clear(self, index: int) -> None:
        """Clear the bit at ``index``."""
        index = self._check_index(index)
        self._buffer[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def __len__(self) -> int:
        return self._length

    # -- aggregate operations -------------------------------------------------

    def count(self) -> int:
        """Return the number of set bits (population count)."""
        return sum(bin(byte).count("1") for byte in self._buffer)

    def iter_set_bits(self) -> Iterator[int]:
        """Yield indices of set bits in increasing order."""
        for byte_index, byte in enumerate(self._buffer):
            if not byte:
                continue
            base = byte_index << 3
            for bit in range(8):
                if byte & (1 << bit):
                    index = base + bit
                    if index < self._length:
                        yield index

    def union(self, other: "BitArray") -> "BitArray":
        """Return a new bit array that is the bitwise OR of self and other."""
        self._check_compatible(other)
        result = self.copy()
        for i, byte in enumerate(other._buffer):
            result._buffer[i] |= byte
        return result

    def intersection(self, other: "BitArray") -> "BitArray":
        """Return a new bit array that is the bitwise AND of self and other."""
        self._check_compatible(other)
        result = self.copy()
        for i, byte in enumerate(other._buffer):
            result._buffer[i] &= byte
        return result

    def _check_compatible(self, other: "BitArray") -> None:
        if not isinstance(other, BitArray):
            raise TypeError(f"expected BitArray, got {type(other).__name__}")
        if len(other) != self._length:
            raise ValueError(
                f"bit arrays have different lengths: {self._length} vs {len(other)}"
            )

    def __or__(self, other: "BitArray") -> "BitArray":
        return self.union(other)

    def __and__(self, other: "BitArray") -> "BitArray":
        return self.intersection(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._length == other._length and self._buffer == other._buffer

    def __hash__(self) -> int:  # pragma: no cover - BitArray is mutable; not hashable
        raise TypeError("BitArray is mutable and unhashable")

    def __repr__(self) -> str:
        return f"BitArray(length={self._length}, set={self.count()})"

    # -- cost accounting ------------------------------------------------------

    def size_bytes(self) -> int:
        """Serialized size used by the communication/storage cost model."""
        return len(self._buffer)
