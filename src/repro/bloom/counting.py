"""Counting Bloom filter.

Replaces each bit with a small counter so that items can be removed.  DI-matching
itself uses an immutable filter per query round, but the counting variant is part of
the substrate because dynamic deployments (continuously evolving query pattern sets,
Characteristic 2 of the paper) need deletion support; it also serves as an ablation
point in the benchmarks.
"""

from __future__ import annotations

from typing import Iterable

from repro.bloom.analysis import expected_false_positive_rate
from repro.bloom.hashing import HashFamily
from repro.utils.validation import require_positive


class CountingBloomFilter:
    """Bloom filter with per-position counters, supporting removal."""

    def __init__(
        self,
        bit_count: int,
        hash_count: int,
        seed: int = 0,
        counter_width_bits: int = 4,
    ) -> None:
        require_positive(bit_count, "bit_count")
        require_positive(hash_count, "hash_count")
        require_positive(counter_width_bits, "counter_width_bits")
        self._counters = [0] * int(bit_count)
        self._hashes = HashFamily(hash_count, bit_count, seed=seed)
        self._item_count = 0
        self._counter_max = (1 << counter_width_bits) - 1
        self._counter_width_bits = counter_width_bits

    @property
    def bit_count(self) -> int:
        """Number of counters ``m``."""
        return len(self._counters)

    @property
    def hash_count(self) -> int:
        """Number of hash functions ``k``."""
        return self._hashes.hash_count

    @property
    def item_count(self) -> int:
        """Number of items currently stored (adds minus removes)."""
        return self._item_count

    def add(self, item: object) -> None:
        """Insert ``item``; counters saturate at the maximum counter value."""
        for position in self._hashes.positions(item):
            if self._counters[position] < self._counter_max:
                self._counters[position] += 1
        self._item_count += 1

    def add_many(self, items: Iterable[object]) -> None:
        """Insert every item of ``items``."""
        for item in items:
            self.add(item)

    def remove(self, item: object) -> bool:
        """Remove one occurrence of ``item``.

        Returns False (and does not modify the filter) if ``item`` is definitely not
        present.  Removing items that were never added can introduce false negatives,
        as with any counting Bloom filter; callers are expected to only remove items
        they previously added.
        """
        positions = self._hashes.positions(item)
        if not all(self._counters[p] > 0 for p in positions):
            return False
        for position in positions:
            if self._counters[position] < self._counter_max:
                # Saturated counters are never decremented (standard CBF behaviour);
                # this keeps the no-false-negative guarantee at the cost of residue.
                self._counters[position] -= 1
        self._item_count = max(0, self._item_count - 1)
        return True

    def contains(self, item: object) -> bool:
        """Return True if ``item`` may be present."""
        return all(self._counters[p] > 0 for p in self._hashes.positions(item))

    def __contains__(self, item: object) -> bool:
        return self.contains(item)

    def count_estimate(self, item: object) -> int:
        """Minimum-counter estimate of how many times ``item`` was added."""
        return min(self._counters[p] for p in self._hashes.positions(item))

    def fill_ratio(self) -> float:
        """Fraction of counters that are non-zero."""
        return sum(1 for c in self._counters if c > 0) / len(self._counters)

    def estimated_false_positive_rate(self) -> float:
        """Theoretical false-positive probability for the current item count."""
        return expected_false_positive_rate(
            bit_count=self.bit_count,
            hash_count=self.hash_count,
            item_count=self._item_count,
        )

    def size_bytes(self) -> int:
        """Serialized size: ``m`` counters of the configured width."""
        return (len(self._counters) * self._counter_width_bits + 7) // 8

    def __repr__(self) -> str:
        return (
            f"CountingBloomFilter(m={self.bit_count}, k={self.hash_count}, "
            f"items={self._item_count})"
        )
