"""The tier map: a concrete partition of one station order into regions.

:func:`build_tier_map` turns a :class:`~repro.topology.spec.TopologySpec`
plus the cluster's declared station order into the routing table a
hierarchical round runs over.  Regions are *contiguous slices* of the
station order — this is what makes two-tier rounds ranking-identical to
flat-star rounds: concatenating the regions' per-station report streams in
region order reproduces exactly the flat round's global station order, so
the aggregation phase sees the same input sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.exceptions import ConfigurationError
from repro.topology.spec import TopologySpec
from repro.wire import WIRE_VERSION, negotiate_wire_version


@dataclass(frozen=True)
class Region:
    """One regional slice: an aggregator and the stations behind it."""

    name: str
    aggregator_id: str
    #: The region's stations, a contiguous slice of the cluster order.
    station_ids: tuple[str, ...]
    #: Fault profile of the regional hop; ``None`` inherits the cluster plan.
    fault_profile: str | None = None
    #: Negotiated DIMW header version of the regional hop's payload frames.
    wire_version: int = WIRE_VERSION


@dataclass(frozen=True)
class TierMap:
    """The full routing table of a two-tier deployment."""

    regions: tuple[Region, ...]
    #: Negotiated version of the aggregator↔center trunk hop.
    trunk_wire_version: int = WIRE_VERSION

    def region_of(self, station_id: str) -> Region:
        """The region serving ``station_id``."""
        for region in self.regions:
            if station_id in region.station_ids:
                return region
        raise KeyError(f"station {station_id!r} belongs to no region")

    @property
    def aggregator_ids(self) -> tuple[str, ...]:
        """Every aggregator id, in region order."""
        return tuple(region.aggregator_id for region in self.regions)


def region_slices(station_count: int, spec: TopologySpec) -> list[tuple[int, int]]:
    """The ``[start, stop)`` slice of each region over ``station_count`` stations.

    Balanced mode spreads the remainder over the leading regions (sizes
    differ by at most one); explicit ``stations_per_region`` cuts fixed-width
    slices, with the last region taking the remainder.  Raises
    :class:`ConfigurationError` when the partition cannot cover the station
    order with the declared region count.
    """
    regions = spec.regions
    if regions > station_count:
        raise ConfigurationError(
            f"topology declares {regions} regions but the deployment has only "
            f"{station_count} stations; regions must not exceed stations"
        )
    width = spec.stations_per_region
    if width is not None:
        if (regions - 1) * width >= station_count or regions * width < station_count:
            raise ConfigurationError(
                f"{regions} regions of {width} stations cannot cover "
                f"{station_count} stations exactly; adjust regions or "
                f"stations_per_region"
            )
        bounds = [min(index * width, station_count) for index in range(regions + 1)]
        bounds[-1] = station_count
    else:
        base, remainder = divmod(station_count, regions)
        bounds = [0]
        for index in range(regions):
            bounds.append(bounds[-1] + base + (1 if index < remainder else 0))
    return [(bounds[index], bounds[index + 1]) for index in range(regions)]


def build_tier_map(
    station_order: Sequence[str], spec: TopologySpec
) -> TierMap:
    """Partition ``station_order`` into the spec's regional tier.

    Each region's hop version is negotiated between the version the upgraded
    components write and what the region's stations can read (legacy regions
    advertise only version 1); the trunk hop runs at the upgraded version,
    since center and aggregators upgrade together.
    """
    if not spec.is_hierarchical:
        raise ConfigurationError(
            f"a {spec.kind!r} topology has no tier map; only two-tier "
            "deployments route through regions"
        )
    order = [str(station_id) for station_id in station_order]
    regions = []
    for index, (start, stop) in enumerate(region_slices(len(order), spec)):
        name = spec.region_name(index)
        advertised = [spec.wire_version]
        if name in spec.legacy_regions:
            advertised.append(WIRE_VERSION)
        regions.append(
            Region(
                name=name,
                aggregator_id=f"aggregator-{index}",
                station_ids=tuple(order[start:stop]),
                fault_profile=(
                    spec.degraded_profile if name in spec.degraded_regions else None
                ),
                wire_version=negotiate_wire_version(advertised),
            )
        )
    return TierMap(regions=tuple(regions), trunk_wire_version=spec.wire_version)
