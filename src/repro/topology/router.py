"""The two-tier round engine: center ⇄ regional aggregators ⇄ stations.

:func:`run_two_tier_round` drives one hierarchical matching round over the
same :class:`~repro.distributed.transport.base.Transport` contract the flat
engine uses — one trunk transport for the aggregator↔center hop and one
transport per region for the aggregator↔stations hop — without changing the
frame protocol: every hop moves ordinary
:class:`~repro.distributed.messages.Message` envelopes, so both backends
(deterministic simulator and real TCP sockets) carry the regional tier
unmodified.

Phase order (the reverse tree of the flat round's two phases)::

    trunk downlink   center      → aggregators   (artifact, once per region)
    regional downlink aggregator → stations      (artifact fan-out)
    matching          sharded station runner, global station order
    regional uplink   stations   → aggregator    (per-station reports)
    trunk uplink      aggregator → center        (one deduplicated summary)

Regions are contiguous slices of the station order and every inbox is
consumed in canonical station/region order, so a fault-free two-tier round
feeds the aggregation phase exactly the flat round's report sequence — the
ranking-parity invariant the test suite pins across all four protocols.

Latency composes as ``trunk_down + max(regional_down) + max(regional_up) +
trunk_up``: the regional subtrees run in parallel (each region has its own
ingress link), while the trunk serializes at the center's ingress — which is
also why ``center_ingress_bytes`` (the trunk uplink) is the headline
quantity the hierarchy exists to shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.distributed.messages import Message, MessageKind
from repro.distributed.metrics import TierCost
from repro.topology.aggregator import RegionalAggregator
from repro.topology.tiers import Region, TierMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import MatchingProtocol
    from repro.distributed.basestation import BaseStationNode
    from repro.distributed.datacenter import DataCenterNode
    from repro.distributed.events import TranscriptEntry
    from repro.distributed.executor import ShardedStationRunner
    from repro.distributed.transport.base import Transport

#: Seed-derivation labels for the per-tier transports: every tier draws its
#: fault randomness from the round's net seed through its own label, so a
#: two-tier round is exactly as replayable as a flat one.
TRUNK_SEED_LABEL = "topology-trunk"
REGION_SEED_LABEL = "topology-region"


@dataclass
class TwoTierRoundResult:
    """Everything the facade needs to account one hierarchical round."""

    all_reports: list[object]
    active_stations: list["BaseStationNode"]
    lost_station_count: int
    tier_costs: tuple[TierCost, ...]
    downlink_bytes: int
    uplink_bytes: int
    message_count: int
    retransmit_count: int
    dropped_frame_count: int
    duplicate_frame_count: int
    corrupt_frame_count: int
    goodput_fraction: float
    transmission_time_s: float
    transcript: tuple["TranscriptEntry", ...]
    #: Decoded summary payload bytes that landed at the center (storage).
    summary_payload_bytes: int
    shard_times: list[float] = field(default_factory=list)
    shard_count: int = 0


def _artifact_message(
    sender: str, recipient: str, artifact: object | None, wire_version: int
) -> Message:
    # The naive method distributes no artifact: stations receive only a tiny
    # control trigger, exactly like the flat engine's downlink.
    return Message(
        sender=sender,
        recipient=recipient,
        kind=(
            MessageKind.FILTER_DISSEMINATION
            if artifact is not None
            else MessageKind.CONTROL
        ),
        payload=artifact,
        wire_version=wire_version,
    )


def run_two_tier_round(
    *,
    protocol: "MatchingProtocol",
    center: "DataCenterNode",
    tier_map: TierMap,
    participants: Sequence["BaseStationNode"],
    artifact: object | None,
    trunk_transport: "Transport",
    regional_transports: Mapping[str, "Transport"],
    runner: "ShardedStationRunner",
) -> TwoTierRoundResult:
    """Drive one full two-tier round and return its routed outcome.

    ``participants`` is the round's station set in the cluster's canonical
    order; ``regional_transports`` maps region names to the fresh per-round
    transports their hop runs over.  Raises
    :class:`~repro.distributed.events.RoundTimeoutError` exactly like the
    flat engine when a transfer exhausts its budget and the transports do
    not allow partial phases.
    """
    from repro.distributed.executor import merge_shard_outcomes

    by_region: dict[str, list["BaseStationNode"]] = {}
    for station in participants:
        region = tier_map.region_of(station.node_id)
        by_region.setdefault(region.name, []).append(station)
    # Regions participate in region order; a region none of whose stations
    # joined the round is skipped entirely (its cell is offline this round).
    active_regions: list[Region] = [
        region for region in tier_map.regions if by_region.get(region.name)
    ]

    center.clear_inbox()
    aggregators = {
        region.name: RegionalAggregator(region) for region in active_regions
    }

    # Phase 1a: trunk downlink — the artifact travels once per region, not
    # once per station; this hop always terminates at co-resident aggregators.
    trunk_down = trunk_transport.broadcast(
        [
            (
                _artifact_message(
                    center.node_id,
                    region.aggregator_id,
                    artifact,
                    tier_map.trunk_wire_version,
                ),
                aggregators[region.name],
            )
            for region in active_regions
        ]
    )
    lost_aggregators = set(trunk_down.failed_ids)
    lost_station_count = sum(
        len(by_region[region.name])
        for region in active_regions
        if region.aggregator_id in lost_aggregators
    )
    served_regions = [
        region
        for region in active_regions
        if region.aggregator_id not in lost_aggregators
    ]

    # Phase 1b: regional downlink — each surviving aggregator fans the
    # artifact it decoded out to its region's stations, in parallel across
    # regions (each region runs on its own transport with its own ingress).
    region_down_durations: list[float] = []
    active_stations: list["BaseStationNode"] = []
    for region in served_regions:
        aggregator = aggregators[region.name]
        relayed = _relayed_artifact(aggregator, artifact)
        outcome = regional_transports[region.name].broadcast(
            [
                (
                    _artifact_message(
                        region.aggregator_id,
                        station.node_id,
                        relayed,
                        region.wire_version,
                    ),
                    station,
                )
                for station in by_region[region.name]
            ]
        )
        region_down_durations.append(outcome.duration_s)
        lost = set(outcome.failed_ids)
        lost_station_count += len(lost)
        active_stations.extend(
            station
            for station in by_region[region.name]
            if station.node_id not in lost
        )

    # Phase 2: sharded matching against one decoded artifact instance, over
    # the concatenation of the regions' survivors — which, because regions
    # are contiguous slices, is the flat engine's global station order.
    matching_artifact = (
        active_stations[0].latest_artifact() if active_stations else artifact
    )
    shard_outcomes = runner.run(protocol, active_stations, matching_artifact)
    reports_by_station = merge_shard_outcomes(shard_outcomes)
    shard_times = [outcome.elapsed_s for outcome in shard_outcomes]
    active_ids = {station.node_id for station in active_stations}

    # Phase 3a: regional uplink — per-station reports into the region's
    # aggregator ingress, again in parallel across regions.
    region_up_durations: list[float] = []
    for region in served_regions:
        aggregator = aggregators[region.name]
        sends = [
            (
                Message(
                    sender=station.node_id,
                    recipient=region.aggregator_id,
                    kind=MessageKind.MATCH_REPORT,
                    payload=reports_by_station[station.node_id],
                    wire_version=region.wire_version,
                ),
                aggregator,
            )
            for station in by_region[region.name]
            if station.node_id in active_ids
        ]
        if not sends:
            continue
        outcome = regional_transports[region.name].gather(sends)
        region_up_durations.append(outcome.duration_s)
        lost_station_count += len(outcome.failed_ids)

    # Phase 3b: trunk uplink — one deduplicated summary per region, consumed
    # at the center in region order so reordering can never change rankings.
    summary_sends: list[tuple[Message, "DataCenterNode"]] = []
    for region in served_regions:
        summary = aggregators[region.name].summarize(
            [station.node_id for station in by_region[region.name]]
        )
        summary_sends.append(
            (
                Message(
                    sender=region.aggregator_id,
                    recipient=center.node_id,
                    kind=MessageKind.MATCH_REPORT,
                    payload=summary,
                    wire_version=tier_map.trunk_wire_version,
                ),
                center,
            )
        )
    trunk_up = trunk_transport.gather(summary_sends) if summary_sends else None
    failed_summaries = set(trunk_up.failed_ids) if trunk_up is not None else set()
    for region in served_regions:
        if region.aggregator_id in failed_summaries:
            # The whole region's reports never reached the center this round.
            lost_station_count += sum(
                1
                for station in by_region[region.name]
                if station.node_id in active_ids
            )

    decoded_by_sender = center.reports_by_sender()
    all_reports: list[object] = []
    summary_payload_bytes = 0
    for message, _receiver in summary_sends:
        if message.sender in decoded_by_sender:
            summary_payload_bytes += message.payload_bytes()
            all_reports.extend(decoded_by_sender[message.sender])

    tier_costs, totals = _tier_ledger(
        tier_map, served_regions, trunk_transport, regional_transports
    )
    transmission_time_s = (
        trunk_down.duration_s
        + max(region_down_durations, default=0.0)
        + max(region_up_durations, default=0.0)
        + (trunk_up.duration_s if trunk_up is not None else 0.0)
    )
    return TwoTierRoundResult(
        all_reports=all_reports,
        active_stations=active_stations,
        lost_station_count=lost_station_count,
        tier_costs=tier_costs,
        transmission_time_s=transmission_time_s,
        transcript=_composed_transcript(
            trunk_transport, [regional_transports[r.name] for r in served_regions]
        ),
        summary_payload_bytes=summary_payload_bytes,
        shard_times=shard_times,
        shard_count=len(shard_outcomes),
        **totals,
    )


@dataclass
class TwoTierDeltaResult:
    """Everything a delta session needs to settle one hierarchical shipment."""

    #: Stations whose delta reached the *center* (regional hop delivered AND
    #: the region's trunk summary delivered) — only these are marked clean.
    delivered_station_ids: tuple[str, ...]
    #: Per delivered station, the reports the aggregator decoded off the
    #: regional wire — the center-side state attribution for those stations.
    reports_by_station: dict[str, list[object]]
    #: Per delivered station, the payload wire bytes its delta occupied on
    #: the regional hop — what the session's shipped-bytes ledger records.
    payload_bytes_by_station: dict[str, int]
    tier_costs: tuple[TierCost, ...]
    uplink_bytes: int
    message_count: int
    retransmit_count: int
    dropped_frame_count: int
    duplicate_frame_count: int
    corrupt_frame_count: int
    goodput_fraction: float
    transmission_time_s: float
    transcript: tuple["TranscriptEntry", ...]
    lost_station_count: int


def ship_two_tier_deltas(
    *,
    center: "DataCenterNode",
    tier_map: TierMap,
    deltas: Mapping[str, Sequence[object]],
    trunk_transport: "Transport",
    regional_transports: Mapping[str, "Transport"],
) -> TwoTierDeltaResult:
    """Ship dirty stations' delta reports up the two-tier tree.

    The uplink half of :func:`run_two_tier_round`, for continuous sessions:
    each dirty station's cached reports travel to its regional aggregator,
    every region that received at least one delta re-encodes one deduplicated
    summary onto the trunk, and a station counts as *delivered* only when its
    region's summary reached the center — a delta stranded at an aggregator
    by a trunk fault stays dirty and re-ships next step, so the tree never
    silently loses an update.

    Raises :class:`~repro.distributed.events.RoundTimeoutError` like the flat
    :meth:`~repro.core.streaming.ContinuousMatchingSession.ship_deltas`; on a
    trunk-phase timeout the re-raised error's ``delivered_ids`` are *station*
    ids (the regions whose summary landed before the failure), so callers can
    settle exactly-once semantics at station granularity.
    """
    from repro.distributed.events import RoundTimeoutError

    dirty_regions = [
        region
        for region in tier_map.regions
        if any(sid in deltas for sid in region.station_ids)
    ]
    aggregators = {
        region.name: RegionalAggregator(region) for region in dirty_regions
    }
    center.clear_inbox()

    # Phase 1: regional uplink — deltas into each region's aggregator, in
    # canonical station order within the region.  A strict-network timeout
    # here aborts the shipment with nothing at the center, so no station is
    # marked delivered.
    region_up_durations: list[float] = []
    regional_sends: dict[str, list[tuple[Message, RegionalAggregator]]] = {}
    regional_delivered: dict[str, list[str]] = {}
    for region in dirty_regions:
        aggregator = aggregators[region.name]
        sends = [
            (
                Message(
                    sender=station_id,
                    recipient=region.aggregator_id,
                    kind=MessageKind.MATCH_REPORT,
                    payload=list(deltas[station_id]),
                    wire_version=region.wire_version,
                ),
                aggregator,
            )
            for station_id in region.station_ids
            if station_id in deltas
        ]
        regional_sends[region.name] = sends
        try:
            outcome = regional_transports[region.name].gather(sends)
        except RoundTimeoutError as error:
            raise RoundTimeoutError(
                f"regional delta uplink failed in {region.name}: {error}",
                failed_transfers=error.failed_transfers,
                delivered_ids=(),
            ) from error
        region_up_durations.append(outcome.duration_s)
        delivered = set(outcome.delivered_ids)
        regional_delivered[region.name] = [
            message.sender for message, _ in sends if message.sender in delivered
        ]

    # Phase 2: trunk uplink — one summary per region that received anything.
    summary_sends: list[tuple[Message, "DataCenterNode"]] = []
    stations_by_aggregator: dict[str, list[str]] = {}
    for region in dirty_regions:
        delivered_sids = regional_delivered[region.name]
        if not delivered_sids:
            continue
        summary = aggregators[region.name].summarize(delivered_sids)
        stations_by_aggregator[region.aggregator_id] = delivered_sids
        summary_sends.append(
            (
                Message(
                    sender=region.aggregator_id,
                    recipient=center.node_id,
                    kind=MessageKind.MATCH_REPORT,
                    payload=summary,
                    wire_version=tier_map.trunk_wire_version,
                ),
                center,
            )
        )
    trunk_duration = 0.0
    trunk_failed: set[str] = set()
    if summary_sends:
        try:
            trunk_up = trunk_transport.gather(summary_sends)
        except RoundTimeoutError as error:
            raise RoundTimeoutError(
                f"trunk delta uplink failed: {error}",
                failed_transfers=error.failed_transfers,
                delivered_ids=tuple(
                    station_id
                    for aggregator_id in error.delivered_ids
                    for station_id in stations_by_aggregator.get(aggregator_id, ())
                ),
            ) from error
        trunk_duration = trunk_up.duration_s
        trunk_failed = set(trunk_up.failed_ids)

    decoded_summaries = center.reports_by_sender()
    delivered_station_ids: list[str] = []
    reports_by_station: dict[str, list[object]] = {}
    payload_bytes_by_station: dict[str, int] = {}
    for region in dirty_regions:
        aggregator_id = region.aggregator_id
        if (
            aggregator_id not in stations_by_aggregator
            or aggregator_id in trunk_failed
            or aggregator_id not in decoded_summaries
        ):
            continue
        decoded_regional = aggregators[region.name].reports_by_sender()
        payload_sizes = {
            message.sender: message.payload_bytes()
            for message, _ in regional_sends[region.name]
        }
        for station_id in stations_by_aggregator[aggregator_id]:
            delivered_station_ids.append(station_id)
            reports_by_station[station_id] = list(
                decoded_regional.get(station_id, [])
            )
            payload_bytes_by_station[station_id] = payload_sizes[station_id]

    tier_costs, totals = _tier_ledger(
        tier_map, dirty_regions, trunk_transport, regional_transports
    )
    totals.pop("downlink_bytes")
    return TwoTierDeltaResult(
        delivered_station_ids=tuple(delivered_station_ids),
        reports_by_station=reports_by_station,
        payload_bytes_by_station=payload_bytes_by_station,
        tier_costs=tier_costs,
        transmission_time_s=(
            max(region_up_durations, default=0.0) + trunk_duration
        ),
        # Chronological for the uplink-only tree: regions first, trunk last.
        transcript=tuple(
            entry
            for transport in (
                [regional_transports[r.name] for r in dirty_regions]
                + [trunk_transport]
            )
            for entry in transport.transcript
        ),
        lost_station_count=len(deltas) - len(delivered_station_ids),
        **totals,
    )


def _relayed_artifact(
    aggregator: RegionalAggregator, artifact: object | None
) -> object | None:
    """The artifact instance the aggregator actually decoded off the trunk.

    Fault-free this equals the center's artifact byte-for-byte (the transport
    guarantees integrity), and sharing the decoded instance keeps the
    regional fan-out's encode memoized exactly like the flat broadcast.
    """
    for message in reversed(aggregator.inbox):
        if message.kind is MessageKind.FILTER_DISSEMINATION:
            return message.payload
    return artifact


def _tier_ledger(
    tier_map: TierMap,
    served_regions: Sequence[Region],
    trunk_transport: "Transport",
    regional_transports: Mapping[str, "Transport"],
) -> tuple[tuple[TierCost, ...], dict[str, object]]:
    """Per-tier cost breakdown plus the cross-tier totals."""
    tiers: list[TierCost] = []
    transports: list[tuple[str, int, "Transport"]] = [
        ("trunk", tier_map.trunk_wire_version, trunk_transport)
    ]
    transports.extend(
        (region.name, region.wire_version, regional_transports[region.name])
        for region in served_regions
    )
    payload_sent = payload_delivered = 0
    totals = dict(
        downlink_bytes=0,
        uplink_bytes=0,
        message_count=0,
        retransmit_count=0,
        dropped_frame_count=0,
        duplicate_frame_count=0,
        corrupt_frame_count=0,
    )
    for tier_name, wire_version, transport in transports:
        stats = transport.frame_stats()
        tiers.append(
            TierCost(
                tier=tier_name,
                downlink_bytes=transport.downlink_bytes,
                uplink_bytes=transport.uplink_bytes,
                message_count=transport.message_count,
                retransmit_count=stats.retransmit_count,
                dropped_frame_count=stats.frames_dropped,
                wire_version=wire_version,
            )
        )
        totals["downlink_bytes"] += transport.downlink_bytes
        totals["uplink_bytes"] += transport.uplink_bytes
        totals["message_count"] += transport.message_count
        totals["retransmit_count"] += stats.retransmit_count
        totals["dropped_frame_count"] += stats.frames_dropped
        totals["duplicate_frame_count"] += stats.frames_duplicate
        totals["corrupt_frame_count"] += stats.frames_corrupt
        payload_sent += stats.payload_bytes_sent
        payload_delivered += stats.payload_bytes_delivered
    totals["goodput_fraction"] = (
        payload_delivered / payload_sent if payload_sent else 1.0
    )
    return tuple(tiers), totals


def _composed_transcript(
    trunk_transport: "Transport", regional: Sequence["Transport"]
) -> tuple["TranscriptEntry", ...]:
    """One deterministic transcript for the whole tree.

    Composition order is trunk first, then each served region in region
    order — phase markers inside each transport's slice keep the downlink
    and uplink halves readable, and the order is a pure function of the tier
    map, never of delivery timing.
    """
    entries: list["TranscriptEntry"] = list(trunk_transport.transcript)
    for transport in regional:
        entries.extend(transport.transcript)
    return tuple(entries)
