"""Wire-version skew across a rolling upgrade of a two-tier deployment.

A codec upgrade never lands everywhere at once: stations re-image region by
region while the center and aggregators (one fleet, upgraded together) are
already writing the new header revision.  :class:`RollingUpgrade` models
that window as a deterministic schedule — after round ``r`` the first
``ceil(N * r / duration)`` stations of the canonical order run the new
build — and answers the only question the router needs: *which version does
each hop speak this round?*  The answer is always
:func:`repro.wire.negotiate_wire_version` over what the hop's parties
advertise, i.e. the lowest common version, so a region with even one
pre-upgrade station keeps its whole regional hop on the old revision while
the trunk above it already runs the new one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exceptions import ConfigurationError
from repro.topology.tiers import Region, TierMap
from repro.wire import SUPPORTED_WIRE_VERSIONS, negotiate_wire_version


@dataclass(frozen=True)
class RollingUpgrade:
    """A deterministic station-by-station codec rollout.

    ``duration_rounds`` rounds after the rollout starts, every station runs
    ``to_version``; before that, upgrades proceed in canonical station order
    (the first stations of the order re-image first).  Round 0 is the state
    *before* anything upgraded.
    """

    station_order: tuple[str, ...]
    from_version: int = 1
    to_version: int = 2
    duration_rounds: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "station_order", tuple(str(s) for s in self.station_order)
        )
        for field_name in ("from_version", "to_version"):
            version = getattr(self, field_name)
            if version not in SUPPORTED_WIRE_VERSIONS:
                raise ConfigurationError(
                    f"{field_name} must be one of {list(SUPPORTED_WIRE_VERSIONS)}, "
                    f"got {version!r}"
                )
        if self.from_version > self.to_version:
            raise ConfigurationError(
                f"an upgrade must not downgrade: from_version "
                f"{self.from_version} > to_version {self.to_version}"
            )
        if not isinstance(self.duration_rounds, int) or self.duration_rounds < 1:
            raise ConfigurationError(
                f"duration_rounds must be a positive integer, "
                f"got {self.duration_rounds!r}"
            )

    def upgraded_count(self, round_index: int) -> int:
        """How many stations run ``to_version`` at the start of ``round_index``."""
        if round_index <= 0:
            return 0
        if round_index >= self.duration_rounds:
            return len(self.station_order)
        total = len(self.station_order)
        return -(-total * round_index // self.duration_rounds)  # ceil division

    def versions_at(self, round_index: int) -> dict[str, int]:
        """Per-station advertised version at the start of ``round_index``."""
        upgraded = self.upgraded_count(round_index)
        return {
            station_id: (self.to_version if index < upgraded else self.from_version)
            for index, station_id in enumerate(self.station_order)
        }

    def negotiated_for_region(self, round_index: int, region: Region) -> int:
        """The version ``region``'s hop speaks this round.

        The aggregator (already on ``to_version``) must be readable by every
        station behind it, so the hop negotiates down to the region's lowest
        advertised version.
        """
        versions = self.versions_at(round_index)
        advertised = [self.to_version]
        advertised.extend(versions[station_id] for station_id in region.station_ids)
        return negotiate_wire_version(advertised)

    def tier_map_at(self, round_index: int, tier_map: TierMap) -> TierMap:
        """``tier_map`` with every hop version re-negotiated for this round."""
        from dataclasses import replace

        regions = tuple(
            replace(
                region,
                wire_version=self.negotiated_for_region(round_index, region),
            )
            for region in tier_map.regions
        )
        return replace(tier_map, regions=regions, trunk_wire_version=self.to_version)
