"""Hierarchical deployment topologies: regional aggregation above the stations.

The paper's flat star (one center, N one-hop stations) stops scaling when
every report must cross a single center ingress.  This package adds the
two-tier layout: stations are partitioned into contiguous *regions*, each
behind a :class:`RegionalAggregator` that unions its region's match reports
into one deduplicated, re-encoded summary — so the center's ingress carries
one summary per region instead of one report stream per station, while a
fault-free round still ranks byte-identically to the flat star (the parity
suite pins this across all four protocols).

Layering: ``topology`` sits between ``distributed`` (whose transports,
messages and nodes it routes) and ``cluster`` (whose facade drives
:func:`run_two_tier_round` when a :class:`TopologySpec` asks for it); the
workload layer above binds tenants and scenarios to it.
"""

from repro.topology.aggregator import RegionalAggregator, dedupe_weighted_reports
from repro.topology.router import (
    REGION_SEED_LABEL,
    TRUNK_SEED_LABEL,
    TwoTierDeltaResult,
    TwoTierRoundResult,
    run_two_tier_round,
    ship_two_tier_deltas,
)
from repro.topology.spec import TOPOLOGY_KINDS, TopologySpec
from repro.topology.tiers import Region, TierMap, build_tier_map, region_slices
from repro.topology.versioning import RollingUpgrade

__all__ = [
    "TOPOLOGY_KINDS",
    "TopologySpec",
    "Region",
    "TierMap",
    "build_tier_map",
    "region_slices",
    "RegionalAggregator",
    "dedupe_weighted_reports",
    "RollingUpgrade",
    "TwoTierDeltaResult",
    "TwoTierRoundResult",
    "run_two_tier_round",
    "ship_two_tier_deltas",
    "REGION_SEED_LABEL",
    "TRUNK_SEED_LABEL",
]
