"""The regional aggregator node of a two-tier deployment.

A :class:`RegionalAggregator` sits between one region's base stations and
the data center.  It reuses the :class:`~repro.distributed.datacenter.DataCenterNode`
machinery wholesale — the same inbox, the same decoded-``MATCH_REPORT``
grouping, the same protocol-violation surface — because downstream of its
stations it *is* a little data center: the regional uplink terminates at its
ingress, and what travels on upstream is one re-encoded summary message
whose real ``DIMW`` bytes the trunk hop charges.

Aggregation semantics: the summary is the union of the region's per-station
report streams in canonical station order, with *exact duplicates* of
weighted reports collapsed.  Weighted (WBF) reports are safe to deduplicate
because the ranker keys weights as per-station *sets* — a second identical
``(user, station, weight, query)`` observation cannot change any ranking.
Count-based reports (the bf/local baselines count occurrences) and raw
pattern uploads (naive) are forwarded verbatim: collapsing those would
change results, so the aggregator never touches them.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.protocol import MatchReport
from repro.distributed.datacenter import DataCenterNode
from repro.topology.tiers import Region


def dedupe_weighted_reports(reports: list[object]) -> list[object]:
    """Collapse exact duplicates, only when every report is weighted.

    Order-preserving (first occurrence wins), so the surviving sequence is a
    subsequence of the input and the ranker's insertion-order tie-breaking is
    untouched.  Any unweighted or non-``MatchReport`` entry disables
    deduplication for the whole batch — mixed batches are forwarded verbatim
    rather than partially collapsed.
    """
    if not all(
        isinstance(report, MatchReport) and report.weight is not None
        for report in reports
    ):
        return reports
    seen: set[MatchReport] = set()
    unique: list[object] = []
    for report in reports:
        if report in seen:
            continue
        seen.add(report)
        unique.append(report)
    return unique


class RegionalAggregator(DataCenterNode):
    """One region's mid-tier node: gathers station reports, ships one summary."""

    def __init__(self, region: Region) -> None:
        super().__init__(region.aggregator_id)
        self.region = region

    def summarize(self, sender_order: Sequence[str]) -> list[object]:
        """Union the inbox's decoded reports into one upstream payload.

        ``sender_order`` is the canonical station order of this region's
        round participants; consuming the inbox in that order (never in
        delivery order) keeps the summary — and therefore the center's
        aggregation input — independent of network reordering, exactly like
        the flat engine's uplink consumption.
        """
        grouped = self.reports_by_sender()
        merged: list[object] = []
        for station_id in sender_order:
            merged.extend(grouped.get(station_id, ()))
        return dedupe_weighted_reports(merged)
