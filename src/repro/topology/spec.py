"""Typed, validated description of a deployment's tier layout.

A :class:`TopologySpec` says how the cluster's stations are wired to the data
center: the paper's flat star (``kind="star"``, every station one hop from
the center) or the hierarchical two-tier layout (``kind="two-tier"``,
stations grouped into regions behind :class:`~repro.topology.aggregator.RegionalAggregator`
nodes that union their region's reports into one upstream summary).  Like
every other sub-spec it validates at construction with
:class:`~repro.core.exceptions.ConfigurationError` and never touches live
state — the concrete station partition is computed against a station order by
:func:`repro.topology.tiers.build_tier_map`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.config import FAULT_PROFILE_CHOICES
from repro.core.exceptions import ConfigurationError
from repro.wire import SUPPORTED_WIRE_VERSIONS

#: Tier layouts the facade can deploy.
TOPOLOGY_KINDS = ("star", "two-tier")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _str_tuple(value: object, field_name: str) -> tuple[str, ...]:
    _require(
        isinstance(value, (tuple, list))
        and all(isinstance(item, str) for item in value),
        f"{field_name} must be a tuple of region names, got {value!r}",
    )
    return tuple(value)


@dataclass(frozen=True)
class TopologySpec:
    """How the deployment's stations are wired to the data center.

    ``kind="star"`` is the paper's flat layout and the default everywhere —
    a star deployment behaves byte-identically to a spec with no topology at
    all.  ``kind="two-tier"`` partitions the station order into ``regions``
    contiguous slices (balanced, or ``stations_per_region`` wide), each
    served by a regional aggregator.  ``tenant_count`` declares how many
    independent query streams share the deployment (the workload layer binds
    one :class:`~repro.workloads.spec.TenantSpec` per slot).

    The wire-skew knobs model a rolling codec upgrade: ``wire_version`` is
    the header revision upgraded components write, and every region named in
    ``legacy_regions`` still runs pre-upgrade stations, so its hops negotiate
    down to the lowest common version
    (:func:`repro.wire.negotiate_wire_version`).  Regions named in
    ``degraded_regions`` run their regional hop under ``degraded_profile``
    instead of the deployment's fault plan.
    """

    kind: str = "star"
    regions: int = 1
    #: Stations per region slice; ``None`` balances the station order evenly.
    stations_per_region: int | None = None
    tenant_count: int = 1
    #: DIMW header revision the upgraded components write.
    wire_version: int = 1
    #: Regions whose stations still read only wire version 1.
    legacy_regions: tuple[str, ...] = ()
    #: Regions whose regional hop runs a degraded fault profile.
    degraded_regions: tuple[str, ...] = ()
    degraded_profile: str = "none"

    def __post_init__(self) -> None:
        _require(
            self.kind in TOPOLOGY_KINDS,
            f"topology kind must be one of {TOPOLOGY_KINDS}, got {self.kind!r}",
        )
        _require(
            isinstance(self.regions, int)
            and not isinstance(self.regions, bool)
            and self.regions >= 1,
            f"regions must be a positive integer, got {self.regions!r}",
        )
        _require(
            self.kind != "star" or self.regions == 1,
            f"a star topology has no regional tier; regions must be 1, "
            f"got {self.regions!r}",
        )
        _require(
            self.stations_per_region is None
            or (
                isinstance(self.stations_per_region, int)
                and not isinstance(self.stations_per_region, bool)
                and self.stations_per_region >= 1
            ),
            f"stations_per_region must be a positive integer or None, "
            f"got {self.stations_per_region!r}",
        )
        _require(
            isinstance(self.tenant_count, int)
            and not isinstance(self.tenant_count, bool)
            and self.tenant_count >= 1,
            f"tenant_count must be a positive integer, got {self.tenant_count!r}",
        )
        _require(
            self.wire_version in SUPPORTED_WIRE_VERSIONS,
            f"wire_version must be one of {list(SUPPORTED_WIRE_VERSIONS)}, "
            f"got {self.wire_version!r}",
        )
        object.__setattr__(
            self, "legacy_regions", _str_tuple(self.legacy_regions, "legacy_regions")
        )
        object.__setattr__(
            self,
            "degraded_regions",
            _str_tuple(self.degraded_regions, "degraded_regions"),
        )
        _require(
            self.degraded_profile in FAULT_PROFILE_CHOICES,
            f"degraded_profile must be one of {FAULT_PROFILE_CHOICES}, "
            f"got {self.degraded_profile!r}",
        )
        region_names = {self.region_name(index) for index in range(self.regions)}
        for field_name in ("legacy_regions", "degraded_regions"):
            unknown = [
                name for name in getattr(self, field_name) if name not in region_names
            ]
            _require(
                not unknown,
                f"{field_name} names unknown region(s) {unknown!r}; this "
                f"topology declares {sorted(region_names)}",
            )

    @property
    def is_hierarchical(self) -> bool:
        """Whether rounds route through a regional aggregation tier."""
        return self.kind == "two-tier"

    def region_name(self, index: int) -> str:
        """Canonical name of the ``index``-th region slice."""
        return f"region-{index}"

    def with_updates(self, **changes: object) -> "TopologySpec":
        """A copy of this spec with the given fields replaced (re-validated)."""
        return replace(self, **changes)
