"""Streaming aggregation of multi-round workload runs.

The engine feeds one :class:`RoundMetrics` (plus the round's event
transcript) at a time into a :class:`WorkloadAggregator`; cumulative
statistics are maintained as running :class:`StreamingStat` accumulators so a
long workload never re-scans its history.  :meth:`WorkloadAggregator.finish`
freezes everything into a :class:`WorkloadResult`, whose
:meth:`~WorkloadResult.transcript_bytes` is the workload-level replay token
(the concatenation of every round's canonical transcript under a round
header) and whose :meth:`~WorkloadResult.to_payload` is the JSON shape
emitted through :func:`repro.evaluation.benchjson.workload_payload`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from fractions import Fraction

from repro.distributed.events import TranscriptEntry, transcript_to_bytes

#: Percentiles every cumulative statistic reports, in emission order.
PERCENTILES = (50, 90, 99)


@dataclass(frozen=True)
class StatSummary:
    """Frozen summary of one streamed quantity."""

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float


class StreamingStat:
    """Running aggregate of one per-round quantity.

    :meth:`push` is amortized O(1): values append to a tail buffer and the
    whole list is re-sorted lazily on the first read after a push (Timsort is
    near-linear on a sorted-prefix-plus-small-tail list, so a push/read
    alternation stays cheap and a long push burst costs one sort).  The old
    ``bisect.insort`` insertion was O(n) *per push* — quadratic over a long
    workload.  count/total/min/max are O(1) running fields; the total uses
    Neumaier compensated summation, so the mean does not drift under
    catastrophic cancellation over million-push streams the way a naive
    running float sum does.

    Percentiles use the nearest-rank definition — exact, no interpolation —
    with the rank computed in pure integer arithmetic via
    :class:`~fractions.Fraction`.  A float ``q`` is read at its *decimal*
    face value (``Fraction(str(q))``): ``percentile(99.9)`` means the exact
    rational 999/1000, not the binary expansion of the float ``99.9`` (which
    sits just above it and could push the ceiling rank one step too far at
    large counts).  Pass a :class:`~fractions.Fraction` directly for
    arbitrary exact quantiles.
    """

    def __init__(self) -> None:
        self._values: list[float] = []
        self._sorted_count = 0
        self._total = 0.0
        self._compensation = 0.0

    def push(self, value: float) -> None:
        """Fold one round's value into the aggregate (amortized O(1))."""
        number = float(value)
        self._values.append(number)
        # Neumaier's variant of Kahan summation: carry the rounding error of
        # each addition in a separate compensation term.
        updated = self._total + number
        if abs(self._total) >= abs(number):
            self._compensation += (self._total - updated) + number
        else:
            self._compensation += (number - updated) + self._total
        self._total = updated

    def _ordered(self) -> list[float]:
        if self._sorted_count != len(self._values):
            self._values.sort()
            self._sorted_count = len(self._values)
        return self._values

    @property
    def count(self) -> int:
        """Number of values pushed so far."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Compensated running sum of the pushed values."""
        return self._total + self._compensation

    def percentile(self, q: "float | int | Fraction") -> float:
        """Nearest-rank percentile ``q`` (0 < q <= 100) of the pushed values.

        ``q`` may be an int, a :class:`~fractions.Fraction`, or a float —
        floats are interpreted at their decimal face value (see the class
        docstring).
        """
        if not self._values:
            raise ValueError("cannot take a percentile of an empty stream")
        if isinstance(q, bool) or not isinstance(q, (int, float, Fraction)):
            raise TypeError(f"percentile must be an int, float or Fraction, got {q!r}")
        if isinstance(q, float):
            if q != q or q in (float("inf"), float("-inf")):
                raise ValueError(f"percentile must be within (0, 100], got {q!r}")
            quantile = Fraction(str(q))
        else:
            quantile = Fraction(q)
        if not 0 < quantile <= 100:
            raise ValueError(f"percentile must be within (0, 100], got {q!r}")
        ordered = self._ordered()
        # ceil(count * q / 100) in exact integer arithmetic.
        numerator = len(ordered) * quantile.numerator
        denominator = 100 * quantile.denominator
        rank = max(1, -(-numerator // denominator))
        return ordered[rank - 1]

    def summary(self) -> StatSummary:
        """Freeze the current cumulative aggregate."""
        if not self._values:
            raise ValueError("cannot summarize an empty stream")
        ordered = self._ordered()
        total = self.total
        return StatSummary(
            count=len(ordered),
            total=total,
            mean=total / len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=self.percentile(50),
            p90=self.percentile(90),
            p99=self.percentile(99),
        )


@dataclass(frozen=True)
class RoundMetrics:
    """Everything one workload round reports upward.

    ``latency_s`` is the round's *virtual* transmission time (deterministic
    under the seed contract); the wall-clock compute fields live in
    ``compute_time_s`` and are excluded from replay comparisons and from the
    perf-trajectory headline metrics.

    The trailing three fields exist only under the open-system drive: the
    ramp-phase label the arrival fell in, the virtual arrival time, and the
    queueing delay accrued waiting behind earlier arrivals.  In that mode
    ``latency_s`` is queueing delay *plus* service time, so saturation shows
    up as graceful latency growth rather than an error.  Closed-loop drives
    leave them at their defaults and the payload omits them entirely.
    """

    round_index: int
    query_count: int
    active_station_count: int
    joined: tuple[str, ...]
    left: tuple[str, ...]
    downlink_bytes: int
    uplink_bytes: int
    precision: float
    recall: float
    latency_s: float
    goodput_fraction: float
    retransmit_count: int
    lost_station_count: int
    batch_refreshed: bool
    compute_time_s: float = 0.0
    phase: str = ""
    arrival_s: float = 0.0
    queue_delay_s: float = 0.0
    #: Multi-tenant runs: which tenant's query stream this round served.
    #: Empty on single-stream workloads and then stripped from the payload,
    #: so pre-tenant baselines stay byte-identical.
    tenant: str = ""

    @property
    def total_bytes(self) -> int:
        """Downlink plus uplink bytes of the round."""
        return self.downlink_bytes + self.uplink_bytes


#: The per-round quantities aggregated cumulatively, with their extractors.
_STREAMED_QUANTITIES = {
    "bytes": lambda metrics: float(metrics.total_bytes),
    "latency_s": lambda metrics: metrics.latency_s,
    "goodput": lambda metrics: metrics.goodput_fraction,
    "precision": lambda metrics: metrics.precision,
    "recall": lambda metrics: metrics.recall,
}

#: RoundMetrics fields that only carry meaning under the open-system drive;
#: stripped from closed-loop payload rows so those stay byte-identical to the
#: committed benchmark baselines.
_OPEN_LOOP_FIELDS = ("phase", "arrival_s", "queue_delay_s")


@dataclass(frozen=True)
class TenantWindow:
    """Frozen per-tenant slice of a multi-tenant run.

    One window per :class:`~repro.workloads.spec.TenantSpec`, in declaration
    order.  The byte and query totals partition the run's totals exactly —
    every round belongs to exactly one tenant — which is the isolation
    invariant the tenant accounting suite pins.
    """

    name: str
    round_count: int
    query_count: int
    downlink_bytes: int
    uplink_bytes: int
    precision: StatSummary
    recall: StatSummary
    latency: StatSummary

    @property
    def total_bytes(self) -> int:
        """Downlink plus uplink bytes across the tenant's rounds."""
        return self.downlink_bytes + self.uplink_bytes

    def to_payload(self) -> dict:
        """JSON-ready shape embedded in the workload payload's ``tenants``."""
        return {
            "name": self.name,
            "round_count": self.round_count,
            "query_count": self.query_count,
            "downlink_bytes": self.downlink_bytes,
            "uplink_bytes": self.uplink_bytes,
            "precision": asdict(self.precision),
            "recall": asdict(self.recall),
            "latency": asdict(self.latency),
        }


@dataclass(frozen=True)
class PhaseWindow:
    """Frozen per-ramp-phase percentile window of an open-system run.

    One window per :class:`~repro.workloads.spec.RampPhase` the run admitted
    arrivals in, in schedule order.  ``offered_qps`` is the phase's target
    arrival rate (base rate × multiplier); ``achieved_qps`` is what the
    virtual clock actually completed within the phase's wall of admitted
    arrivals — below saturation the two track each other, past it
    ``achieved_qps`` plateaus while the latency window degrades.
    """

    label: str
    arrival_count: int
    offered_qps: float
    duration_s: float
    achieved_qps: float
    latency: StatSummary | None
    queue_delay: StatSummary | None

    def to_payload(self) -> dict:
        """JSON-ready shape embedded in the workload payload's ``phases``."""
        return {
            "label": self.label,
            "arrival_count": self.arrival_count,
            "offered_qps": self.offered_qps,
            "duration_s": self.duration_s,
            "achieved_qps": self.achieved_qps,
            "latency": None if self.latency is None else asdict(self.latency),
            "queue_delay": (
                None if self.queue_delay is None else asdict(self.queue_delay)
            ),
        }


@dataclass(frozen=True)
class WorkloadResult:
    """The frozen outcome of one workload run."""

    scenario: str
    seed: int
    drive: str
    method: str
    fault_profile: str
    executor: str
    rounds: tuple[RoundMetrics, ...]
    cumulative: dict[str, StatSummary]
    transcripts: tuple[bytes, ...] = field(repr=False, default=())
    phases: tuple[PhaseWindow, ...] = ()
    #: Multi-tenant runs: one window per tenant, in declaration order.  Empty
    #: for single-stream workloads, and then absent from the payload.
    tenants: tuple[TenantWindow, ...] = ()
    #: Streaming-source runs: the source's residency accounting (declared
    #: users, peak resident station batches, evictions).  ``None`` for eager
    #: datasets, and then absent from the payload so committed closed-loop
    #: baselines stay byte-identical.
    source_stats: "dict[str, object] | None" = None

    @property
    def round_count(self) -> int:
        """Number of rounds the workload ran."""
        return len(self.rounds)

    @property
    def total_bytes(self) -> int:
        """All bytes moved across every round."""
        return sum(metrics.total_bytes for metrics in self.rounds)

    @property
    def total_queries(self) -> int:
        """All queries served across every round."""
        return sum(metrics.query_count for metrics in self.rounds)

    def transcript_bytes(self) -> bytes:
        """The workload-level replay token.

        Each round's canonical event transcript
        (:func:`repro.distributed.events.transcript_to_bytes`) is prefixed
        with a round header; two workload runs are "the same" exactly when
        these bytes are identical — across repeated runs and across station
        executors.
        """
        parts: list[bytes] = []
        for index, transcript in enumerate(self.transcripts):
            parts.append(b"== round %d ==\n" % index)
            parts.append(transcript)
            parts.append(b"\n")
        return b"".join(parts)

    def to_payload(self) -> dict:
        """The JSON-ready shape written as ``BENCH_workload_<scenario>.json``."""
        open_loop = bool(self.phases)
        skip = ("compute_time_s",) if open_loop else ("compute_time_s",) + _OPEN_LOOP_FIELDS
        if not self.tenants:
            skip = skip + ("tenant",)
        payload = {
            "scenario": self.scenario,
            "seed": self.seed,
            "drive": self.drive,
            "method": self.method,
            "fault_profile": self.fault_profile,
            "executor": self.executor,
            "round_count": self.round_count,
            "totals": {
                "bytes": self.total_bytes,
                "queries": self.total_queries,
                "lost_stations": sum(m.lost_station_count for m in self.rounds),
                "retransmits": sum(m.retransmit_count for m in self.rounds),
            },
            "rounds": [
                {k: v for k, v in asdict(metrics).items() if k not in skip}
                for metrics in self.rounds
            ],
            "cumulative": {
                name: asdict(summary) for name, summary in self.cumulative.items()
            },
        }
        if open_loop:
            payload["phases"] = [window.to_payload() for window in self.phases]
        if self.tenants:
            payload["tenants"] = [window.to_payload() for window in self.tenants]
        if self.source_stats is not None:
            payload["source"] = dict(self.source_stats)
        return payload


class WorkloadAggregator:
    """Streaming consumer of round outcomes.

    The engine calls :meth:`add_round` once per round; the aggregator folds
    the round into the cumulative streams and stores the round's canonical
    transcript bytes.  :meth:`snapshot` exposes the cumulative statistics
    mid-run (for progress displays); :meth:`finish` freezes the result.
    """

    def __init__(
        self,
        scenario: str,
        seed: int,
        drive: str,
        method: str,
        fault_profile: str,
        executor: str,
    ) -> None:
        self._scenario = scenario
        self._seed = seed
        self._drive = drive
        self._method = method
        self._fault_profile = fault_profile
        self._executor = executor
        self._rounds: list[RoundMetrics] = []
        self._transcripts: list[bytes] = []
        self._streams = {name: StreamingStat() for name in _STREAMED_QUANTITIES}
        self._phases: list[dict] = []
        self._tenants: dict[str, dict] = {}
        self._source_stats: "dict[str, object] | None" = None

    def set_source_stats(self, stats: "dict[str, object] | None") -> None:
        """Attach the streaming source's residency accounting (or ``None``)."""
        self._source_stats = None if stats is None else dict(stats)

    def begin_phase(
        self,
        label: str,
        offered_qps: float,
        duration_s: float,
        start_s: float = 0.0,
    ) -> None:
        """Open a per-phase percentile window (open-system drive only).

        Rounds folded in afterwards accrue into this window's latency and
        queue-delay streams until the next ``begin_phase``.  ``start_s`` is
        the phase's virtual start time; together with each round's
        ``arrival_s + latency_s`` completion it yields the window's achieved
        throughput, which plateaus past saturation while offered keeps
        climbing.
        """
        self._phases.append(
            {
                "label": label,
                "offered_qps": float(offered_qps),
                "duration_s": float(duration_s),
                "start_s": float(start_s),
                "last_completion_s": float(start_s),
                "arrival_count": 0,
                "latency": StreamingStat(),
                "queue_delay": StreamingStat(),
            }
        )

    def add_round(
        self,
        metrics: RoundMetrics,
        transcript: "tuple[TranscriptEntry, ...] | bytes",
    ) -> None:
        """Fold one completed round into the aggregate."""
        if metrics.round_index != len(self._rounds):
            raise ValueError(
                f"rounds must arrive in order: expected index {len(self._rounds)}, "
                f"got {metrics.round_index}"
            )
        self._rounds.append(metrics)
        if isinstance(transcript, bytes):
            self._transcripts.append(transcript)
        else:
            self._transcripts.append(transcript_to_bytes(transcript))
        for name, extract in _STREAMED_QUANTITIES.items():
            self._streams[name].push(extract(metrics))
        if metrics.tenant:
            window = self._tenants.setdefault(
                metrics.tenant,
                {
                    "round_count": 0,
                    "query_count": 0,
                    "downlink_bytes": 0,
                    "uplink_bytes": 0,
                    "precision": StreamingStat(),
                    "recall": StreamingStat(),
                    "latency": StreamingStat(),
                },
            )
            window["round_count"] += 1
            window["query_count"] += metrics.query_count
            window["downlink_bytes"] += metrics.downlink_bytes
            window["uplink_bytes"] += metrics.uplink_bytes
            window["precision"].push(metrics.precision)
            window["recall"].push(metrics.recall)
            window["latency"].push(metrics.latency_s)
        if self._phases:
            window = self._phases[-1]
            window["arrival_count"] += 1
            window["latency"].push(metrics.latency_s)
            window["queue_delay"].push(metrics.queue_delay_s)
            window["last_completion_s"] = max(
                window["last_completion_s"], metrics.arrival_s + metrics.latency_s
            )

    def snapshot(self) -> dict[str, StatSummary]:
        """Cumulative statistics over the rounds folded in so far."""
        return {name: stream.summary() for name, stream in self._streams.items()}

    def _frozen_phases(self) -> tuple[PhaseWindow, ...]:
        windows: list[PhaseWindow] = []
        for window in self._phases:
            count = window["arrival_count"]
            # A phase is judged over whichever is longer: its scheduled wall
            # or the span its completions actually spilled into — that is
            # what makes achieved_qps plateau past saturation.
            span = max(
                window["duration_s"], window["last_completion_s"] - window["start_s"]
            )
            windows.append(
                PhaseWindow(
                    label=window["label"],
                    arrival_count=count,
                    offered_qps=window["offered_qps"],
                    duration_s=window["duration_s"],
                    achieved_qps=count / span if span > 0 else 0.0,
                    latency=window["latency"].summary() if count else None,
                    queue_delay=window["queue_delay"].summary() if count else None,
                )
            )
        return tuple(windows)

    def _frozen_tenants(self) -> tuple[TenantWindow, ...]:
        return tuple(
            TenantWindow(
                name=name,
                round_count=window["round_count"],
                query_count=window["query_count"],
                downlink_bytes=window["downlink_bytes"],
                uplink_bytes=window["uplink_bytes"],
                precision=window["precision"].summary(),
                recall=window["recall"].summary(),
                latency=window["latency"].summary(),
            )
            for name, window in self._tenants.items()
        )

    def finish(self) -> WorkloadResult:
        """Freeze everything into a :class:`WorkloadResult`."""
        if not self._rounds:
            raise ValueError("cannot finish a workload with no rounds")
        return WorkloadResult(
            scenario=self._scenario,
            seed=self._seed,
            drive=self._drive,
            method=self._method,
            fault_profile=self._fault_profile,
            executor=self._executor,
            rounds=tuple(self._rounds),
            cumulative=self.snapshot(),
            transcripts=tuple(self._transcripts),
            phases=self._frozen_phases(),
            tenants=self._frozen_tenants(),
            source_stats=self._source_stats,
        )
