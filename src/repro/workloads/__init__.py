"""Declarative workload engine: seeded traffic scenarios over the simulator.

A :class:`WorkloadSpec` declares a multi-round traffic shape — station churn,
query arrival process, mix skew, fault pairing — and :func:`run_workload`
compiles it into an actual drive of the distributed system, producing a
:class:`WorkloadResult` whose per-round metrics, cumulative percentiles and
replayable transcript are all pure functions of ``(scenario, seed)``.  The
named catalog lives in :data:`SCENARIOS`.
"""

from repro.datagen.source import SourceSpec
from repro.workloads.engine import run_workload
from repro.workloads.result import (
    PhaseWindow,
    RoundMetrics,
    StatSummary,
    StreamingStat,
    TenantWindow,
    WorkloadAggregator,
    WorkloadResult,
)
from repro.workloads.scenarios import (
    SCENARIOS,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workloads.spec import (
    ArrivalProcess,
    ChurnProcess,
    OfferedLoad,
    QueryMix,
    RampPhase,
    TenantSpec,
    WorkloadSpec,
)

__all__ = [
    "ArrivalProcess",
    "ChurnProcess",
    "OfferedLoad",
    "PhaseWindow",
    "QueryMix",
    "RampPhase",
    "RoundMetrics",
    "SCENARIOS",
    "SourceSpec",
    "StatSummary",
    "StreamingStat",
    "TenantSpec",
    "TenantWindow",
    "WorkloadAggregator",
    "WorkloadResult",
    "WorkloadSpec",
    "get_scenario",
    "register_scenario",
    "run_workload",
    "scenario_names",
]
