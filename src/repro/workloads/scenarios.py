"""The named scenario catalog.

Each entry is a complete :class:`~repro.workloads.spec.WorkloadSpec` with a
fixed default seed: ``run_workload(get_scenario(name))`` replays a
byte-identical event transcript on every machine, and
``get_scenario(name).with_updates(seed=..., station_count=..., rounds=...)``
scales the same scenario shape up or down without touching its definition.
The catalog is the shared vocabulary of the CLI (``repro workload run|list``),
the scenario-smoke CI jobs and the replay test suite — registering a scenario
here automatically enrolls it in all three.
"""

from __future__ import annotations

from repro.datagen.source import SourceSpec
from repro.topology.spec import TopologySpec
from repro.workloads.spec import (
    ArrivalProcess,
    ChurnProcess,
    OfferedLoad,
    QueryMix,
    RampPhase,
    TenantSpec,
    WorkloadSpec,
)

#: The registry, keyed by scenario name in presentation order.
SCENARIOS: dict[str, WorkloadSpec] = {}


def register_scenario(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a scenario to the catalog (its name must be unused)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, in registration order."""
    return tuple(SCENARIOS)


def get_scenario(name: str) -> WorkloadSpec:
    """Look up a registered scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        ) from None


register_scenario(
    WorkloadSpec(
        name="steady-state",
        description="Constant arrivals, full deployment, clean network — the baseline trajectory every other scenario is read against.",
        rounds=10,
        arrival=ArrivalProcess(kind="constant", base=4),
        seed=1201,
    )
)

register_scenario(
    WorkloadSpec(
        name="flash-crowd",
        description="Quiet rounds punctuated by 4x query bursts every 4th round (a campaign launch hitting the center).",
        rounds=12,
        arrival=ArrivalProcess(kind="flash", base=3, burst_multiplier=4.0, burst_every=4),
        seed=1202,
    )
)

register_scenario(
    WorkloadSpec(
        name="diurnal",
        description="Sinusoidal day/night arrival cycle between 2 and 8 queries per round over a 8-round period.",
        rounds=16,
        arrival=ArrivalProcess(kind="diurnal", base=2, peak=8, period=8),
        seed=1203,
    )
)

register_scenario(
    WorkloadSpec(
        name="churn-heavy",
        description="Stations leave with p=0.3 and rejoin with p=0.5 every round; the round only ever covers the cells that are up.",
        rounds=12,
        station_count=6,
        arrival=ArrivalProcess(kind="constant", base=4),
        churn=ChurnProcess(leave_probability=0.3, join_probability=0.5, min_active=2),
        seed=1204,
    )
)

register_scenario(
    WorkloadSpec(
        name="skewed-hotset",
        description="Zipf(s=1.5) query mix over a seeded hot set: a few subscriber profiles dominate every round's batch.",
        rounds=10,
        arrival=ArrivalProcess(kind="constant", base=5),
        mix=QueryMix(zipf_s=1.5),
        seed=1205,
    )
)

register_scenario(
    WorkloadSpec(
        name="degraded-network",
        description="The chaos fault profile (loss, duplication, corruption, reordering, stragglers) with partial rounds allowed.",
        rounds=10,
        arrival=ArrivalProcess(kind="constant", base=3),
        fault_profile="chaos",
        allow_partial=True,
        seed=1206,
    )
)

register_scenario(
    WorkloadSpec(
        name="long-session",
        description="A single long-running campaign: the batch rotates only every 6th round, the regime where the session drive ships tiny deltas.",
        rounds=12,
        arrival=ArrivalProcess(kind="constant", base=4, refresh_every=6),
        churn=ChurnProcess(leave_probability=0.15, join_probability=0.6, min_active=2),
        seed=1207,
    )
)

# -- open-system (rate-driven) scenarios ------------------------------------
#
# The catalog-scale cluster serves a full wire round in ~0.12 virtual seconds,
# so its saturation point sits near 8 QPS.  The three scenarios below bracket
# it: comfortably under, ramped across, and pinned above.  Under closed-loop
# drives they fall back to their (modest) ``rounds`` schedule, so they still
# participate in the replay suite and benchmark sweep like every other entry.

register_scenario(
    WorkloadSpec(
        name="open-steady",
        description="Open-system plateau at half the cluster's service capacity: queueing delay stays near zero and p99 tracks the bare service time.",
        rounds=6,
        arrival=ArrivalProcess(kind="constant", base=4),
        offered=OfferedLoad(
            rate_qps=4.0,
            process="poisson",
            ramp=(RampPhase("plateau", 12.0, 1.0),),
            max_arrivals=64,
        ),
        seed=1208,
    )
)

register_scenario(
    WorkloadSpec(
        name="open-ramp",
        description="Warm-up, plateau, 2.5x spike past saturation, then a silent drain: the spike window accrues queueing delay, the drain lets the backlog clear.",
        rounds=6,
        arrival=ArrivalProcess(kind="constant", base=4),
        offered=OfferedLoad(
            rate_qps=4.0,
            process="poisson",
            ramp=(
                RampPhase("warm-up", 4.0, 0.5),
                RampPhase("plateau", 8.0, 1.0),
                RampPhase("spike", 4.0, 2.5),
                RampPhase("drain", 4.0, 0.0),
            ),
            max_arrivals=96,
        ),
        seed=1209,
    )
)

register_scenario(
    WorkloadSpec(
        name="open-saturation",
        description="Scheduled (jitter-free) arrivals at ~1.5x service capacity: every excess arrival queues behind the last, so latency climbs linearly — the graceful-saturation signature.",
        rounds=6,
        arrival=ArrivalProcess(kind="constant", base=4),
        offered=OfferedLoad(
            rate_qps=12.0,
            process="scheduled",
            ramp=(RampPhase("plateau", 6.0, 1.0),),
            max_arrivals=80,
        ),
        seed=1210,
    )
)

# seed 1211 belongs to benchmarks/bench_open_loop.py's pinned sweep.
register_scenario(
    WorkloadSpec(
        name="open-soak-1m",
        description="Million-user streaming soak: 10k stations x 100 users declared through a StationSource, a 48-batch LRU residency cap and 12-station round windows — open-loop arrivals touch the city incrementally, so memory is bounded by the cap, never the census.",
        rounds=6,
        arrival=ArrivalProcess(kind="constant", base=3, refresh_every=2),
        offered=OfferedLoad(
            rate_qps=2.0,
            process="scheduled",
            ramp=(RampPhase("plateau", 16.0, 1.0),),
            max_arrivals=24,
        ),
        source=SourceSpec(
            kind="streaming",
            station_count=10_000,
            users_per_station=100,
            max_resident=48,
            stations_per_round=12,
        ),
        seed=1212,
    )
)

# -- hierarchical (two-tier) scenarios ---------------------------------------
#
# The two-tier catalog entries keep ``regions=2`` so the CI smoke's 3-station
# tiny scale still partitions cleanly; at catalog scale the balanced slicing
# puts 3 stations behind one aggregator and 2 behind the other.

register_scenario(
    WorkloadSpec(
        name="hier-steady",
        description="The steady-state shape routed through a two-tier topology: two regional aggregators dedupe and re-encode their stations' reports, so the trunk carries one summary per region while rankings stay identical to the flat star.",
        rounds=10,
        arrival=ArrivalProcess(kind="constant", base=4),
        topology=TopologySpec(kind="two-tier", regions=2),
        seed=1213,
    )
)

register_scenario(
    WorkloadSpec(
        name="hier-degraded-region",
        description="A two-tier deployment where one region's last-mile hop runs the lossy fault profile while the other region and the trunk stay clean — regional faults stay contained behind their aggregator instead of degrading the whole star.",
        rounds=10,
        arrival=ArrivalProcess(kind="constant", base=3),
        topology=TopologySpec(
            kind="two-tier",
            regions=2,
            degraded_regions=("region-1",),
            degraded_profile="lossy",
        ),
        allow_partial=True,
        seed=1214,
    )
)

register_scenario(
    WorkloadSpec(
        name="multi-tenant-skew",
        description="Two tenants multiplexed round-robin over one two-tier deployment: a Zipf-skewed 'hot' tenant and a uniform 'broad' tenant each run an independent seeded query stream, with per-tenant precision/latency/byte accounting that partitions the totals exactly.",
        rounds=8,
        arrival=ArrivalProcess(kind="constant", base=3),
        tenants=(
            TenantSpec("hot", QueryMix(zipf_s=1.5)),
            TenantSpec("broad", QueryMix()),
        ),
        topology=TopologySpec(kind="two-tier", regions=2, tenant_count=2),
        seed=1215,
    )
)
