"""Declarative, fully-seeded workload specifications.

A :class:`WorkloadSpec` is everything needed to replay a multi-round traffic
scenario against the distributed matching system: the synthetic city's shape,
how many rounds to run, how many query batches arrive per round (the
:class:`ArrivalProcess`), how the query mix concentrates on hot exemplars
(:class:`QueryMix`), how stations join and leave between rounds
(:class:`ChurnProcess`), and which seeded fault profile the simulated
transport runs under.  Every stochastic choice the engine makes is derived
from ``(spec.name, spec.seed)`` through :func:`repro.utils.rng.derive_seed`,
so one spec replays a byte-identical event transcript run after run — the
same determinism contract the simulation harness pins for single rounds,
extended to whole workloads.

The spec is *declarative*: it never references datasets, protocols or
networks — :mod:`repro.workloads.engine` compiles it into an actual
multi-round drive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.config import FAULT_PROFILE_CHOICES
from repro.core.exceptions import ConfigurationError
from repro.datagen.source import SourceSpec
from repro.topology.spec import TopologySpec
from repro.utils.validation import require_non_negative, require_positive

#: Query arrival shapes over the rounds of a workload.
ARRIVAL_KINDS = ("constant", "flash", "diurnal")

#: Inter-arrival draw processes of the open-system drive.
INTERARRIVAL_KINDS = ("poisson", "scheduled")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _require_finite_positive(value: object, name: str) -> None:
    _require(
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(float(value))
        and float(value) > 0.0,
        f"{name} must be a finite number > 0, got {value!r}",
    )


@dataclass(frozen=True)
class RampPhase:
    """One labelled segment of an open-system ramp schedule.

    During the phase, arrivals are offered at
    ``OfferedLoad.rate_qps × rate_multiplier`` for ``duration_s`` *virtual*
    seconds.  A multiplier of 0 is a silence window (the drain tail of a
    spike test); the virtual clock still advances through it.
    """

    label: str
    duration_s: float
    rate_multiplier: float = 1.0

    def __post_init__(self) -> None:
        _require(
            isinstance(self.label, str) and bool(self.label),
            f"phase label must be a non-empty string, got {self.label!r}",
        )
        _require_finite_positive(self.duration_s, "duration_s")
        _require(
            isinstance(self.rate_multiplier, (int, float))
            and not isinstance(self.rate_multiplier, bool)
            and math.isfinite(float(self.rate_multiplier))
            and float(self.rate_multiplier) >= 0.0,
            f"rate_multiplier must be a finite number >= 0, got {self.rate_multiplier!r}",
        )


@dataclass(frozen=True)
class OfferedLoad:
    """The open-system (rate-driven) arrival model of a workload.

    Instead of draining ``rounds`` closed-loop barriers, the open drive
    *offers* query-batch admissions against the virtual clock at
    ``rate_qps`` (scaled per :class:`RampPhase`):

    * ``poisson`` — exponential inter-arrival gaps, the classic open-system
      arrival process;
    * ``scheduled`` — exact ``1/rate`` spacing, for deterministic rate
      sweeps where only queueing (not arrival jitter) should move latency.

    Every gap draw comes from a per-phase RNG derived from
    ``(seed, "workload-arrivals", scenario, phase.label)``, so the arrival
    schedule is a pure function of the workload identity — the same
    determinism contract as every other process in the spec.
    ``max_arrivals`` caps the whole run (a saturated schedule must not run
    unbounded).
    """

    rate_qps: float
    process: str = "poisson"
    ramp: tuple[RampPhase, ...] = (RampPhase("plateau", 30.0, 1.0),)
    max_arrivals: int = 512

    def __post_init__(self) -> None:
        _require_finite_positive(self.rate_qps, "rate_qps")
        _require(
            self.process in INTERARRIVAL_KINDS,
            f"process must be one of {INTERARRIVAL_KINDS}, got {self.process!r}",
        )
        _require(
            isinstance(self.ramp, tuple) and len(self.ramp) > 0,
            f"ramp must be a non-empty tuple of RampPhase, got {self.ramp!r}",
        )
        for phase in self.ramp:
            _require(
                isinstance(phase, RampPhase),
                f"ramp entries must be RampPhase instances, got {phase!r}",
            )
        labels = [phase.label for phase in self.ramp]
        _require(
            len(labels) == len(set(labels)),
            f"ramp phase labels must be unique, got {labels!r}",
        )
        try:
            require_positive(self.max_arrivals, "max_arrivals")
        except (TypeError, ValueError) as error:
            raise ConfigurationError(str(error)) from error

    def rate_during(self, phase: RampPhase) -> float:
        """Offered arrival rate (arrivals per virtual second) of one phase."""
        return float(self.rate_qps) * float(phase.rate_multiplier)

    @property
    def total_duration_s(self) -> float:
        """Virtual length of the whole ramp schedule."""
        return sum(float(phase.duration_s) for phase in self.ramp)


@dataclass(frozen=True)
class ArrivalProcess:
    """How many queries arrive per round, as a pure function of the round index.

    * ``constant`` — ``base`` queries every round;
    * ``flash`` — ``base`` queries normally, ``base × burst_multiplier`` on
      every ``burst_every``-th round (the flash-crowd spike);
    * ``diurnal`` — a sinusoid between ``base`` and ``peak`` with the given
      ``period`` in rounds, starting at the trough (night → day → night).

    ``refresh_every`` controls query-batch rotation: 1 samples a fresh batch
    every round (each round is a new campaign), ``n > 1`` keeps a batch for
    ``n`` rounds (long-running campaigns — the regime where the session drive's
    incremental matching pays off).  A batch is also refreshed whenever the
    arrival count changes, since the batch size must match the round's count.
    """

    kind: str = "constant"
    base: int = 4
    burst_multiplier: float = 4.0
    burst_every: int = 4
    peak: int = 12
    period: int = 8
    refresh_every: int = 1

    def __post_init__(self) -> None:
        _require(
            self.kind in ARRIVAL_KINDS,
            f"arrival kind must be one of {ARRIVAL_KINDS}, got {self.kind!r}",
        )
        try:
            require_positive(self.base, "base")
            require_positive(self.burst_every, "burst_every")
            require_positive(self.period, "period")
            require_positive(self.refresh_every, "refresh_every")
        except (TypeError, ValueError) as error:
            raise ConfigurationError(str(error)) from error
        _require(
            isinstance(self.burst_multiplier, (int, float))
            and self.burst_multiplier >= 1.0,
            f"burst_multiplier must be >= 1, got {self.burst_multiplier!r}",
        )
        # peak is only consulted by the diurnal shape; a constant/flash spec
        # with a large base must not trip over the unused default.
        if self.kind == "diurnal":
            _require(
                isinstance(self.peak, int) and self.peak >= self.base,
                f"peak must be an integer >= base ({self.base}), got {self.peak!r}",
            )

    def count_at(self, round_index: int) -> int:
        """Number of queries arriving in round ``round_index`` (always >= 1)."""
        require_non_negative(round_index, "round_index")
        if self.kind == "constant":
            return self.base
        if self.kind == "flash":
            if (round_index + 1) % self.burst_every == 0:
                return max(1, int(round(self.base * self.burst_multiplier)))
            return self.base
        # Diurnal: trough at round 0, crest half a period later.
        phase = 2.0 * math.pi * (round_index % self.period) / self.period
        level = (1.0 - math.cos(phase)) / 2.0
        return self.base + int(round((self.peak - self.base) * level))

    def refreshes_at(self, round_index: int) -> bool:
        """Whether a fresh query batch is sampled at ``round_index``."""
        if round_index == 0:
            return True
        if round_index % self.refresh_every == 0:
            return True
        return self.count_at(round_index) != self.count_at(round_index - 1)


@dataclass(frozen=True)
class ChurnProcess:
    """Station join/leave behavior between rounds.

    Each round, every active station leaves with ``leave_probability`` and
    every inactive station rejoins with ``join_probability``; at least
    ``min_active`` stations always stay up (leavers are revived in sorted
    station order until the floor holds).  All draws come from a per-round
    RNG derived from the workload seed, so the churn schedule is part of the
    replayable transcript.
    """

    leave_probability: float = 0.0
    join_probability: float = 1.0
    min_active: int = 1

    def __post_init__(self) -> None:
        for name in ("leave_probability", "join_probability"):
            value = getattr(self, name)
            _require(
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and 0.0 <= float(value) <= 1.0,
                f"{name} must be within [0, 1], got {value!r}",
            )
        try:
            require_positive(self.min_active, "min_active")
        except (TypeError, ValueError) as error:
            raise ConfigurationError(str(error)) from error

    @property
    def is_static(self) -> bool:
        """True when no station can ever leave."""
        return self.leave_probability == 0.0


@dataclass(frozen=True)
class QueryMix:
    """How query exemplars are drawn from the subscriber population.

    ``zipf_s = 0`` draws exemplars uniformly; larger values concentrate the
    mix on a seeded "hot set" with Zipf weight ``1 / rank^s`` — the
    skewed-hotset regime where a few profiles dominate the query stream.
    ``categories`` optionally restricts exemplars to the named ground-truth
    categories.
    """

    zipf_s: float = 0.0
    categories: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.zipf_s, (int, float))
            and not isinstance(self.zipf_s, bool)
            and float(self.zipf_s) >= 0.0,
            f"zipf_s must be >= 0, got {self.zipf_s!r}",
        )
        if self.categories is not None:
            _require(
                len(self.categories) > 0
                and all(isinstance(name, str) and name for name in self.categories),
                f"categories must be a non-empty tuple of names, got {self.categories!r}",
            )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's slice of a multi-tenant workload.

    Each tenant runs its own independent :class:`QueryMix` stream against the
    shared deployment: per macro-round the engine serves the tenants
    round-robin in declaration order, each slot sampling from the tenant's
    own seeded hot-set stream (labelled by the tenant name, so the streams
    never correlate).  The result reports per-tenant precision, latency and
    byte totals whose sums equal the run's totals exactly — the accounting
    invariant the tenant suite pins.
    """

    name: str
    mix: QueryMix = field(default_factory=QueryMix)

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            f"tenant name must be a non-empty string, got {self.name!r}",
        )
        _require(
            isinstance(self.mix, QueryMix),
            f"tenant mix must be a QueryMix, got {self.mix!r}",
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """One declarative, fully-seeded traffic scenario.

    The dataset-shape fields mirror :class:`repro.datagen.workload.DatasetSpec`;
    the process fields declare the per-round behavior the engine compiles.
    ``(name, seed)`` fully determines the replayed event transcript — see
    ``docs/workloads.md`` for the determinism contract.
    """

    name: str
    description: str = ""
    # -- dataset shape ---------------------------------------------------------
    users_per_category: int = 6
    station_count: int = 5
    days: int = 1
    intervals_per_day: int = 24
    noise_level: int = 0
    epsilon: int = 0
    # -- round structure -------------------------------------------------------
    rounds: int = 8
    arrival: ArrivalProcess = field(default_factory=ArrivalProcess)
    churn: ChurnProcess = field(default_factory=ChurnProcess)
    mix: QueryMix = field(default_factory=QueryMix)
    #: Open-system arrival model; required by (and only consulted in) the
    #: ``open`` drive.  Closed-loop drives keep using ``rounds``/``arrival``.
    offered: OfferedLoad | None = None
    #: The one cohort-shape spelling going forward: a declarative
    #: :class:`~repro.datagen.source.SourceSpec`.  When set, the legacy
    #: dataset-shape fields above must stay at their defaults (naming the
    #: shape twice is a :class:`ConfigurationError`, not a precedence rule).
    #: ``kind="streaming"`` sources drive the bounded-memory lazy path.
    source: SourceSpec | None = None
    #: Multi-tenant multiplexing: when non-empty, every macro-round serves
    #: each tenant once (in declaration order) from its own query-mix stream,
    #: and the result carries per-tenant accounting.  Empty means the classic
    #: single-stream workload, byte-identical to the pre-tenant engine.
    tenants: tuple[TenantSpec, ...] = ()
    # -- environment pairing ---------------------------------------------------
    #: Deployment topology the compiled cluster runs under; ``None`` is the
    #: classic flat star.  A two-tier spec routes every round through
    #: regional aggregators (see ``docs/topology.md``).
    topology: "TopologySpec | None" = None
    method: str = "wbf"
    fault_profile: str = "none"
    allow_partial: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            f"name must be a non-empty string, got {self.name!r}",
        )
        try:
            require_positive(self.users_per_category, "users_per_category")
            require_positive(self.station_count, "station_count")
            require_positive(self.days, "days")
            require_positive(self.intervals_per_day, "intervals_per_day")
            require_non_negative(self.noise_level, "noise_level")
            require_non_negative(self.epsilon, "epsilon")
            require_positive(self.rounds, "rounds")
        except (TypeError, ValueError) as error:
            raise ConfigurationError(str(error)) from error
        _require(
            self.method in ("naive", "local", "bf", "wbf"),
            f"method must be one of naive/local/bf/wbf, got {self.method!r}",
        )
        _require(
            self.fault_profile in FAULT_PROFILE_CHOICES,
            f"fault_profile must be one of {FAULT_PROFILE_CHOICES}, "
            f"got {self.fault_profile!r}",
        )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an integer, got {self.seed!r}",
        )
        _require(
            self.source is None or isinstance(self.source, SourceSpec),
            f"source must be a SourceSpec or None, got {self.source!r}",
        )
        if self.source is not None:
            spelled_twice = [
                name
                for name, default in (
                    ("users_per_category", 6),
                    ("station_count", 5),
                    ("days", 1),
                    ("intervals_per_day", 24),
                    ("noise_level", 0),
                )
                if getattr(self, name) != default
            ]
            _require(
                not spelled_twice,
                "cohort shape is spelled twice: source= is set, so the legacy "
                f"field(s) {spelled_twice} must stay at their defaults — move "
                "them into the SourceSpec",
            )
            if self.source.kind == "streaming":
                _require(
                    self.mix == QueryMix(),
                    "streaming sources sample exemplars uniformly: QueryMix "
                    "hot-set/category shaping needs an eager source",
                )
        _require(
            isinstance(self.churn.min_active, int)
            and self.churn.min_active <= self.effective_station_count,
            f"churn.min_active ({self.churn.min_active}) cannot exceed "
            f"station_count ({self.effective_station_count})",
        )
        _require(
            self.offered is None or isinstance(self.offered, OfferedLoad),
            f"offered must be an OfferedLoad or None, got {self.offered!r}",
        )
        _require(
            isinstance(self.tenants, tuple)
            and all(isinstance(tenant, TenantSpec) for tenant in self.tenants),
            f"tenants must be a tuple of TenantSpec, got {self.tenants!r}",
        )
        tenant_names = [tenant.name for tenant in self.tenants]
        _require(
            len(tenant_names) == len(set(tenant_names)),
            f"tenant names must be unique, got {tenant_names!r}",
        )
        if self.tenants:
            _require(
                self.source is None,
                "tenant query mixes need the materialized dataset path: "
                "sources sample exemplars uniformly, so declare the city "
                "through the legacy dataset-shape fields instead of source=",
            )
        _require(
            self.topology is None or isinstance(self.topology, TopologySpec),
            f"topology must be a TopologySpec or None, got {self.topology!r}",
        )
        if self.topology is not None:
            _require(
                self.topology.regions <= self.effective_station_count,
                f"topology regions ({self.topology.regions}) must not exceed "
                f"stations ({self.effective_station_count})",
            )
            declared_streams = max(1, len(self.tenants))
            _require(
                self.topology.tenant_count == declared_streams,
                f"tenant/mix mismatch: topology declares "
                f"{self.topology.tenant_count} tenant(s) but the workload "
                f"provides {declared_streams} query-mix stream(s)",
            )

    def effective_source(self) -> SourceSpec:
        """The city declaration: ``source`` or the legacy fields lifted into one."""
        if self.source is not None:
            return self.source
        return SourceSpec(
            kind="eager",
            station_count=self.station_count,
            users_per_category=self.users_per_category,
            days=self.days,
            intervals_per_day=self.intervals_per_day,
            noise_level=self.noise_level,
        )

    @property
    def effective_station_count(self) -> int:
        """Declared stations, whichever spelling declared them."""
        return (
            self.source.station_count if self.source is not None else self.station_count
        )

    def with_updates(self, **changes: object) -> "WorkloadSpec":
        """A copy of this spec with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def total_query_count(self) -> int:
        """Total queries the arrival process emits over all rounds."""
        return sum(self.arrival.count_at(r) for r in range(self.rounds))
